#pragma once

// PNG (RFC 2083) encoder for Framebuffer images, plus a decoder for the
// subset this encoder emits (8-bit RGB/RGBA, filter types 0-4), used by
// the round-trip tests.

#include <cstdint>
#include <string>
#include <vector>

#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

/// Encodes as an 8-bit RGB PNG (the framebuffer is always opaque). Each
/// scanline gets the filter (None/Sub/Up/Average/Paeth) with the minimum
/// sum of absolute differences before the zlib payload is built by the
/// in-tree dynamic-Huffman deflate. Packing, filtering, deflate chunks and
/// the IDAT CRC run over up to `threads` workers; the encoded bytes are
/// identical for every thread count and SIMD kernel.
std::string encode_png(const Framebuffer& fb, int threads = 1);

/// The filtered IDAT scanline payload (filter-type byte + filtered RGB
/// bytes per row) with per-row minimum-SAD filter selection — the stage
/// between rasterization and deflate, exposed for benches and tests.
std::vector<std::uint8_t> filter_scanlines(const Framebuffer& fb,
                                           int threads = 1);

void save_png(const Framebuffer& fb, const std::string& path,
              int threads = 1);

/// Decodes a PNG produced by encode_png (or any 8-bit RGB/RGBA PNG with
/// filters None/Sub/Up/Average/Paeth and no interlacing).
Framebuffer decode_png(const std::string& bytes);

}  // namespace jedule::render
