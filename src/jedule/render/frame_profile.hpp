#pragma once

// jedule::render::profile — observability for the interactive frame path.
// TileCache fills a FrameStats per rendered frame (timings plus cache
// hit/miss/evict counters); Session accumulates them in a FrameLog that
// the `view` subcommand's `frame`/`stats` commands and --frame-stats flag
// print. (The utilization *chart* lives in render/profile.hpp; this
// header is the profiling namespace the chart predates.)

#include <cstddef>
#include <string>

namespace jedule::render::profile {

/// Counters of one interactive frame.
struct FrameStats {
  double layout_ms = 0;   // culled layout for labels/chrome (or direct path)
  double tiles_ms = 0;    // rendering missed tiles + blitting
  double overlay_ms = 0;  // header + labels + chrome over the tiles
  double total_ms = 0;

  std::size_t tiles_total = 0;    // tiles the frame needed
  std::size_t tiles_hit = 0;      // reused from the cache (pan warmth)
  std::size_t tiles_missed = 0;   // rasterized this frame
  std::size_t tiles_evicted = 0;  // LRU evictions caused by this frame
  std::size_t invalidations = 0;  // grid/content/style resets this frame

  std::size_t boxes = 0;  // boxes in the frame's (culled) layout
  bool lod = false;       // any panel rendered as density bins
  bool cached = true;     // false when the frame bypassed the tile cache

  std::size_t edges_considered = 0;  // visible dependency entries inspected
  std::size_t edge_arrows = 0;       // individual arrows drawn (overlay)
  std::size_t edge_heat_panels = 0;  // panels drawn as heat lanes

  /// One line, e.g. "frame 3.2ms (tiles 5 hit / 1 miss, 412 boxes)".
  std::string summary() const;
};

/// Lifetime cache counters (monotonic across frames).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t invalidations = 0;
};

/// Accumulates FrameStats across a session.
class FrameLog {
 public:
  void record(const FrameStats& s);

  std::size_t frames() const { return frames_; }
  const FrameStats& last() const { return last_; }
  double total_ms() const { return total_ms_; }
  double worst_ms() const { return worst_ms_; }
  const CacheStats& cache() const { return cache_; }

  /// Lifetime dependency-rendering counters (serve /stats).
  std::size_t edge_arrows() const { return edge_arrows_; }
  std::size_t edge_heat_frames() const { return edge_heat_frames_; }

  /// One line: frame count, mean/worst ms, lifetime hit/miss/evict.
  std::string summary() const;

 private:
  FrameStats last_;
  std::size_t frames_ = 0;
  double total_ms_ = 0;
  double worst_ms_ = 0;
  CacheStats cache_;
  std::size_t edge_arrows_ = 0;
  std::size_t edge_heat_frames_ = 0;
};

}  // namespace jedule::render::profile
