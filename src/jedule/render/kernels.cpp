#include "jedule/render/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "jedule/model/arena.hpp"
#include "jedule/util/cpu.hpp"

#if !defined(JEDULE_SIMD_DISABLED)
#if defined(__x86_64__) || defined(_M_X64)
#define JEDULE_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define JEDULE_KERNELS_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace jedule::render::kernels {

namespace {

std::uint32_t pack_rgba(color::Color c) {
  // Memory byte order r,g,b,255 == this little-endian word. The stores in
  // Framebuffer always write alpha 255, which is what keeps opaque fills a
  // plain pattern broadcast.
  return static_cast<std::uint32_t>(c.r) |
         static_cast<std::uint32_t>(c.g) << 8 |
         static_cast<std::uint32_t>(c.b) << 16 | 0xFF000000u;
}

// Exact integer form of color::blend_over's lround(d*(1-t) + s*t) with
// t = a/255: x = d*(255-a) + s*a, then divide by 255 with rounding as
// (y + (y >> 8)) >> 8 where y = x + 128. Verified bit-exact against
// blend_over by brute force over all 256^3 (d, s, a) inputs; the test
// suite re-checks a dense sample (test_render_kernels.cpp).
std::uint8_t blend_channel(unsigned d, unsigned s, unsigned a) {
  const unsigned y = d * (255u - a) + s * a + 128u;
  return static_cast<std::uint8_t>((y + (y >> 8)) >> 8);
}

void fill_row_scalar(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  for (std::size_t i = 0; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

void blend_row_scalar(std::uint8_t* row, std::size_t npx, color::Color c) {
  const unsigned a = c.a;
  for (std::size_t i = 0; i < npx; ++i) {
    std::uint8_t* px = row + i * 4;
    px[0] = blend_channel(px[0], c.r, a);
    px[1] = blend_channel(px[1], c.g, a);
    px[2] = blend_channel(px[2], c.b, a);
    px[3] = 255;
  }
}

void copy_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t npx) {
  if (npx == 0) return;  // an empty source may be a null pointer
  std::memcpy(dst, src, npx * 4);
}

// --- PNG scanline filters (RFC 2083 §6) -------------------------------
// All arithmetic is mod 256; a/b/c are the left, above and upper-left
// neighbours of cur[i], taken as 0 outside the row.

std::uint8_t paeth_predict(int a, int b, int c) {
  const int p = a + b - c;
  const int pa = p > a ? p - a : a - p;
  const int pb = p > b ? p - b : b - p;
  const int pc = p > c ? p - c : c - p;
  if (pa <= pb && pa <= pc) return static_cast<std::uint8_t>(a);
  if (pb <= pc) return static_cast<std::uint8_t>(b);
  return static_cast<std::uint8_t>(c);
}

void png_filter_row_scalar(int type, std::uint8_t* out,
                           const std::uint8_t* cur, const std::uint8_t* prev,
                           std::size_t n, std::size_t bpp) {
  switch (type) {
    case 0:
      if (n > 0) std::memcpy(out, cur, n);
      break;
    case 1:  // Sub
      for (std::size_t i = 0; i < n && i < bpp; ++i) out[i] = cur[i];
      for (std::size_t i = bpp; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - cur[i - bpp]);
      }
      break;
    case 2:  // Up
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      break;
    case 3:  // Average
      for (std::size_t i = 0; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i] / 2);
      }
      for (std::size_t i = bpp; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] -
                                           (cur[i - bpp] + prev[i]) / 2);
      }
      break;
    default:  // Paeth; paeth_predict(0, b, 0) == b for the first pixel
      for (std::size_t i = 0; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      for (std::size_t i = bpp; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(
            cur[i] - paeth_predict(cur[i - bpp], prev[i], prev[i - bpp]));
      }
      break;
  }
}

void png_unfilter_row_scalar(int type, std::uint8_t* cur,
                             const std::uint8_t* prev, std::size_t n,
                             std::size_t bpp) {
  switch (type) {
    case 0:
      break;
    case 1:  // Sub
      for (std::size_t i = bpp; i < n; ++i) {
        cur[i] = static_cast<std::uint8_t>(cur[i] + cur[i - bpp]);
      }
      break;
    case 2:  // Up
      for (std::size_t i = 0; i < n; ++i) {
        cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i]);
      }
      break;
    case 3:  // Average
      for (std::size_t i = 0; i < n && i < bpp; ++i) {
        cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i] / 2);
      }
      for (std::size_t i = bpp; i < n; ++i) {
        cur[i] = static_cast<std::uint8_t>(cur[i] +
                                           (cur[i - bpp] + prev[i]) / 2);
      }
      break;
    default:  // Paeth
      for (std::size_t i = 0; i < n && i < bpp; ++i) {
        cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i]);
      }
      for (std::size_t i = bpp; i < n; ++i) {
        cur[i] = static_cast<std::uint8_t>(
            cur[i] + paeth_predict(cur[i - bpp], prev[i], prev[i - bpp]));
      }
      break;
  }
}

std::uint64_t png_sad_scalar(const std::uint8_t* data, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned v = data[i];
    sum += v < 128 ? v : 256 - v;
  }
  return sum;
}

#if defined(JEDULE_KERNELS_X86)

// The four u16 lanes of one pixel's source term s*a, in r,g,b,a byte
// order; the alpha lane uses s=255 so a framebuffer pixel (alpha 255)
// blends back to exactly 255.
std::uint64_t premul_lanes(color::Color c) {
  const unsigned a = c.a;
  return static_cast<std::uint64_t>(c.r * a) |
         static_cast<std::uint64_t>(c.g * a) << 16 |
         static_cast<std::uint64_t>(c.b * a) << 32 |
         static_cast<std::uint64_t>(255u * a) << 48;
}

void fill_row_sse2(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const __m128i v = _mm_set1_epi32(static_cast<int>(p));
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i * 4), v);
  }
  for (; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

void blend_row_sse2(std::uint8_t* row, std::size_t npx, color::Color c) {
  // 16-bit-lane evaluation of blend_channel: all intermediates fit in
  // u16 (max 255*255 + 128 + 254 = 65407), so mullo/add/shift per lane
  // reproduce the scalar math exactly.
  const __m128i zero = _mm_setzero_si128();
  const __m128i na = _mm_set1_epi16(static_cast<short>(255 - c.a));
  const __m128i sa =
      _mm_set1_epi64x(static_cast<long long>(premul_lanes(c)));
  const __m128i bias = _mm_set1_epi16(128);
  const __m128i alpha = _mm_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    __m128i px =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i * 4));
    __m128i lo = _mm_unpacklo_epi8(px, zero);
    __m128i hi = _mm_unpackhi_epi8(px, zero);
    lo = _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(lo, na), sa), bias);
    hi = _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(hi, na), sa), bias);
    lo = _mm_srli_epi16(_mm_add_epi16(lo, _mm_srli_epi16(lo, 8)), 8);
    hi = _mm_srli_epi16(_mm_add_epi16(hi, _mm_srli_epi16(hi, 8)), 8);
    px = _mm_or_si128(_mm_packus_epi16(lo, hi), alpha);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i * 4), px);
  }
  if (i < npx) blend_row_scalar(row + i * 4, npx - i, c);
}

void copy_row_sse2(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 4), v);
  }
  if (i < npx) std::memcpy(dst + i * 4, src + i * 4, (npx - i) * 4);
}

__attribute__((target("avx2"))) void fill_row_avx2(std::uint8_t* row,
                                                   std::size_t npx,
                                                   color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const __m256i v = _mm256_set1_epi32(static_cast<int>(p));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i * 4), v);
  }
  if (i < npx) fill_row_sse2(row + i * 4, npx - i, c);
}

__attribute__((target("avx2"))) void blend_row_avx2(std::uint8_t* row,
                                                    std::size_t npx,
                                                    color::Color c) {
  // Unpack/pack stay within each 128-bit lane, so applying them
  // symmetrically round-trips the byte order; the lane math matches
  // blend_row_sse2.
  const __m256i zero = _mm256_setzero_si256();
  const __m256i na = _mm256_set1_epi16(static_cast<short>(255 - c.a));
  const __m256i sa =
      _mm256_set1_epi64x(static_cast<long long>(premul_lanes(c)));
  const __m256i bias = _mm256_set1_epi16(128);
  const __m256i alpha = _mm256_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    __m256i px =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i * 4));
    __m256i lo = _mm256_unpacklo_epi8(px, zero);
    __m256i hi = _mm256_unpackhi_epi8(px, zero);
    lo = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(lo, na), sa), bias);
    hi = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(hi, na), sa), bias);
    lo = _mm256_srli_epi16(_mm256_add_epi16(lo, _mm256_srli_epi16(lo, 8)),
                           8);
    hi = _mm256_srli_epi16(_mm256_add_epi16(hi, _mm256_srli_epi16(hi, 8)),
                           8);
    px = _mm256_or_si256(_mm256_packus_epi16(lo, hi), alpha);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i * 4), px);
  }
  if (i < npx) blend_row_sse2(row + i * 4, npx - i, c);
}

__attribute__((target("avx2"))) void copy_row_avx2(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 4), v);
  }
  if (i < npx) copy_row_sse2(dst + i * 4, src + i * 4, npx - i);
}

// Paeth on eight zero-extended 16-bit lanes. All predictor candidates fit
// in s16 (|a+b-2c| <= 510), so max(x-y, y-x) gives exact absolute values
// and the compare masks reproduce paeth_predict's tie-breaking order.
inline __m128i paeth_predict_epi16_sse2(__m128i a, __m128i b, __m128i c) {
  const __m128i pa = _mm_max_epi16(_mm_sub_epi16(b, c), _mm_sub_epi16(c, b));
  const __m128i pb = _mm_max_epi16(_mm_sub_epi16(a, c), _mm_sub_epi16(c, a));
  const __m128i pp = _mm_sub_epi16(_mm_add_epi16(a, b),
                                   _mm_add_epi16(c, c));
  const __m128i pc = _mm_max_epi16(pp, _mm_sub_epi16(_mm_setzero_si128(),
                                                     pp));
  const __m128i not_a =
      _mm_or_si128(_mm_cmpgt_epi16(pa, pb), _mm_cmpgt_epi16(pa, pc));
  const __m128i not_b = _mm_cmpgt_epi16(pb, pc);
  const __m128i b_or_c =
      _mm_or_si128(_mm_and_si128(not_b, c), _mm_andnot_si128(not_b, b));
  return _mm_or_si128(_mm_and_si128(not_a, b_or_c),
                      _mm_andnot_si128(not_a, a));
}

inline __m128i load8_epi16(const std::uint8_t* p) {
  return _mm_unpacklo_epi8(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)),
      _mm_setzero_si128());
}

// floor((a + b) / 2) on u8 lanes: avg_epu8 rounds up, so subtract the
// carry bit (a ^ b) & 1.
inline __m128i floor_avg_epu8(__m128i a, __m128i b) {
  return _mm_sub_epi8(_mm_avg_epu8(a, b),
                      _mm_and_si128(_mm_xor_si128(a, b),
                                    _mm_set1_epi8(1)));
}

void png_filter_row_sse2(int type, std::uint8_t* out,
                         const std::uint8_t* cur, const std::uint8_t* prev,
                         std::size_t n, std::size_t bpp) {
  std::size_t i = 0;
  switch (type) {
    case 1:  // Sub
      for (; i < n && i < bpp; ++i) out[i] = cur[i];
      for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cur + i - bpp));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm_sub_epi8(x, a));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - cur[i - bpp]);
      }
      break;
    case 2:  // Up
      for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm_sub_epi8(x, b));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      break;
    case 3:  // Average
      for (; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i] / 2);
      }
      for (; i + 16 <= n; i += 16) {
        const __m128i x =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(cur + i - bpp));
        const __m128i b =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                         _mm_sub_epi8(x, floor_avg_epu8(a, b)));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] -
                                           (cur[i - bpp] + prev[i]) / 2);
      }
      break;
    case 4:  // Paeth
      for (; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      for (; i + 8 <= n; i += 8) {
        const __m128i x = load8_epi16(cur + i);
        const __m128i a = load8_epi16(cur + i - bpp);
        const __m128i b = load8_epi16(prev + i);
        const __m128i c = load8_epi16(prev + i - bpp);
        const __m128i d =
            _mm_sub_epi16(x, paeth_predict_epi16_sse2(a, b, c));
        _mm_storel_epi64(
            reinterpret_cast<__m128i*>(out + i),
            _mm_packus_epi16(_mm_and_si128(d, _mm_set1_epi16(0xFF)),
                             _mm_setzero_si128()));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(
            cur[i] - paeth_predict(cur[i - bpp], prev[i], prev[i - bpp]));
      }
      break;
    default:
      png_filter_row_scalar(type, out, cur, prev, n, bpp);
      break;
  }
}

void png_unfilter_row_sse2(int type, std::uint8_t* cur,
                           const std::uint8_t* prev, std::size_t n,
                           std::size_t bpp) {
  if (type != 2) {  // Sub/Average/Paeth carry a loop dependency
    png_unfilter_row_scalar(type, cur, prev, n, bpp);
    return;
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cur + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(cur + i),
                     _mm_add_epi8(x, b));
  }
  for (; i < n; ++i) {
    cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i]);
  }
}

std::uint64_t png_sad_sse2(const std::uint8_t* data, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    // min(v, 256-v) per byte == |signed byte|; 0-v wraps mod 256.
    const __m128i folded = _mm_min_epu8(v, _mm_sub_epi8(zero, v));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(folded, zero));
  }
  std::uint64_t lanes[2];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] + lanes[1] + png_sad_scalar(data + i, n - i);
}

__attribute__((target("avx2"))) void png_filter_row_avx2(
    int type, std::uint8_t* out, const std::uint8_t* cur,
    const std::uint8_t* prev, std::size_t n, std::size_t bpp) {
  std::size_t i = 0;
  switch (type) {
    case 1:  // Sub
      for (; i < n && i < bpp; ++i) out[i] = cur[i];
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + i - bpp));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_sub_epi8(x, a));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - cur[i - bpp]);
      }
      break;
    case 2:  // Up
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_sub_epi8(x, b));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      break;
    case 3:  // Average
      for (; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i] / 2);
      }
      for (; i + 32 <= n; i += 32) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(cur + i - bpp));
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i));
        const __m256i avg = _mm256_sub_epi8(
            _mm256_avg_epu8(a, b),
            _mm256_and_si256(_mm256_xor_si256(a, b), _mm256_set1_epi8(1)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_sub_epi8(x, avg));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] -
                                           (cur[i - bpp] + prev[i]) / 2);
      }
      break;
    default:
      png_filter_row_sse2(type, out, cur, prev, n, bpp);
      break;
  }
}

__attribute__((target("avx2"))) void png_unfilter_row_avx2(
    int type, std::uint8_t* cur, const std::uint8_t* prev, std::size_t n,
    std::size_t bpp) {
  if (type != 2) {
    png_unfilter_row_scalar(type, cur, prev, n, bpp);
    return;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + i),
                        _mm256_add_epi8(x, b));
  }
  for (; i < n; ++i) {
    cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i]);
  }
}

__attribute__((target("avx2"))) std::uint64_t png_sad_avx2(
    const std::uint8_t* data, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i folded = _mm256_min_epu8(v, _mm256_sub_epi8(zero, v));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(folded, zero));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         png_sad_scalar(data + i, n - i);
}

#endif  // JEDULE_KERNELS_X86

#if defined(JEDULE_KERNELS_NEON)

void fill_row_neon(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const uint32x4_t v = vdupq_n_u32(p);
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    vst1q_u32(reinterpret_cast<std::uint32_t*>(row + i * 4), v);
  }
  for (; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

// blend_channel on one u16x8 vector: d*(255-a) already lives in `acc`.
uint8x8_t blend_narrow_neon(uint16x8_t acc, uint16x8_t sa) {
  uint16x8_t y = vaddq_u16(vaddq_u16(acc, sa), vdupq_n_u16(128));
  y = vaddq_u16(y, vshrq_n_u16(y, 8));
  return vshrn_n_u16(y, 8);
}

void blend_row_neon(std::uint8_t* row, std::size_t npx, color::Color c) {
  const unsigned a = c.a;
  const uint8x8_t na = vdup_n_u8(static_cast<std::uint8_t>(255 - a));
  const uint16x8_t sr = vdupq_n_u16(static_cast<std::uint16_t>(c.r * a));
  const uint16x8_t sg = vdupq_n_u16(static_cast<std::uint16_t>(c.g * a));
  const uint16x8_t sb = vdupq_n_u16(static_cast<std::uint16_t>(c.b * a));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    // De-interleaved planes: 8 pixels per iteration.
    uint8x8x4_t px = vld4_u8(row + i * 4);
    px.val[0] = blend_narrow_neon(vmull_u8(px.val[0], na), sr);
    px.val[1] = blend_narrow_neon(vmull_u8(px.val[1], na), sg);
    px.val[2] = blend_narrow_neon(vmull_u8(px.val[2], na), sb);
    px.val[3] = vdup_n_u8(255);
    vst4_u8(row + i * 4, px);
  }
  if (i < npx) blend_row_scalar(row + i * 4, npx - i, c);
}

void copy_row_neon(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    vst1q_u8(dst + i * 4, vld1q_u8(src + i * 4));
  }
  if (i < npx) std::memcpy(dst + i * 4, src + i * 4, (npx - i) * 4);
}

// Paeth on eight widened 16-bit lanes; |b-c| and |a-c| fit u8 (vabd), and
// |a+b-2c| <= 510 fits u16. The select order matches paeth_predict.
uint16x8_t paeth_predict_u16_neon(uint16x8_t a, uint16x8_t b, uint16x8_t c) {
  const uint16x8_t pa = vabdq_u16(b, c);
  const uint16x8_t pb = vabdq_u16(a, c);
  const uint16x8_t pc = vabdq_u16(vaddq_u16(a, b), vaddq_u16(c, c));
  const uint16x8_t a_ok =
      vandq_u16(vcleq_u16(pa, pb), vcleq_u16(pa, pc));
  const uint16x8_t b_ok = vcleq_u16(pb, pc);
  return vbslq_u16(a_ok, a, vbslq_u16(b_ok, b, c));
}

void png_filter_row_neon(int type, std::uint8_t* out,
                         const std::uint8_t* cur, const std::uint8_t* prev,
                         std::size_t n, std::size_t bpp) {
  std::size_t i = 0;
  switch (type) {
    case 1:  // Sub
      for (; i < n && i < bpp; ++i) out[i] = cur[i];
      for (; i + 16 <= n; i += 16) {
        vst1q_u8(out + i, vsubq_u8(vld1q_u8(cur + i),
                                   vld1q_u8(cur + i - bpp)));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - cur[i - bpp]);
      }
      break;
    case 2:  // Up
      for (; i + 16 <= n; i += 16) {
        vst1q_u8(out + i,
                 vsubq_u8(vld1q_u8(cur + i), vld1q_u8(prev + i)));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      break;
    case 3:  // Average; vhaddq_u8 is exactly floor((a + b) / 2)
      for (; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i] / 2);
      }
      for (; i + 16 <= n; i += 16) {
        const uint8x16_t avg =
            vhaddq_u8(vld1q_u8(cur + i - bpp), vld1q_u8(prev + i));
        vst1q_u8(out + i, vsubq_u8(vld1q_u8(cur + i), avg));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] -
                                           (cur[i - bpp] + prev[i]) / 2);
      }
      break;
    case 4:  // Paeth
      for (; i < n && i < bpp; ++i) {
        out[i] = static_cast<std::uint8_t>(cur[i] - prev[i]);
      }
      for (; i + 8 <= n; i += 8) {
        const uint16x8_t x = vmovl_u8(vld1_u8(cur + i));
        const uint16x8_t a = vmovl_u8(vld1_u8(cur + i - bpp));
        const uint16x8_t b = vmovl_u8(vld1_u8(prev + i));
        const uint16x8_t c = vmovl_u8(vld1_u8(prev + i - bpp));
        vst1_u8(out + i,
                vmovn_u16(vsubq_u16(x, paeth_predict_u16_neon(a, b, c))));
      }
      for (; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(
            cur[i] - paeth_predict(cur[i - bpp], prev[i], prev[i - bpp]));
      }
      break;
    default:
      png_filter_row_scalar(type, out, cur, prev, n, bpp);
      break;
  }
}

void png_unfilter_row_neon(int type, std::uint8_t* cur,
                           const std::uint8_t* prev, std::size_t n,
                           std::size_t bpp) {
  if (type != 2) {  // Sub/Average/Paeth carry a loop dependency
    png_unfilter_row_scalar(type, cur, prev, n, bpp);
    return;
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(cur + i, vaddq_u8(vld1q_u8(cur + i), vld1q_u8(prev + i)));
  }
  for (; i < n; ++i) {
    cur[i] = static_cast<std::uint8_t>(cur[i] + prev[i]);
  }
}

std::uint64_t png_sad_neon(const std::uint8_t* data, std::size_t n) {
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(data + i);
    // min(v, 256-v) per byte == |signed byte|.
    const uint8x16_t folded = vminq_u8(v, vsubq_u8(vdupq_n_u8(0), v));
    acc = vpadalq_u16(acc, vpaddlq_u8(folded));
  }
  return vaddvq_u32(acc) + png_sad_scalar(data + i, n - i);
}

#endif  // JEDULE_KERNELS_NEON

// --- columnar double scans (model::ScheduleArena, DESIGN.md §4h) ------

void minmax_f64_scalar(const double* a, const double* b, std::size_t n,
                       double* lo, double* hi) {
  double l = a[0], h = b[0];
  for (std::size_t i = 1; i < n; ++i) {
    l = std::min(l, a[i]);
    h = std::max(h, b[i]);
  }
  *lo = l;
  *hi = h;
}

std::size_t first_violation_scalar(const double* start, const double* end,
                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!(end[i] >= start[i])) return i;
  }
  return n;
}

#if defined(JEDULE_KERNELS_X86)

void minmax_f64_sse2(const double* a, const double* b, std::size_t n,
                     double* lo, double* hi) {
  if (n < 4) {
    minmax_f64_scalar(a, b, n, lo, hi);
    return;
  }
  __m128d vlo = _mm_loadu_pd(a);
  __m128d vhi = _mm_loadu_pd(b);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    vlo = _mm_min_pd(vlo, _mm_loadu_pd(a + i));
    vhi = _mm_max_pd(vhi, _mm_loadu_pd(b + i));
  }
  double l2[2], h2[2];
  _mm_storeu_pd(l2, vlo);
  _mm_storeu_pd(h2, vhi);
  double l = std::min(l2[0], l2[1]);
  double h = std::max(h2[0], h2[1]);
  for (; i < n; ++i) {
    l = std::min(l, a[i]);
    h = std::max(h, b[i]);
  }
  *lo = l;
  *hi = h;
}

std::size_t first_violation_sse2(const double* start, const double* end,
                                 std::size_t n) {
  std::size_t i = 0;
  // cmpge is false for NaN lanes, so a NaN breaks out like end < start;
  // the scalar tail then reports the exact first offending index.
  for (; i + 2 <= n; i += 2) {
    const __m128d ge =
        _mm_cmpge_pd(_mm_loadu_pd(end + i), _mm_loadu_pd(start + i));
    if (_mm_movemask_pd(ge) != 0x3) break;
  }
  for (; i < n; ++i) {
    if (!(end[i] >= start[i])) return i;
  }
  return n;
}

__attribute__((target("avx2"))) void minmax_f64_avx2(const double* a,
                                                     const double* b,
                                                     std::size_t n,
                                                     double* lo, double* hi) {
  if (n < 8) {
    minmax_f64_sse2(a, b, n, lo, hi);
    return;
  }
  __m256d vlo = _mm256_loadu_pd(a);
  __m256d vhi = _mm256_loadu_pd(b);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    vlo = _mm256_min_pd(vlo, _mm256_loadu_pd(a + i));
    vhi = _mm256_max_pd(vhi, _mm256_loadu_pd(b + i));
  }
  double l4[4], h4[4];
  _mm256_storeu_pd(l4, vlo);
  _mm256_storeu_pd(h4, vhi);
  double l = std::min(std::min(l4[0], l4[1]), std::min(l4[2], l4[3]));
  double h = std::max(std::max(h4[0], h4[1]), std::max(h4[2], h4[3]));
  for (; i < n; ++i) {
    l = std::min(l, a[i]);
    h = std::max(h, b[i]);
  }
  *lo = l;
  *hi = h;
}

__attribute__((target("avx2"))) std::size_t first_violation_avx2(
    const double* start, const double* end, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(end + i),
                                     _mm256_loadu_pd(start + i), _CMP_GE_OQ);
    if (_mm256_movemask_pd(ge) != 0xF) break;
  }
  for (; i < n; ++i) {
    if (!(end[i] >= start[i])) return i;
  }
  return n;
}

#endif  // JEDULE_KERNELS_X86

#if defined(JEDULE_KERNELS_NEON)

void minmax_f64_neon(const double* a, const double* b, std::size_t n,
                     double* lo, double* hi) {
  if (n < 4) {
    minmax_f64_scalar(a, b, n, lo, hi);
    return;
  }
  float64x2_t vlo = vld1q_f64(a);
  float64x2_t vhi = vld1q_f64(b);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) {
    vlo = vminq_f64(vlo, vld1q_f64(a + i));
    vhi = vmaxq_f64(vhi, vld1q_f64(b + i));
  }
  double l = std::min(vgetq_lane_f64(vlo, 0), vgetq_lane_f64(vlo, 1));
  double h = std::max(vgetq_lane_f64(vhi, 0), vgetq_lane_f64(vhi, 1));
  for (; i < n; ++i) {
    l = std::min(l, a[i]);
    h = std::max(h, b[i]);
  }
  *lo = l;
  *hi = h;
}

std::size_t first_violation_neon(const double* start, const double* end,
                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t ge = vcgeq_f64(vld1q_f64(end + i), vld1q_f64(start + i));
    if ((vgetq_lane_u64(ge, 0) & vgetq_lane_u64(ge, 1)) != ~0ull) break;
  }
  for (; i < n; ++i) {
    if (!(end[i] >= start[i])) return i;
  }
  return n;
}

#endif  // JEDULE_KERNELS_NEON

// --- edge heat lanes (DESIGN.md §4j) ----------------------------------
// accumulate: element-wise lane adds, no reassociation, so SIMD matches
// scalar bit-for-bit. quantize: min-then-truncate; cvttps/vcvtq truncate
// toward zero exactly like static_cast<int> on in-range values, and the
// saturating packs clamp negatives to 0 just like the scalar guard.

void heat_accum_scalar(float* acc, std::size_t n, float v) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += v;
}

void heat_quantize_scalar(const float* acc, std::size_t n, float scale,
                          std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const float v = std::min(acc[i] * scale + 0.5f, 255.0f);
    int q = static_cast<int>(v);
    if (q < 0) q = 0;
    out[i] = static_cast<std::uint8_t>(q);
  }
}

#if defined(JEDULE_KERNELS_X86)

void heat_accum_sse2(float* acc, std::size_t n, float v) {
  const __m128 vv = _mm_set1_ps(v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(acc + i, _mm_add_ps(_mm_loadu_ps(acc + i), vv));
  }
  for (; i < n; ++i) acc[i] += v;
}

void heat_quantize_sse2(const float* acc, std::size_t n, float scale,
                        std::uint8_t* out) {
  const __m128 vscale = _mm_set1_ps(scale);
  const __m128 half = _mm_set1_ps(0.5f);
  const __m128 cap = _mm_set1_ps(255.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_min_ps(
        _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(acc + i), vscale), half), cap);
    const __m128i q = _mm_cvttps_epi32(v);
    const __m128i p8 = _mm_packus_epi16(_mm_packs_epi32(q, q),
                                        _mm_setzero_si128());
    const int word = _mm_cvtsi128_si32(p8);
    std::memcpy(out + i, &word, 4);
  }
  if (i < n) heat_quantize_scalar(acc + i, n - i, scale, out + i);
}

__attribute__((target("avx2"))) void heat_accum_avx2(float* acc,
                                                     std::size_t n, float v) {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), vv));
  }
  if (i < n) heat_accum_sse2(acc + i, n - i, v);
}

__attribute__((target("avx2"))) void heat_quantize_avx2(const float* acc,
                                                        std::size_t n,
                                                        float scale,
                                                        std::uint8_t* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 cap = _mm256_set1_ps(255.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_min_ps(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(acc + i), vscale), half),
        cap);
    const __m256i q = _mm256_cvttps_epi32(v);
    const __m128i lo = _mm256_castsi256_si128(q);
    const __m128i hi = _mm256_extracti128_si256(q, 1);
    const __m128i p8 = _mm_packus_epi16(_mm_packs_epi32(lo, hi),
                                        _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), p8);
  }
  if (i < n) heat_quantize_sse2(acc + i, n - i, scale, out + i);
}

#endif  // JEDULE_KERNELS_X86

#if defined(JEDULE_KERNELS_NEON)

void heat_accum_neon(float* acc, std::size_t n, float v) {
  const float32x4_t vv = vdupq_n_f32(v);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(acc + i, vaddq_f32(vld1q_f32(acc + i), vv));
  }
  for (; i < n; ++i) acc[i] += v;
}

void heat_quantize_neon(const float* acc, std::size_t n, float scale,
                        std::uint8_t* out) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t half = vdupq_n_f32(0.5f);
  const float32x4_t cap = vdupq_n_f32(255.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t v0 = vminq_f32(
        vaddq_f32(vmulq_f32(vld1q_f32(acc + i), vscale), half), cap);
    const float32x4_t v1 = vminq_f32(
        vaddq_f32(vmulq_f32(vld1q_f32(acc + i + 4), vscale), half), cap);
    // vcvtq truncates toward zero; vqmovun clamps negatives to 0.
    const uint16x8_t q16 = vcombine_u16(vqmovun_s32(vcvtq_s32_f32(v0)),
                                        vqmovun_s32(vcvtq_s32_f32(v1)));
    vst1_u8(out + i, vqmovn_u16(q16));
  }
  if (i < n) heat_quantize_scalar(acc + i, n - i, scale, out + i);
}

#endif  // JEDULE_KERNELS_NEON

std::atomic<const Kernels*> g_override{nullptr};

const Kernels* env_or_best() {
  if (const char* env = std::getenv("JEDULE_SIMD")) {
    const std::string_view want(env);
    if (want == "scalar" || want == "off" || want == "0") return &scalar();
    if (const Kernels* k = find(want)) return k;
  }
  return available().back();
}

}  // namespace

const Kernels& scalar() {
  static const Kernels k{"scalar",          fill_row_scalar,
                         blend_row_scalar,  copy_row_scalar,
                         png_filter_row_scalar, png_unfilter_row_scalar,
                         png_sad_scalar,    minmax_f64_scalar,
                         first_violation_scalar, heat_accum_scalar,
                         heat_quantize_scalar};
  return k;
}

const std::vector<const Kernels*>& available() {
  static const std::vector<const Kernels*> list = [] {
    std::vector<const Kernels*> v{&scalar()};
#if defined(JEDULE_KERNELS_X86)
    const auto& cpu = util::cpu_features();
    if (cpu.sse2) {
      static const Kernels sse2{"sse2",          fill_row_sse2,
                                blend_row_sse2,  copy_row_sse2,
                                png_filter_row_sse2, png_unfilter_row_sse2,
                                png_sad_sse2,    minmax_f64_sse2,
                                first_violation_sse2, heat_accum_sse2,
                                heat_quantize_sse2};
      v.push_back(&sse2);
    }
    if (cpu.avx2) {
      static const Kernels avx2{"avx2",          fill_row_avx2,
                                blend_row_avx2,  copy_row_avx2,
                                png_filter_row_avx2, png_unfilter_row_avx2,
                                png_sad_avx2,    minmax_f64_avx2,
                                first_violation_avx2, heat_accum_avx2,
                                heat_quantize_avx2};
      v.push_back(&avx2);
    }
#elif defined(JEDULE_KERNELS_NEON)
    if (util::cpu_features().neon) {
      static const Kernels neon{"neon",          fill_row_neon,
                                blend_row_neon,  copy_row_neon,
                                png_filter_row_neon, png_unfilter_row_neon,
                                png_sad_neon,    minmax_f64_neon,
                                first_violation_neon, heat_accum_neon,
                                heat_quantize_neon};
      v.push_back(&neon);
    }
#endif
    return v;
  }();
  return list;
}

const Kernels* find(std::string_view name) {
  for (const Kernels* k : available()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const Kernels& active() {
  if (const Kernels* o = g_override.load(std::memory_order_acquire)) {
    return *o;
  }
  static const Kernels* const picked = env_or_best();
  return *picked;
}

void override_active(const Kernels* k) {
  g_override.store(k, std::memory_order_release);
}

namespace {

// Route model::ScheduleArena's column scans through the dispatcher. The
// wrappers consult active() at call time, so the JEDULE_SIMD env
// selection and the test override keep working for arena sweeps too.
// Registration happens at static-init of this TU: any binary that links
// the render kernels gets SIMD column scans, while jed_model alone keeps
// its built-in scalar fallbacks (no model -> render dependency).
void arena_minmax_f64(const double* a, const double* b, std::size_t n,
                      double* lo, double* hi) {
  active().minmax_f64(a, b, n, lo, hi);
}

std::size_t arena_first_violation(const double* start, const double* end,
                                  std::size_t n) {
  return active().first_violation(start, end, n);
}

const bool g_column_scan_ops_installed = [] {
  model::ColumnScanOps ops;
  ops.minmax_f64 = &arena_minmax_f64;
  ops.first_violation = &arena_first_violation;
  model::set_column_scan_ops(ops);
  return true;
}();

}  // namespace

}  // namespace jedule::render::kernels
