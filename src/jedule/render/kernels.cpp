#include "jedule/render/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "jedule/util/cpu.hpp"

#if !defined(JEDULE_SIMD_DISABLED)
#if defined(__x86_64__) || defined(_M_X64)
#define JEDULE_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define JEDULE_KERNELS_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace jedule::render::kernels {

namespace {

std::uint32_t pack_rgba(color::Color c) {
  // Memory byte order r,g,b,255 == this little-endian word. The stores in
  // Framebuffer always write alpha 255, which is what keeps opaque fills a
  // plain pattern broadcast.
  return static_cast<std::uint32_t>(c.r) |
         static_cast<std::uint32_t>(c.g) << 8 |
         static_cast<std::uint32_t>(c.b) << 16 | 0xFF000000u;
}

// Exact integer form of color::blend_over's lround(d*(1-t) + s*t) with
// t = a/255: x = d*(255-a) + s*a, then divide by 255 with rounding as
// (y + (y >> 8)) >> 8 where y = x + 128. Verified bit-exact against
// blend_over by brute force over all 256^3 (d, s, a) inputs; the test
// suite re-checks a dense sample (test_render_kernels.cpp).
std::uint8_t blend_channel(unsigned d, unsigned s, unsigned a) {
  const unsigned y = d * (255u - a) + s * a + 128u;
  return static_cast<std::uint8_t>((y + (y >> 8)) >> 8);
}

void fill_row_scalar(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  for (std::size_t i = 0; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

void blend_row_scalar(std::uint8_t* row, std::size_t npx, color::Color c) {
  const unsigned a = c.a;
  for (std::size_t i = 0; i < npx; ++i) {
    std::uint8_t* px = row + i * 4;
    px[0] = blend_channel(px[0], c.r, a);
    px[1] = blend_channel(px[1], c.g, a);
    px[2] = blend_channel(px[2], c.b, a);
    px[3] = 255;
  }
}

void copy_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t npx) {
  if (npx == 0) return;  // an empty source may be a null pointer
  std::memcpy(dst, src, npx * 4);
}

#if defined(JEDULE_KERNELS_X86)

// The four u16 lanes of one pixel's source term s*a, in r,g,b,a byte
// order; the alpha lane uses s=255 so a framebuffer pixel (alpha 255)
// blends back to exactly 255.
std::uint64_t premul_lanes(color::Color c) {
  const unsigned a = c.a;
  return static_cast<std::uint64_t>(c.r * a) |
         static_cast<std::uint64_t>(c.g * a) << 16 |
         static_cast<std::uint64_t>(c.b * a) << 32 |
         static_cast<std::uint64_t>(255u * a) << 48;
}

void fill_row_sse2(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const __m128i v = _mm_set1_epi32(static_cast<int>(p));
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i * 4), v);
  }
  for (; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

void blend_row_sse2(std::uint8_t* row, std::size_t npx, color::Color c) {
  // 16-bit-lane evaluation of blend_channel: all intermediates fit in
  // u16 (max 255*255 + 128 + 254 = 65407), so mullo/add/shift per lane
  // reproduce the scalar math exactly.
  const __m128i zero = _mm_setzero_si128();
  const __m128i na = _mm_set1_epi16(static_cast<short>(255 - c.a));
  const __m128i sa =
      _mm_set1_epi64x(static_cast<long long>(premul_lanes(c)));
  const __m128i bias = _mm_set1_epi16(128);
  const __m128i alpha = _mm_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    __m128i px =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i * 4));
    __m128i lo = _mm_unpacklo_epi8(px, zero);
    __m128i hi = _mm_unpackhi_epi8(px, zero);
    lo = _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(lo, na), sa), bias);
    hi = _mm_add_epi16(_mm_add_epi16(_mm_mullo_epi16(hi, na), sa), bias);
    lo = _mm_srli_epi16(_mm_add_epi16(lo, _mm_srli_epi16(lo, 8)), 8);
    hi = _mm_srli_epi16(_mm_add_epi16(hi, _mm_srli_epi16(hi, 8)), 8);
    px = _mm_or_si128(_mm_packus_epi16(lo, hi), alpha);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i * 4), px);
  }
  if (i < npx) blend_row_scalar(row + i * 4, npx - i, c);
}

void copy_row_sse2(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i * 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i * 4), v);
  }
  if (i < npx) std::memcpy(dst + i * 4, src + i * 4, (npx - i) * 4);
}

__attribute__((target("avx2"))) void fill_row_avx2(std::uint8_t* row,
                                                   std::size_t npx,
                                                   color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const __m256i v = _mm256_set1_epi32(static_cast<int>(p));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i * 4), v);
  }
  if (i < npx) fill_row_sse2(row + i * 4, npx - i, c);
}

__attribute__((target("avx2"))) void blend_row_avx2(std::uint8_t* row,
                                                    std::size_t npx,
                                                    color::Color c) {
  // Unpack/pack stay within each 128-bit lane, so applying them
  // symmetrically round-trips the byte order; the lane math matches
  // blend_row_sse2.
  const __m256i zero = _mm256_setzero_si256();
  const __m256i na = _mm256_set1_epi16(static_cast<short>(255 - c.a));
  const __m256i sa =
      _mm256_set1_epi64x(static_cast<long long>(premul_lanes(c)));
  const __m256i bias = _mm256_set1_epi16(128);
  const __m256i alpha = _mm256_set1_epi32(static_cast<int>(0xFF000000u));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    __m256i px =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i * 4));
    __m256i lo = _mm256_unpacklo_epi8(px, zero);
    __m256i hi = _mm256_unpackhi_epi8(px, zero);
    lo = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(lo, na), sa), bias);
    hi = _mm256_add_epi16(
        _mm256_add_epi16(_mm256_mullo_epi16(hi, na), sa), bias);
    lo = _mm256_srli_epi16(_mm256_add_epi16(lo, _mm256_srli_epi16(lo, 8)),
                           8);
    hi = _mm256_srli_epi16(_mm256_add_epi16(hi, _mm256_srli_epi16(hi, 8)),
                           8);
    px = _mm256_or_si256(_mm256_packus_epi16(lo, hi), alpha);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i * 4), px);
  }
  if (i < npx) blend_row_sse2(row + i * 4, npx - i, c);
}

__attribute__((target("avx2"))) void copy_row_avx2(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 4), v);
  }
  if (i < npx) copy_row_sse2(dst + i * 4, src + i * 4, npx - i);
}

#endif  // JEDULE_KERNELS_X86

#if defined(JEDULE_KERNELS_NEON)

void fill_row_neon(std::uint8_t* row, std::size_t npx, color::Color c) {
  const std::uint32_t p = pack_rgba(c);
  const uint32x4_t v = vdupq_n_u32(p);
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    vst1q_u32(reinterpret_cast<std::uint32_t*>(row + i * 4), v);
  }
  for (; i < npx; ++i) std::memcpy(row + i * 4, &p, 4);
}

// blend_channel on one u16x8 vector: d*(255-a) already lives in `acc`.
uint8x8_t blend_narrow_neon(uint16x8_t acc, uint16x8_t sa) {
  uint16x8_t y = vaddq_u16(vaddq_u16(acc, sa), vdupq_n_u16(128));
  y = vaddq_u16(y, vshrq_n_u16(y, 8));
  return vshrn_n_u16(y, 8);
}

void blend_row_neon(std::uint8_t* row, std::size_t npx, color::Color c) {
  const unsigned a = c.a;
  const uint8x8_t na = vdup_n_u8(static_cast<std::uint8_t>(255 - a));
  const uint16x8_t sr = vdupq_n_u16(static_cast<std::uint16_t>(c.r * a));
  const uint16x8_t sg = vdupq_n_u16(static_cast<std::uint16_t>(c.g * a));
  const uint16x8_t sb = vdupq_n_u16(static_cast<std::uint16_t>(c.b * a));
  std::size_t i = 0;
  for (; i + 8 <= npx; i += 8) {
    // De-interleaved planes: 8 pixels per iteration.
    uint8x8x4_t px = vld4_u8(row + i * 4);
    px.val[0] = blend_narrow_neon(vmull_u8(px.val[0], na), sr);
    px.val[1] = blend_narrow_neon(vmull_u8(px.val[1], na), sg);
    px.val[2] = blend_narrow_neon(vmull_u8(px.val[2], na), sb);
    px.val[3] = vdup_n_u8(255);
    vst4_u8(row + i * 4, px);
  }
  if (i < npx) blend_row_scalar(row + i * 4, npx - i, c);
}

void copy_row_neon(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t npx) {
  std::size_t i = 0;
  for (; i + 4 <= npx; i += 4) {
    vst1q_u8(dst + i * 4, vld1q_u8(src + i * 4));
  }
  if (i < npx) std::memcpy(dst + i * 4, src + i * 4, (npx - i) * 4);
}

#endif  // JEDULE_KERNELS_NEON

std::atomic<const Kernels*> g_override{nullptr};

const Kernels* env_or_best() {
  if (const char* env = std::getenv("JEDULE_SIMD")) {
    const std::string_view want(env);
    if (want == "scalar" || want == "off" || want == "0") return &scalar();
    if (const Kernels* k = find(want)) return k;
  }
  return available().back();
}

}  // namespace

const Kernels& scalar() {
  static const Kernels k{"scalar", fill_row_scalar, blend_row_scalar,
                         copy_row_scalar};
  return k;
}

const std::vector<const Kernels*>& available() {
  static const std::vector<const Kernels*> list = [] {
    std::vector<const Kernels*> v{&scalar()};
#if defined(JEDULE_KERNELS_X86)
    const auto& cpu = util::cpu_features();
    if (cpu.sse2) {
      static const Kernels sse2{"sse2", fill_row_sse2, blend_row_sse2,
                                copy_row_sse2};
      v.push_back(&sse2);
    }
    if (cpu.avx2) {
      static const Kernels avx2{"avx2", fill_row_avx2, blend_row_avx2,
                                copy_row_avx2};
      v.push_back(&avx2);
    }
#elif defined(JEDULE_KERNELS_NEON)
    if (util::cpu_features().neon) {
      static const Kernels neon{"neon", fill_row_neon, blend_row_neon,
                                copy_row_neon};
      v.push_back(&neon);
    }
#endif
    return v;
  }();
  return list;
}

const Kernels* find(std::string_view name) {
  for (const Kernels* k : available()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const Kernels& active() {
  if (const Kernels* o = g_override.load(std::memory_order_acquire)) {
    return *o;
  }
  static const Kernels* const picked = env_or_best();
  return *picked;
}

void override_active(const Kernels* k) {
  g_override.store(k, std::memory_order_release);
}

}  // namespace jedule::render::kernels
