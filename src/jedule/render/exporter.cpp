#include "jedule/render/exporter.hpp"

#include "jedule/io/file.hpp"
#include "jedule/render/ascii.hpp"
#include "jedule/render/deflate.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/pdf.hpp"
#include "jedule/render/png.hpp"
#include "jedule/render/ppm.hpp"
#include "jedule/render/svg.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {

class PngExporter final : public Exporter {
 public:
  std::string name() const override { return "png"; }
  std::vector<std::string> extensions() const override { return {".png"}; }
  std::string description() const override {
    return "raster PNG (parallel band painting + chunked deflate)";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    return encode_png(render_raster(schedule, options),
                      options.resolved_threads());
  }
};

class PpmExporter final : public Exporter {
 public:
  std::string name() const override { return "ppm"; }
  std::vector<std::string> extensions() const override { return {".ppm"}; }
  std::string description() const override {
    return "binary PPM (P6) raster";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    return encode_ppm(render_raster(schedule, options));
  }
};

class SvgExporter final : public Exporter {
 public:
  std::string name() const override { return "svg"; }
  std::vector<std::string> extensions() const override { return {".svg"}; }
  std::string description() const override {
    return "scalable vector graphics";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    const GanttLayout layout = layout_gantt(schedule, options);
    SvgCanvas canvas(options.style.width, options.style.height);
    paint_gantt(layout, canvas, options.style);
    return canvas.finish();
  }
};

class SvgzExporter final : public Exporter {
 public:
  std::string name() const override { return "svgz"; }
  std::vector<std::string> extensions() const override {
    return {".svgz", ".svg.gz"};
  }
  std::string description() const override {
    return "gzip-compressed scalable vector graphics";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    const GanttLayout layout = layout_gantt(schedule, options);
    SvgCanvas canvas(options.style.width, options.style.height);
    paint_gantt(layout, canvas, options.style);
    const std::string svg = canvas.finish();
    const auto z =
        gzip_compress(reinterpret_cast<const std::uint8_t*>(svg.data()),
                      svg.size(), DeflateStrategy::dynamic,
                      options.resolved_threads());
    return std::string(reinterpret_cast<const char*>(z.data()), z.size());
  }
};

class PdfExporter final : public Exporter {
 public:
  std::string name() const override { return "pdf"; }
  std::vector<std::string> extensions() const override { return {".pdf"}; }
  std::string description() const override {
    return "single-page vector PDF (/FlateDecode content stream)";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    const GanttLayout layout = layout_gantt(schedule, options);
    PdfCanvas canvas(options.style.width, options.style.height);
    paint_gantt(layout, canvas, options.style);
    return canvas.finish(options.resolved_threads());
  }
};

class AsciiExporter final : public Exporter {
 public:
  std::string name() const override { return "ascii"; }
  std::vector<std::string> extensions() const override { return {".txt"}; }
  std::string description() const override {
    return "plain-text Gantt chart for terminals";
  }
  std::string render(const model::Schedule& schedule,
                     const RenderOptions& options) const override {
    AsciiOptions ascii;
    ascii.time_window = options.style.time_window;
    ascii.cluster_filter = options.style.cluster_filter;
    ascii.type_filter = options.style.type_filter;
    ascii.view_mode = options.style.view_mode;
    return render_ascii(schedule, ascii);
  }
};

}  // namespace

ExporterRegistry& ExporterRegistry::instance() {
  static ExporterRegistry* registry = [] {
    auto* r = new ExporterRegistry();
    r->register_exporter(std::make_unique<PngExporter>());
    r->register_exporter(std::make_unique<PpmExporter>());
    r->register_exporter(std::make_unique<SvgExporter>());
    r->register_exporter(std::make_unique<SvgzExporter>());
    r->register_exporter(std::make_unique<PdfExporter>());
    r->register_exporter(std::make_unique<AsciiExporter>());
    return r;
  }();
  return *registry;
}

void ExporterRegistry::register_exporter(std::unique_ptr<Exporter> exporter) {
  JED_ASSERT(exporter != nullptr);
  for (auto& e : exporters_) {
    if (e->name() == exporter->name()) {
      e = std::move(exporter);
      return;
    }
  }
  exporters_.push_back(std::move(exporter));
}

const Exporter* ExporterRegistry::find(const std::string& name) const {
  for (const auto& e : exporters_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

const Exporter* ExporterRegistry::find_for_path(const std::string& path) const {
  const std::string lower = util::to_lower(path);
  for (auto it = exporters_.rbegin(); it != exporters_.rend(); ++it) {
    for (const auto& ext : (*it)->extensions()) {
      if (util::ends_with(lower, util::to_lower(ext))) return it->get();
    }
  }
  return nullptr;
}

std::vector<std::string> ExporterRegistry::exporter_names() const {
  std::vector<std::string> names;
  names.reserve(exporters_.size());
  for (const auto& e : exporters_) names.push_back(e->name());
  return names;
}

std::vector<const Exporter*> ExporterRegistry::exporters() const {
  std::vector<const Exporter*> out;
  out.reserve(exporters_.size());
  for (const auto& e : exporters_) out.push_back(e.get());
  return out;
}

std::string ExporterRegistry::extension_summary() const {
  std::vector<std::string> exts;
  for (const auto& e : exporters_) {
    for (const auto& ext : e->extensions()) exts.push_back(ext);
  }
  return util::join(exts, " ");
}

std::string render_to_bytes(const model::Schedule& schedule,
                            const RenderOptions& options,
                            const std::string& format) {
  const Exporter* exporter = ExporterRegistry::instance().find(format);
  if (exporter == nullptr) {
    throw ArgumentError(
        "no exporter registered for format '" + format + "' (available: " +
        util::join(ExporterRegistry::instance().exporter_names(), ", ") + ")");
  }
  return exporter->render(schedule, options);
}

void export_schedule(const model::Schedule& schedule,
                     const RenderOptions& options, const std::string& path,
                     const std::string& format) {
  const ExporterRegistry& registry = ExporterRegistry::instance();
  const Exporter* exporter =
      format.empty() ? registry.find_for_path(path) : registry.find(format);
  if (exporter == nullptr) {
    if (format.empty()) {
      throw ArgumentError("unknown image extension on '" + path + "' (use " +
                          registry.extension_summary() + ")");
    }
    throw ArgumentError(
        "no exporter registered for format '" + format + "' (available: " +
        util::join(registry.exporter_names(), ", ") + ")");
  }
  io::write_file(path, exporter->render(schedule, options));
}

}  // namespace jedule::render
