#include "jedule/render/canvas.hpp"

namespace jedule::render {

void Canvas::hatch_rect(double x, double y, double w, double h, int spacing,
                        color::Color c) {
  // Default: clipped 45-degree lines built from the line() primitive.
  for (double k = 0; k < w + h; k += spacing) {
    double x0 = x + k;
    double y0 = y;
    if (x0 > x + w) {
      y0 = y + (x0 - (x + w));
      x0 = x + w;
    }
    double x1 = x;
    double y1 = y + k;
    if (y1 > y + h) {
      x1 = x + (y1 - (y + h));
      y1 = y + h;
    }
    line(x0, y0, x1, y1, c);
  }
}

}  // namespace jedule::render
