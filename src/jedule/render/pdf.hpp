#pragma once

// Minimal from-scratch PDF 1.4 writer: a single page whose content stream
// is produced through the Canvas interface. Replaces the Java original's
// Swing-based PDF export (paper Sec. II.D.2: "high quality graphics of
// schedules ... to be included in articles or reports").

#include <string>

#include "jedule/render/canvas.hpp"

namespace jedule::render {

class PdfCanvas final : public Canvas {
 public:
  /// Page size in points; chart pixels map 1:1 to points.
  PdfCanvas(int width, int height);

  int width() const override { return width_; }
  int height() const override { return height_; }

  void fill_rect(double x, double y, double w, double h,
                 color::Color c) override;
  void stroke_rect(double x, double y, double w, double h,
                   color::Color c) override;
  void line(double x0, double y0, double x1, double y1,
            color::Color c) override;
  void text(double x, double y, std::string_view text, color::Color c,
            int size) override;
  double text_width(std::string_view text, int size) const override;
  double text_height(int size) const override;

  /// Complete PDF file bytes. The page content stream is stored
  /// /FlateDecode-compressed (zlib, in-tree deflate) over up to `threads`
  /// workers; output is byte-identical for every thread count.
  std::string finish(int threads = 1) const;

 private:
  /// PDF pages have a bottom-left origin; charts use top-left.
  double flip(double y) const { return height_ - y; }

  int width_;
  int height_;
  std::string content_;
};

}  // namespace jedule::render
