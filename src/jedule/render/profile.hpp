#pragma once

// Utilization-profile chart: busy resources as a step function of time —
// the quantitative companion of the Gantt view (the paper's related work,
// e.g. Alea2, plots "average system utilization [and] the number of
// running ... jobs"; this view makes the Fig. 4 idle holes and the Fig. 12
// sequential head directly measurable).

#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"
#include "jedule/render/canvas.hpp"
#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

struct ProfileStyle {
  int width = 800;
  int height = 300;

  /// Number of samples across the time axis (0 = one per pixel).
  int samples = 0;

  /// Count only tasks of these types as "busy" (empty = all). The task-
  /// pool case study uses {"computation"} so waiting time doesn't count.
  std::vector<std::string> type_filter;

  /// Fill color of the busy area.
  color::Color fill{70, 130, 200, 255};
};

/// Paints the profile chart onto any canvas backend.
void paint_profile(const model::Schedule& schedule, Canvas& canvas,
                   const ProfileStyle& style);

/// Renders to an in-memory raster.
Framebuffer render_profile(const model::Schedule& schedule,
                           const ProfileStyle& style = {});

/// Renders and writes `path` (.png, .ppm or .svg by extension).
void export_profile(const model::Schedule& schedule,
                    const ProfileStyle& style, const std::string& path);

}  // namespace jedule::render
