#include "jedule/render/framebuffer.hpp"

#include <algorithm>
#include <cstdlib>

#include "jedule/util/error.hpp"

namespace jedule::render {

Framebuffer::Framebuffer(int width, int height, Color background)
    : width_(width), height_(height) {
  JED_ASSERT(width > 0 && height > 0);
  pixels_.resize(static_cast<std::size_t>(width) * height * 4);
  clear(background);
}

void Framebuffer::clear(Color c) {
  for (std::size_t i = 0; i < pixels_.size(); i += 4) {
    pixels_[i] = c.r;
    pixels_[i + 1] = c.g;
    pixels_[i + 2] = c.b;
    pixels_[i + 3] = 255;
  }
}

void Framebuffer::set_pixel(int x, int y, Color c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_ || c.a == 0) return;
  if (c.a == 255) {
    set_pixel_unchecked(x, y, c);
    return;
  }
  const Color blended = color::blend_over(pixel(x, y), c);
  set_pixel_unchecked(x, y, blended);
}

void Framebuffer::set_pixel_unchecked(int x, int y, Color c) {
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 4;
  pixels_[i] = c.r;
  pixels_[i + 1] = c.g;
  pixels_[i + 2] = c.b;
  pixels_[i + 3] = 255;
}

Color Framebuffer::pixel(int x, int y) const {
  JED_ASSERT(x >= 0 && y >= 0 && x < width_ && y < height_);
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 4;
  return Color{pixels_[i], pixels_[i + 1], pixels_[i + 2], pixels_[i + 3]};
}

void Framebuffer::fill_rect(int x, int y, int w, int h, Color c) {
  if (c.a == 0) return;
  const int x0 = std::max(x, 0);
  const int y0 = std::max(y, 0);
  const int x1 = std::min(x + w, width_);
  const int y1 = std::min(y + h, height_);
  if (c.a == 255) {
    for (int yy = y0; yy < y1; ++yy) {
      for (int xx = x0; xx < x1; ++xx) set_pixel_unchecked(xx, yy, c);
    }
  } else {
    for (int yy = y0; yy < y1; ++yy) {
      for (int xx = x0; xx < x1; ++xx) set_pixel(xx, yy, c);
    }
  }
}

void Framebuffer::draw_rect(int x, int y, int w, int h, Color c) {
  if (w <= 0 || h <= 0) return;
  draw_hline(x, x + w - 1, y, c);
  draw_hline(x, x + w - 1, y + h - 1, c);
  draw_vline(x, y, y + h - 1, c);
  draw_vline(x + w - 1, y, y + h - 1, c);
}

void Framebuffer::draw_hline(int x0, int x1, int y, Color c) {
  if (x1 < x0) std::swap(x0, x1);
  for (int x = x0; x <= x1; ++x) set_pixel(x, y, c);
}

void Framebuffer::draw_vline(int x, int y0, int y1, Color c) {
  if (y1 < y0) std::swap(y0, y1);
  for (int y = y0; y <= y1; ++y) set_pixel(x, y, c);
}

void Framebuffer::draw_line(int x0, int y0, int x1, int y1, Color c) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    set_pixel(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Framebuffer::blit_rows(const Framebuffer& src, int y) {
  JED_ASSERT(src.width_ == width_ && y >= 0 && y + src.height_ <= height_);
  std::copy(src.pixels_.begin(), src.pixels_.end(),
            pixels_.begin() +
                static_cast<std::ptrdiff_t>(y) * width_ * 4);
}

void Framebuffer::blit_cols(const Framebuffer& src, int dst_x, int src_x,
                            int w) {
  JED_ASSERT(src.height_ == height_);
  // Clip the column span to both images.
  if (src_x < 0) {
    dst_x -= src_x;
    w += src_x;
    src_x = 0;
  }
  if (dst_x < 0) {
    src_x -= dst_x;
    w += dst_x;
    dst_x = 0;
  }
  w = std::min({w, src.width_ - src_x, width_ - dst_x});
  if (w <= 0) return;
  for (int y = 0; y < height_; ++y) {
    const auto* from =
        src.pixels_.data() +
        (static_cast<std::size_t>(y) * src.width_ + src_x) * 4;
    auto* to = pixels_.data() +
               (static_cast<std::size_t>(y) * width_ + dst_x) * 4;
    std::copy(from, from + static_cast<std::size_t>(w) * 4, to);
  }
}

void Framebuffer::hatch_rect(int x, int y, int w, int h, int spacing,
                             Color c) {
  JED_ASSERT(spacing > 0);
  // 45-degree lines x + y == k, restricted to the rectangle.
  const int x1 = x + w - 1;
  const int y1 = y + h - 1;
  for (int k = x + y; k <= x1 + y1; k += spacing) {
    for (int yy = std::max(y, k - x1); yy <= std::min(y1, k - x); ++yy) {
      set_pixel(k - yy, yy, c);
    }
  }
}

}  // namespace jedule::render
