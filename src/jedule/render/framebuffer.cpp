#include "jedule/render/framebuffer.hpp"

#include <algorithm>
#include <cstdlib>

#include "jedule/render/kernels.hpp"
#include "jedule/util/error.hpp"

namespace jedule::render {

Framebuffer::Framebuffer(int width, int height, Color background)
    : width_(width), height_(height) {
  JED_ASSERT(width > 0 && height > 0);
  pixels_.resize(static_cast<std::size_t>(width) * height * 4);
  clear(background);
}

void Framebuffer::clear(Color c) {
  // The whole image is one contiguous pixel run.
  kernels::active().fill_row(pixels_.data(), pixels_.size() / 4, c);
}

void Framebuffer::set_pixel(int x, int y, Color c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_ || c.a == 0) return;
  if (c.a == 255) {
    set_pixel_unchecked(x, y, c);
    return;
  }
  const Color blended = color::blend_over(pixel(x, y), c);
  set_pixel_unchecked(x, y, blended);
}

void Framebuffer::set_pixel_unchecked(int x, int y, Color c) {
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 4;
  pixels_[i] = c.r;
  pixels_[i + 1] = c.g;
  pixels_[i + 2] = c.b;
  pixels_[i + 3] = 255;
}

Color Framebuffer::pixel(int x, int y) const {
  JED_ASSERT(x >= 0 && y >= 0 && x < width_ && y < height_);
  const std::size_t i =
      (static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)) * 4;
  return Color{pixels_[i], pixels_[i + 1], pixels_[i + 2], pixels_[i + 3]};
}

void Framebuffer::fill_rect(int x, int y, int w, int h, Color c) {
  if (c.a == 0 || w <= 0 || h <= 0) return;
  // Clip in 64-bit: x + w and y + h overflow int for near-INT_MAX extents.
  const long long x0 = std::max<long long>(x, 0);
  const long long y0 = std::max<long long>(y, 0);
  const long long x1 = std::min<long long>(static_cast<long long>(x) + w,
                                           width_);
  const long long y1 = std::min<long long>(static_cast<long long>(y) + h,
                                           height_);
  if (x0 >= x1 || y0 >= y1) return;
  const auto& k = kernels::active();
  const std::size_t npx = static_cast<std::size_t>(x1 - x0);
  if (c.a == 255) {
    for (long long yy = y0; yy < y1; ++yy) {
      k.fill_row(row(static_cast<int>(yy)) + x0 * 4, npx, c);
    }
  } else {
    for (long long yy = y0; yy < y1; ++yy) {
      k.blend_row(row(static_cast<int>(yy)) + x0 * 4, npx, c);
    }
  }
}

namespace {
// x + w - 1 without overflowing; out-of-range results clamp to int, which
// the line clippers then reject or trim against the canvas anyway.
int far_edge(int x, int extent) {
  const long long e = static_cast<long long>(x) + extent - 1;
  return static_cast<int>(std::clamp<long long>(e, INT32_MIN, INT32_MAX));
}
}  // namespace

void Framebuffer::draw_rect(int x, int y, int w, int h, Color c) {
  if (w <= 0 || h <= 0) return;
  const int xe = far_edge(x, w);
  const int ye = far_edge(y, h);
  draw_hline(x, xe, y, c);
  draw_hline(x, xe, ye, c);
  draw_vline(x, y, ye, c);
  draw_vline(xe, y, ye, c);
}

void Framebuffer::draw_hline(int x0, int x1, int y, Color c) {
  if (x1 < x0) std::swap(x0, x1);
  // Clip once up front instead of bounds-checking every pixel.
  if (c.a == 0 || y < 0 || y >= height_ || x1 < 0 || x0 >= width_) return;
  x0 = std::max(x0, 0);
  x1 = std::min(x1, width_ - 1);
  std::uint8_t* p = row(y) + static_cast<std::size_t>(x0) * 4;
  const std::size_t npx = static_cast<std::size_t>(x1 - x0) + 1;
  const auto& k = kernels::active();
  if (c.a == 255) {
    k.fill_row(p, npx, c);
  } else {
    k.blend_row(p, npx, c);
  }
}

void Framebuffer::draw_vline(int x, int y0, int y1, Color c) {
  if (y1 < y0) std::swap(y0, y1);
  if (c.a == 0 || x < 0 || x >= width_ || y1 < 0 || y0 >= height_) return;
  y0 = std::max(y0, 0);
  y1 = std::min(y1, height_ - 1);
  if (c.a == 255) {
    for (int y = y0; y <= y1; ++y) set_pixel_unchecked(x, y, c);
  } else {
    for (int y = y0; y <= y1; ++y) {
      set_pixel_unchecked(x, y, color::blend_over(pixel(x, y), c));
    }
  }
}

void Framebuffer::draw_line(int x0, int y0, int x1, int y1, Color c) {
  // Fully off-canvas lines used to walk every coordinate through
  // bounds-checked set_pixel; reject them here, and route axis-aligned
  // lines to the clipped span primitives (identical pixels and blends).
  if (c.a == 0 || std::max(x0, x1) < 0 || std::min(x0, x1) >= width_ ||
      std::max(y0, y1) < 0 || std::min(y0, y1) >= height_) {
    return;
  }
  if (y0 == y1) {
    draw_hline(x0, x1, y0, c);
    return;
  }
  if (x0 == x1) {
    draw_vline(x0, y0, y1, c);
    return;
  }
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    set_pixel(x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Framebuffer::blit_rows(const Framebuffer& src, int y) {
  JED_ASSERT(src.width_ == width_ && y >= 0 && y + src.height_ <= height_);
  kernels::active().copy_row(row(y), src.pixels_.data(),
                             src.pixels_.size() / 4);
}

void Framebuffer::blit_cols(const Framebuffer& src, int dst_x, int src_x,
                            int w) {
  JED_ASSERT(src.height_ == height_);
  // Clip the column span to both images.
  if (src_x < 0) {
    dst_x -= src_x;
    w += src_x;
    src_x = 0;
  }
  if (dst_x < 0) {
    src_x -= dst_x;
    w += dst_x;
    dst_x = 0;
  }
  w = std::min({w, src.width_ - src_x, width_ - dst_x});
  if (w <= 0) return;
  const auto& k = kernels::active();
  for (int y = 0; y < height_; ++y) {
    const auto* from =
        src.pixels_.data() +
        (static_cast<std::size_t>(y) * src.width_ + src_x) * 4;
    auto* to = pixels_.data() +
               (static_cast<std::size_t>(y) * width_ + dst_x) * 4;
    k.copy_row(to, from, static_cast<std::size_t>(w));
  }
}

void Framebuffer::hatch_rect(int x, int y, int w, int h, int spacing,
                             Color c) {
  JED_ASSERT(spacing > 0);
  // 45-degree lines x + y == k, restricted to the rectangle.
  const int x1 = x + w - 1;
  const int y1 = y + h - 1;
  for (int k = x + y; k <= x1 + y1; k += spacing) {
    for (int yy = std::max(y, k - x1); yy <= std::min(y1, k - x); ++yy) {
      set_pixel(k - yy, yy, c);
    }
  }
}

}  // namespace jedule::render
