#include "jedule/render/tile_cache.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "jedule/render/raster_canvas.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Extra pixel columns of time window on each side of a tile, so every box
/// whose rounded edges or 1-px outline reach into the tile is laid out.
constexpr long long kTileSlack = 4;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void hash_bytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void hash_u64(std::uint64_t* h, std::uint64_t v) { hash_bytes(h, &v, 8); }

void hash_string(std::uint64_t* h, const std::string& s) {
  hash_u64(h, s.size());
  hash_bytes(h, s.data(), s.size());
}

/// Everything that changes tile pixels except the view window (the window
/// is what the grid + tile keys encode) and the schedule content (hashed
/// separately). panel_lod is part of the key: a pan that flips a panel
/// between exact boxes and density bins must re-rasterize. The edge
/// style (edges/edge_density) is deliberately absent — tiles hold the
/// box layer only, so toggling edges repaints just the frame overlay.
std::uint64_t hash_style(const GanttStyle& style, std::uint64_t colormap_epoch,
                         const std::vector<std::uint8_t>& panel_lod) {
  std::uint64_t h = kFnvOffset;
  hash_u64(&h, static_cast<std::uint64_t>(style.width));
  hash_u64(&h, static_cast<std::uint64_t>(style.height));
  hash_u64(&h, static_cast<std::uint64_t>(style.view_mode));
  hash_u64(&h, (style.show_composites ? 1u : 0u) |
                   (style.show_labels ? 2u : 0u) |
                   (style.show_grid ? 4u : 0u) | (style.show_meta ? 8u : 0u) |
                   (style.hatch_composites ? 16u : 0u));
  hash_u64(&h, style.cluster_filter.size());
  for (int id : style.cluster_filter) {
    hash_u64(&h, static_cast<std::uint64_t>(id));
  }
  hash_u64(&h, style.type_filter.size());
  for (const auto& t : style.type_filter) hash_string(&h, t);
  hash_string(&h, style.highlight_key);
  hash_string(&h, style.highlight_value);
  hash_u64(&h, static_cast<std::uint64_t>(style.highlight_bg.r) |
                   (static_cast<std::uint64_t>(style.highlight_bg.g) << 8) |
                   (static_cast<std::uint64_t>(style.highlight_bg.b) << 16) |
                   (static_cast<std::uint64_t>(style.highlight_bg.a) << 24));
  hash_u64(&h, static_cast<std::uint64_t>(style.time_ticks));
  hash_u64(&h, static_cast<std::uint64_t>(style.lod));
  hash_u64(&h, static_cast<std::uint64_t>(style.lod_density));
  hash_u64(&h, colormap_epoch);
  hash_bytes(&h, panel_lod.data(), panel_lod.size());
  return h;
}

std::uint64_t double_bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, 8);
  return b;
}

long long floor_div(long long a, long long b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

}  // namespace

TileCache::TileCache() : TileCache(Options{}) {}

TileCache::TileCache(Options opt) : opt_(opt) {
  JED_ASSERT(opt_.tile_width > 0);
}

void TileCache::clear() {
  tiles_.clear();
  lru_.clear();
}

void TileCache::invalidate() {
  clear();
  grid_.reset();
  ++stats_.invalidations;
}

void TileCache::drop_tiles() {
  if (!tiles_.empty()) {
    tiles_.clear();
    lru_.clear();
  }
}

Framebuffer TileCache::render_frame(const Request& req) {
  JED_ASSERT(req.schedule != nullptr && req.colormap != nullptr);
  const auto t_start = Clock::now();
  last_ = profile::FrameStats{};

  LayoutHints base_hints;
  base_hints.index = req.index;
  base_hints.edge_index = req.edge_index;
  base_hints.assume_validated = req.validated;
  base_hints.interactive = true;

  // Resolve the view window: the style's window, else the whole schedule.
  // layout_gantt rejects empty windows, so degenerate ones get a span.
  model::TimeRange win{0, 1};
  if (req.style.time_window) {
    win = *req.style.time_window;
  } else if (req.index != nullptr && req.index->time_range()) {
    win = *req.index->time_range();
  } else if (req.index == nullptr) {
    double lo = 0, hi = 0;
    bool any = false;
    for (const auto& t : req.schedule->tasks()) {
      lo = any ? std::min(lo, t.start_time()) : t.start_time();
      hi = any ? std::max(hi, t.end_time()) : t.end_time();
      any = true;
    }
    if (any) win = {lo, hi};
  }
  if (!(win.length() > 0)) win = {win.begin, win.begin + 1};

  // Hatching is anchored to box corners, which tile clipping would shift;
  // those frames render directly and leave the cache untouched.
  if (req.style.hatch_composites) {
    Framebuffer fb = render_direct(req, win, base_hints);
    last_.total_ms = ms_since(t_start);
    return fb;
  }

  const std::uint64_t content =
      req.index != nullptr ? req.index->content_hash()
                           : model::TaskIndex::hash_schedule(*req.schedule);
  if (content != content_hash_) {
    if (content_hash_ != 0) {
      drop_tiles();
      ++last_.invalidations;
    }
    content_hash_ = content;
  }

  // Pixel grid: reuse when the window length is bit-identical and the new
  // window begin lands on (within 1e-6 px of) an integer column of the old
  // grid — i.e. the view was panned, not zoomed.
  const PanelExtent extent = gantt_panel_extent(req.style);
  const long long px_x = std::llround(extent.x);
  const long long px_w = std::max<long long>(1, std::llround(extent.w));
  const std::uint64_t len_bits = double_bits(win.length());
  long long j = 0;
  bool grid_ok = false;
  if (grid_ && grid_->len_bits == len_bits) {
    const double d = (win.begin - grid_->anchor) * grid_->cols_per_time;
    j = std::llround(d);
    grid_ok = std::abs(d - static_cast<double>(j)) <= 1e-6;
  }
  if (!grid_ok) {
    if (grid_) {
      drop_tiles();
      ++last_.invalidations;
    }
    Grid g;
    g.anchor = win.begin;
    g.cols_per_time = static_cast<double>(px_w) / win.length();
    g.time_per_px = win.length() / static_cast<double>(px_w);
    g.len_bits = len_bits;
    grid_ = g;
    j = 0;
  }
  const Grid grid = *grid_;

  // The frame's own layout: culled to the window, snapped to the grid,
  // density bins skipped (tiles paint those). It decides panel_lod for
  // the whole frame and supplies header, labels and chrome geometry.
  const auto t_layout = Clock::now();
  GanttStyle frame_style = req.style;
  frame_style.time_window = win;
  LayoutHints frame_hints = base_hints;
  frame_hints.skip_lod_bins = true;
  frame_hints.snap = SnapGrid{grid.anchor, grid.cols_per_time, j};
  GanttLayout layout = layout_gantt(*req.schedule, *req.colormap, frame_style,
                                    /*threads=*/opt_.threads, frame_hints);
  last_.layout_ms = ms_since(t_layout);
  last_.boxes = layout.boxes.size();
  for (auto v : layout.panel_lod) last_.lod = last_.lod || v != 0;
  last_.edges_considered = layout.edge_stats.considered;
  last_.edge_arrows = layout.edge_stats.arrows;
  last_.edge_heat_panels = layout.edge_stats.heat_panels;

  const std::uint64_t style_h =
      hash_style(req.style, req.colormap_epoch, layout.panel_lod);
  if (style_h != style_hash_) {
    if (style_hash_ != 0 && !tiles_.empty()) {
      drop_tiles();
      ++last_.invalidations;
    }
    style_hash_ = style_h;
  }

  // Tiles covering the visible absolute pixel columns [j, j + px_w).
  const long long tw = opt_.tile_width;
  const long long k0 = floor_div(j, tw);
  const long long k1 = floor_div(j + px_w - 1, tw);
  last_.tiles_total = static_cast<std::size_t>(k1 - k0 + 1);

  const auto t_tiles = Clock::now();
  std::vector<long long> missing;
  for (long long k = k0; k <= k1; ++k) {
    auto it = tiles_.find(k);
    if (it != tiles_.end()) {
      ++last_.tiles_hit;
      lru_.erase(it->second.lru);
      lru_.push_front(k);
      it->second.lru = lru_.begin();
    } else {
      missing.push_back(k);
    }
  }

  // Rasterize misses in parallel, then insert in key order (deterministic
  // LRU no matter which worker finished first).
  std::vector<Framebuffer> fresh;
  fresh.reserve(missing.size());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    fresh.emplace_back(1, 1);
  }
  util::parallel_for(missing.size(), opt_.threads, [&](std::size_t i) {
    fresh[i] = render_tile(req, grid, missing[i], base_hints,
                           static_cast<int>(px_x), layout.panel_lod);
  });
  for (std::size_t i = 0; i < missing.size(); ++i) {
    lru_.push_front(missing[i]);
    tiles_.emplace(missing[i], Tile{std::move(fresh[i]), lru_.begin()});
    ++last_.tiles_missed;
  }

  // Evict beyond capacity, never below what this frame needs.
  const std::size_t cap = std::max(opt_.max_tiles, last_.tiles_total);
  while (tiles_.size() > cap) {
    tiles_.erase(lru_.back());
    lru_.pop_back();
    ++last_.tiles_evicted;
  }

  // Assemble: white canvas, tile strips clipped to the panel span, then
  // the per-frame overlay (header, labels, chrome) on top.
  Framebuffer fb(req.style.width, req.style.height, color::kWhite);
  for (long long k = k0; k <= k1; ++k) {
    const long long left = px_x + k * tw - j;  // device x of tile column 0
    const long long d0 = std::max(px_x, left);
    const long long d1 = std::min(px_x + px_w, left + tw);
    if (d1 <= d0) continue;
    fb.blit_cols(tiles_.at(k).fb, static_cast<int>(d0),
                 static_cast<int>(d0 - left), static_cast<int>(d1 - d0));
  }
  last_.tiles_ms = ms_since(t_tiles);

  const auto t_overlay = Clock::now();
  RasterCanvas canvas(fb);
  paint_gantt_header(layout, canvas);
  // Edges are a per-frame overlay between the blitted box layer and the
  // labels/chrome — tile bytes never change with the edge style.
  paint_gantt_edges(layout, canvas);
  if (req.style.show_labels) paint_gantt_labels(layout, canvas, frame_style);
  paint_gantt_chrome(layout, canvas, frame_style);
  last_.overlay_ms = ms_since(t_overlay);

  last_.total_ms = ms_since(t_start);
  stats_.hits += last_.tiles_hit;
  stats_.misses += last_.tiles_missed;
  stats_.evictions += last_.tiles_evicted;
  stats_.invalidations += last_.invalidations;
  return fb;
}

Framebuffer TileCache::render_tile(const Request& req, const Grid& grid,
                                   long long tile_col,
                                   const LayoutHints& base_hints, int panel_x,
                                   const std::vector<std::uint8_t>& panel_lod)
    const {
  const long long tw = opt_.tile_width;
  const long long b0 = tile_col * tw - kTileSlack;
  const long long b1 = (tile_col + 1) * tw + kTileSlack;
  GanttStyle style = req.style;
  // Tiles hold the box layer only; edges paint in the frame overlay.
  style.edges = EdgeMode::kOff;
  style.time_window =
      model::TimeRange{grid.anchor + static_cast<double>(b0) * grid.time_per_px,
                       grid.anchor + static_cast<double>(b1) * grid.time_per_px};

  LayoutHints hints = base_hints;
  hints.skip_lod_bins = false;
  hints.panel_lod_override = panel_lod;
  // origin_col places absolute column tile_col * tile_width at device x 0
  // of the tile image (panel.x cancels out of the snap arithmetic).
  hints.snap = SnapGrid{grid.anchor, grid.cols_per_time,
                        tile_col * tw + static_cast<long long>(panel_x)};

  GanttLayout layout = layout_gantt(*req.schedule, *req.colormap, style,
                                    /*threads=*/1, hints);
  Framebuffer fb(static_cast<int>(tw), req.style.height, color::kWhite);
  RasterCanvas canvas(fb);
  paint_gantt_boxes(layout, canvas, style, /*with_labels=*/false);
  return fb;
}

Framebuffer TileCache::render_direct(const Request& req,
                                     const model::TimeRange& win,
                                     const LayoutHints& base_hints) {
  GanttStyle style = req.style;
  style.time_window = win;
  const auto t_layout = Clock::now();
  GanttLayout layout = layout_gantt(*req.schedule, *req.colormap, style,
                                    /*threads=*/opt_.threads, base_hints);
  last_.layout_ms = ms_since(t_layout);
  last_.boxes = layout.boxes.size();
  for (auto v : layout.panel_lod) last_.lod = last_.lod || v != 0;
  last_.edges_considered = layout.edge_stats.considered;
  last_.edge_arrows = layout.edge_stats.arrows;
  last_.edge_heat_panels = layout.edge_stats.heat_panels;
  last_.cached = false;

  Framebuffer fb(style.width, style.height, color::kWhite);
  RasterCanvas canvas(fb);
  paint_gantt(layout, canvas, style);
  return fb;
}

}  // namespace jedule::render
