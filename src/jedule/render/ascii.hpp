#pragma once

// Plain-text Gantt rendering for terminals. The original tool opens a
// Swing window in interactive mode; without a display, the `view`
// subcommand prints this view instead, so "run the simulation, look at
// the schedule, tweak, re-read" still works over SSH. One character cell
// covers (host band x time bucket); each task type gets a stable letter.

#include <string>

#include "jedule/model/schedule.hpp"

namespace jedule::render {

struct AsciiOptions {
  /// Character columns of the time axis.
  int width = 72;

  /// A cluster taller than this many rows groups several hosts per row.
  int max_rows_per_cluster = 16;

  /// Restrict to this window (e.g. the interactive session's zoom).
  std::optional<model::TimeRange> time_window;

  /// Show only these clusters (empty = all).
  std::vector<int> cluster_filter;

  /// Show only tasks of these types (empty = all).
  std::vector<std::string> type_filter;

  /// Print the type -> letter legend under the chart.
  bool show_legend = true;

  model::ViewMode view_mode = model::ViewMode::kScaled;
};

/// Renders the schedule as text. Cells: '.' idle, a type letter where one
/// type occupies the cell, '*' where several types mix.
std::string render_ascii(const model::Schedule& schedule,
                         const AsciiOptions& options = {});

}  // namespace jedule::render
