#include "jedule/render/font.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "jedule/util/error.hpp"

namespace jedule::render {

namespace {

// Glyphs are authored as 7 rows of 5 cells ('#' = on). They are compiled to
// row bitmasks once, on first use.
struct GlyphArt {
  const char* rows[kGlyphHeight];
};

// ASCII 32..126 in order.
constexpr GlyphArt kArt[] = {
    // ' '
    {{".....", ".....", ".....", ".....", ".....", ".....", "....."}},
    // '!'
    {{"..#..", "..#..", "..#..", "..#..", "..#..", ".....", "..#.."}},
    // '"'
    {{".#.#.", ".#.#.", ".#.#.", ".....", ".....", ".....", "....."}},
    // '#'
    {{".#.#.", ".#.#.", "#####", ".#.#.", "#####", ".#.#.", ".#.#."}},
    // '$'
    {{"..#..", ".####", "#.#..", ".###.", "..#.#", "####.", "..#.."}},
    // '%'
    {{"##...", "##..#", "...#.", "..#..", ".#...", "#..##", "...##"}},
    // '&'
    {{".##..", "#..#.", "#.#..", ".#...", "#.#.#", "#..#.", ".##.#"}},
    // '\''
    {{"..#..", "..#..", "..#..", ".....", ".....", ".....", "....."}},
    // '('
    {{"...#.", "..#..", ".#...", ".#...", ".#...", "..#..", "...#."}},
    // ')'
    {{".#...", "..#..", "...#.", "...#.", "...#.", "..#..", ".#..."}},
    // '*'
    {{".....", "..#..", "#.#.#", ".###.", "#.#.#", "..#..", "....."}},
    // '+'
    {{".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."}},
    // ','
    {{".....", ".....", ".....", ".....", "..##.", "..#..", ".#..."}},
    // '-'
    {{".....", ".....", ".....", "#####", ".....", ".....", "....."}},
    // '.'
    {{".....", ".....", ".....", ".....", ".....", ".##..", ".##.."}},
    // '/'
    {{"....#", "...#.", "...#.", "..#..", ".#...", ".#...", "#...."}},
    // '0'
    {{".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."}},
    // '1'
    {{"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."}},
    // '2'
    {{".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"}},
    // '3'
    {{"#####", "...#.", "..#..", "...#.", "....#", "#...#", ".###."}},
    // '4'
    {{"...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."}},
    // '5'
    {{"#####", "#....", "####.", "....#", "....#", "#...#", ".###."}},
    // '6'
    {{"..##.", ".#...", "#....", "####.", "#...#", "#...#", ".###."}},
    // '7'
    {{"#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."}},
    // '8'
    {{".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."}},
    // '9'
    {{".###.", "#...#", "#...#", ".####", "....#", "...#.", ".##.."}},
    // ':'
    {{".....", ".##..", ".##..", ".....", ".##..", ".##..", "....."}},
    // ';'
    {{".....", ".##..", ".##..", ".....", ".##..", "..#..", ".#..."}},
    // '<'
    {{"...#.", "..#..", ".#...", "#....", ".#...", "..#..", "...#."}},
    // '='
    {{".....", ".....", "#####", ".....", "#####", ".....", "....."}},
    // '>'
    {{".#...", "..#..", "...#.", "....#", "...#.", "..#..", ".#..."}},
    // '?'
    {{".###.", "#...#", "....#", "...#.", "..#..", ".....", "..#.."}},
    // '@'
    {{".###.", "#...#", "#.###", "#.#.#", "#.###", "#....", ".###."}},
    // 'A'
    {{".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"}},
    // 'B'
    {{"####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."}},
    // 'C'
    {{".###.", "#...#", "#....", "#....", "#....", "#...#", ".###."}},
    // 'D'
    {{"####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."}},
    // 'E'
    {{"#####", "#....", "#....", "####.", "#....", "#....", "#####"}},
    // 'F'
    {{"#####", "#....", "#....", "####.", "#....", "#....", "#...."}},
    // 'G'
    {{".###.", "#...#", "#....", "#.###", "#...#", "#...#", ".###."}},
    // 'H'
    {{"#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"}},
    // 'I'
    {{".###.", "..#..", "..#..", "..#..", "..#..", "..#..", ".###."}},
    // 'J'
    {{"..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."}},
    // 'K'
    {{"#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"}},
    // 'L'
    {{"#....", "#....", "#....", "#....", "#....", "#....", "#####"}},
    // 'M'
    {{"#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"}},
    // 'N'
    {{"#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"}},
    // 'O'
    {{".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."}},
    // 'P'
    {{"####.", "#...#", "#...#", "####.", "#....", "#....", "#...."}},
    // 'Q'
    {{".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"}},
    // 'R'
    {{"####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"}},
    // 'S'
    {{".####", "#....", "#....", ".###.", "....#", "....#", "####."}},
    // 'T'
    {{"#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."}},
    // 'U'
    {{"#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."}},
    // 'V'
    {{"#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."}},
    // 'W'
    {{"#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"}},
    // 'X'
    {{"#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"}},
    // 'Y'
    {{"#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."}},
    // 'Z'
    {{"#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"}},
    // '['
    {{".###.", ".#...", ".#...", ".#...", ".#...", ".#...", ".###."}},
    // '\\'
    {{"#....", ".#...", ".#...", "..#..", "...#.", "...#.", "....#"}},
    // ']'
    {{".###.", "...#.", "...#.", "...#.", "...#.", "...#.", ".###."}},
    // '^'
    {{"..#..", ".#.#.", "#...#", ".....", ".....", ".....", "....."}},
    // '_'
    {{".....", ".....", ".....", ".....", ".....", ".....", "#####"}},
    // '`'
    {{".#...", "..#..", ".....", ".....", ".....", ".....", "....."}},
    // 'a'
    {{".....", ".....", ".###.", "....#", ".####", "#...#", ".####"}},
    // 'b'
    {{"#....", "#....", "####.", "#...#", "#...#", "#...#", "####."}},
    // 'c'
    {{".....", ".....", ".###.", "#....", "#....", "#...#", ".###."}},
    // 'd'
    {{"....#", "....#", ".####", "#...#", "#...#", "#...#", ".####"}},
    // 'e'
    {{".....", ".....", ".###.", "#...#", "#####", "#....", ".###."}},
    // 'f'
    {{"..##.", ".#..#", ".#...", "###..", ".#...", ".#...", ".#..."}},
    // 'g'
    {{".....", ".####", "#...#", "#...#", ".####", "....#", ".###."}},
    // 'h'
    {{"#....", "#....", "####.", "#...#", "#...#", "#...#", "#...#"}},
    // 'i'
    {{"..#..", ".....", ".##..", "..#..", "..#..", "..#..", ".###."}},
    // 'j'
    {{"...#.", ".....", "..##.", "...#.", "...#.", "#..#.", ".##.."}},
    // 'k'
    {{"#....", "#....", "#..#.", "#.#..", "##...", "#.#..", "#..#."}},
    // 'l'
    {{".##..", "..#..", "..#..", "..#..", "..#..", "..#..", ".###."}},
    // 'm'
    {{".....", ".....", "##.#.", "#.#.#", "#.#.#", "#.#.#", "#.#.#"}},
    // 'n'
    {{".....", ".....", "####.", "#...#", "#...#", "#...#", "#...#"}},
    // 'o'
    {{".....", ".....", ".###.", "#...#", "#...#", "#...#", ".###."}},
    // 'p'
    {{".....", "####.", "#...#", "#...#", "####.", "#....", "#...."}},
    // 'q'
    {{".....", ".####", "#...#", "#...#", ".####", "....#", "....#"}},
    // 'r'
    {{".....", ".....", "#.##.", "##..#", "#....", "#....", "#...."}},
    // 's'
    {{".....", ".....", ".####", "#....", ".###.", "....#", "####."}},
    // 't'
    {{".#...", ".#...", "###..", ".#...", ".#...", ".#..#", "..##."}},
    // 'u'
    {{".....", ".....", "#...#", "#...#", "#...#", "#...#", ".####"}},
    // 'v'
    {{".....", ".....", "#...#", "#...#", "#...#", ".#.#.", "..#.."}},
    // 'w'
    {{".....", ".....", "#...#", "#...#", "#.#.#", "#.#.#", ".#.#."}},
    // 'x'
    {{".....", ".....", "#...#", ".#.#.", "..#..", ".#.#.", "#...#"}},
    // 'y'
    {{".....", "#...#", "#...#", "#...#", ".####", "....#", ".###."}},
    // 'z'
    {{".....", ".....", "#####", "...#.", "..#..", ".#...", "#####"}},
    // '{'
    {{"...#.", "..#..", "..#..", ".#...", "..#..", "..#..", "...#."}},
    // '|'
    {{"..#..", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."}},
    // '}'
    {{".#...", "..#..", "..#..", "...#.", "..#..", "..#..", ".#..."}},
    // '~'
    {{".....", ".....", ".#...", "#.#.#", "...#.", ".....", "....."}},
};

static_assert(sizeof(kArt) / sizeof(kArt[0]) == 95,
              "one glyph per printable ASCII character");

std::array<std::uint8_t, kGlyphHeight> compile_glyph(const GlyphArt& art) {
  std::array<std::uint8_t, kGlyphHeight> rows{};
  for (int r = 0; r < kGlyphHeight; ++r) {
    std::uint8_t bits = 0;
    for (int c = 0; c < kGlyphWidth; ++c) {
      JED_ASSERT(art.rows[r][c] == '#' || art.rows[r][c] == '.');
      if (art.rows[r][c] == '#') {
        bits |= static_cast<std::uint8_t>(1u << (kGlyphWidth - 1 - c));
      }
    }
    rows[static_cast<std::size_t>(r)] = bits;
  }
  return rows;
}

const std::array<std::array<std::uint8_t, kGlyphHeight>, 96>& glyph_table() {
  static const auto table = [] {
    std::array<std::array<std::uint8_t, kGlyphHeight>, 96> t{};
    for (std::size_t i = 0; i < 95; ++i) t[i] = compile_glyph(kArt[i]);
    // Slot 95: tofu box for characters outside the font.
    t[95] = {0x1F, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1F};
    return t;
  }();
  return table;
}

// Horizontal runs of on-cells per glyph row, pre-extracted from the row
// bitmask so draw_text fills one rect per run instead of one per cell
// (a 5-bit row holds at most three runs, e.g. "#.#.#"). Runs are in cell
// units; scaling multiplies through, so one table serves every scale.
struct GlyphRuns {
  struct Run {
    std::uint8_t x0, x1;  // half-open cell columns
  };
  std::array<std::array<Run, 3>, kGlyphHeight> runs;
  std::array<std::uint8_t, kGlyphHeight> count;
};

GlyphRuns compile_runs(const std::array<std::uint8_t, kGlyphHeight>& rows) {
  GlyphRuns g{};
  for (int r = 0; r < kGlyphHeight; ++r) {
    int c = 0;
    while (c < kGlyphWidth) {
      if ((rows[static_cast<std::size_t>(r)] &
           (1u << (kGlyphWidth - 1 - c))) == 0) {
        ++c;
        continue;
      }
      int end = c + 1;
      while (end < kGlyphWidth &&
             (rows[static_cast<std::size_t>(r)] &
              (1u << (kGlyphWidth - 1 - end))) != 0) {
        ++end;
      }
      auto& row = g.runs[static_cast<std::size_t>(r)];
      row[g.count[static_cast<std::size_t>(r)]++] =
          GlyphRuns::Run{static_cast<std::uint8_t>(c),
                         static_cast<std::uint8_t>(end)};
      c = end;
    }
  }
  return g;
}

const GlyphRuns& glyph_runs(char c) {
  static const auto table = [] {
    std::array<GlyphRuns, 96> t{};
    for (std::size_t i = 0; i < 96; ++i) {
      t[i] = compile_runs(glyph_table()[i]);
    }
    return t;
  }();
  const unsigned char u = static_cast<unsigned char>(c);
  if (u < 32 || u > 126) return table[95];
  return table[u - 32];
}

// A whole string flattened to spans in unscaled text-space cells: the
// keyed cache for repeated labels (task types, axis numbers). Thread-local
// so band/tile workers never contend or share state.
struct TextSpans {
  struct Span {
    int x0, x1;           // half-open text-space cell columns
    std::uint8_t row;     // glyph row 0..6
  };
  std::vector<Span> spans;
};

const TextSpans& cached_text_spans(std::string_view text) {
  thread_local std::unordered_map<std::string, TextSpans> cache;
  // Unique labels (task ids) could grow the cache without bound; labels
  // repeat heavily in practice, so a rare wholesale reset is cheap.
  if (cache.size() > 4096) cache.clear();
  const auto [it, inserted] = cache.try_emplace(std::string(text));
  if (inserted) {
    int cursor = 0;
    for (char ch : text) {
      const GlyphRuns& g = glyph_runs(ch);
      for (std::uint8_t r = 0; r < kGlyphHeight; ++r) {
        for (std::uint8_t i = 0; i < g.count[r]; ++i) {
          it->second.spans.push_back(TextSpans::Span{
              cursor + g.runs[r][i].x0, cursor + g.runs[r][i].x1, r});
        }
      }
      cursor += kGlyphWidth + 1;
    }
  }
  return it->second;
}

}  // namespace

const std::array<std::uint8_t, kGlyphHeight>& glyph_bitmap(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  if (u < 32 || u > 126) return glyph_table()[95];
  return glyph_table()[u - 32];
}

int scale_for_font_size(int pixel_size) {
  return std::max(1, (pixel_size + 4) / 8);
}

int text_width(std::string_view text, int scale) {
  if (text.empty()) return 0;
  const int advance = (kGlyphWidth + 1) * scale;
  return static_cast<int>(text.size()) * advance - scale;  // no last gap
}

int text_height(int scale) { return kGlyphHeight * scale; }

void draw_text(Framebuffer& fb, int x, int y, std::string_view text,
               Color color, int scale) {
  JED_ASSERT(scale >= 1);
  // One fill per cached span instead of one per on-cell. The span cells
  // are disjoint, so every pixel is still written exactly once and the
  // bytes match the per-cell path for opaque and translucent colors alike.
  for (const auto& s : cached_text_spans(text).spans) {
    fb.fill_rect(x + s.x0 * scale, y + s.row * scale, (s.x1 - s.x0) * scale,
                 scale, color);
  }
}

void draw_text_centered(Framebuffer& fb, int x, int y, int w, int h,
                        std::string_view text, Color color, int scale) {
  const int tw = text_width(text, scale);
  const int th = text_height(scale);
  draw_text(fb, x + (w - tw) / 2, y + (h - th) / 2, text, color, scale);
}

}  // namespace jedule::render
