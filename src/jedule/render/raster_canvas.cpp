#include "jedule/render/raster_canvas.hpp"

#include <algorithm>
#include <cmath>

#include "jedule/render/font.hpp"

namespace jedule::render {

namespace {
int px(double v) { return static_cast<int>(std::lround(v)); }
}  // namespace

void RasterCanvas::fill_rect(double x, double y, double w, double h,
                             color::Color c) {
  // Round edges, not sizes, so adjacent rectangles tile without gaps.
  const int x0 = px(x);
  const int y0 = px(y);
  batch_.add_rect(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, c);
}

void RasterCanvas::stroke_rect(double x, double y, double w, double h,
                               color::Color c) {
  const int x0 = px(x);
  const int y0 = px(y);
  batch_.add_outline(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, c);
}

void RasterCanvas::line(double x0, double y0, double x1, double y1,
                        color::Color c) {
  const int ax = px(x0);
  const int ay = px(y0) - y_offset_;
  const int bx = px(x1);
  const int by = px(y1) - y_offset_;
  if (ay == by) {
    // Axis-aligned lines join the batch: Framebuffer::draw_line delegates
    // them to draw_hline/draw_vline, whose inclusive clipped span is this
    // rect. Clamping to just outside the canvas keeps hi-lo+1 in range
    // without changing the clipped pixels.
    const int lo = std::clamp(std::min(ax, bx), -1, fb_.width());
    const int hi = std::clamp(std::max(ax, bx), -1, fb_.width());
    batch_.add_rect(lo, ay, hi - lo + 1, 1, c);
    return;
  }
  if (ax == bx) {
    const int lo = std::clamp(std::min(ay, by), -1, fb_.height());
    const int hi = std::clamp(std::max(ay, by), -1, fb_.height());
    batch_.add_rect(ax, lo, 1, hi - lo + 1, c);
    return;
  }
  // Bresenham is translation invariant in integer space, so shifting the
  // rounded endpoints hits the same pixels as shifting the drawn line.
  flush();
  fb_.draw_line(ax, ay, bx, by, c);
}

void RasterCanvas::hatch_rect(double x, double y, double w, double h,
                              int spacing, color::Color c) {
  // The hatch phase is anchored to the rectangle corner, not the image
  // origin, so a translated rectangle hatches the same relative pixels.
  const int x0 = px(x);
  const int y0 = px(y);
  flush();
  fb_.hatch_rect(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, spacing,
                 c);
}

void RasterCanvas::text(double x, double y, std::string_view text,
                        color::Color c, int size) {
  flush();
  draw_text(fb_, px(x), px(y) - y_offset_, text, c, scale_for_font_size(size));
}

double RasterCanvas::text_width(std::string_view text, int size) const {
  return render::text_width(text, scale_for_font_size(size));
}

double RasterCanvas::text_height(int size) const {
  return render::text_height(scale_for_font_size(size));
}

}  // namespace jedule::render
