#include "jedule/render/raster_canvas.hpp"

#include <cmath>

#include "jedule/render/font.hpp"

namespace jedule::render {

namespace {
int px(double v) { return static_cast<int>(std::lround(v)); }
}  // namespace

void RasterCanvas::fill_rect(double x, double y, double w, double h,
                             color::Color c) {
  // Round edges, not sizes, so adjacent rectangles tile without gaps.
  const int x0 = px(x);
  const int y0 = px(y);
  fb_.fill_rect(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, c);
}

void RasterCanvas::stroke_rect(double x, double y, double w, double h,
                               color::Color c) {
  const int x0 = px(x);
  const int y0 = px(y);
  fb_.draw_rect(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, c);
}

void RasterCanvas::line(double x0, double y0, double x1, double y1,
                        color::Color c) {
  // Bresenham is translation invariant in integer space, so shifting the
  // rounded endpoints hits the same pixels as shifting the drawn line.
  fb_.draw_line(px(x0), px(y0) - y_offset_, px(x1), px(y1) - y_offset_, c);
}

void RasterCanvas::hatch_rect(double x, double y, double w, double h,
                              int spacing, color::Color c) {
  // The hatch phase is anchored to the rectangle corner, not the image
  // origin, so a translated rectangle hatches the same relative pixels.
  const int x0 = px(x);
  const int y0 = px(y);
  fb_.hatch_rect(x0, y0 - y_offset_, px(x + w) - x0, px(y + h) - y0, spacing,
                 c);
}

void RasterCanvas::text(double x, double y, std::string_view text,
                        color::Color c, int size) {
  draw_text(fb_, px(x), px(y) - y_offset_, text, c, scale_for_font_size(size));
}

double RasterCanvas::text_width(std::string_view text, int size) const {
  return render::text_width(text, scale_for_font_size(size));
}

double RasterCanvas::text_height(int size) const {
  return render::text_height(scale_for_font_size(size));
}

}  // namespace jedule::render
