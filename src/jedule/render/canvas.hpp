#pragma once

// Drawing backend interface. The Gantt painter draws through this, so the
// raster (PNG/PPM), SVG, and PDF exporters share one layout/paint pipeline —
// the C++ equivalent of the Java original painting one Swing graphics object
// exported to multiple formats.

#include <string>
#include <string_view>

#include "jedule/color/color.hpp"

namespace jedule::render {

class Canvas {
 public:
  virtual ~Canvas() = default;

  virtual int width() const = 0;
  virtual int height() const = 0;

  virtual void fill_rect(double x, double y, double w, double h,
                         color::Color c) = 0;
  virtual void stroke_rect(double x, double y, double w, double h,
                           color::Color c) = 0;
  virtual void line(double x0, double y0, double x1, double y1,
                    color::Color c) = 0;

  /// Diagonal hatching inside a rectangle (composite emphasis).
  virtual void hatch_rect(double x, double y, double w, double h, int spacing,
                          color::Color c);

  /// Draws `text` with its top-left corner at (x, y), at `size` pixels.
  virtual void text(double x, double y, std::string_view text, color::Color c,
                    int size) = 0;

  /// Backend-specific advance width of `text` at `size` pixels; the painter
  /// uses it to decide whether a label fits inside its task rectangle.
  virtual double text_width(std::string_view text, int size) const = 0;

  virtual double text_height(int size) const = 0;

  /// Completes any buffered drawing. Backends that batch primitives (the
  /// raster canvas's span batch) override this; every paint_* entry point
  /// flushes before returning, so callers that only go through those see
  /// finished pixels. Call it yourself when reading the target after
  /// driving a canvas directly.
  virtual void flush() {}
};

}  // namespace jedule::render
