#include "jedule/render/profile.hpp"

#include <algorithm>

#include "jedule/io/file.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/png.hpp"
#include "jedule/render/ppm.hpp"
#include "jedule/render/raster_canvas.hpp"
#include "jedule/render/svg.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {
const color::Color kFrame{60, 60, 60, 255};
const color::Color kText{30, 30, 30, 255};
const color::Color kGrid{225, 225, 225, 255};
}  // namespace

void paint_profile(const model::Schedule& schedule, Canvas& canvas,
                   const ProfileStyle& style) {
  schedule.validate();
  if (style.width < 160 || style.height < 80) {
    throw ArgumentError("profile: canvas smaller than 160x80");
  }

  const double left = 52;
  const double right = 14;
  const double top = 22;
  const double bottom = 30;
  const double plot_w = style.width - left - right;
  const double plot_h = style.height - top - bottom;

  canvas.fill_rect(0, 0, style.width, style.height, color::kWhite);

  const auto range = schedule.time_range();
  const int hosts = schedule.total_hosts();
  const int samples = style.samples > 0
                          ? style.samples
                          : std::max(16, static_cast<int>(plot_w));

  if (range && range->length() > 0 && hosts > 0) {
    const auto profile =
        model::concurrency_profile(schedule, samples, style.type_filter);
    const double dx = plot_w / samples;
    for (int i = 0; i < samples; ++i) {
      const double frac =
          static_cast<double>(profile[static_cast<std::size_t>(i)]) / hosts;
      const double bar_h = plot_h * frac;
      canvas.fill_rect(left + i * dx, top + plot_h - bar_h, dx + 0.5, bar_h,
                       style.fill);
    }

    // Horizontal reference lines at 25/50/75/100 %.
    for (int pct = 25; pct <= 100; pct += 25) {
      const double y = top + plot_h * (1.0 - pct / 100.0);
      canvas.line(left, y, left + plot_w, y, kGrid);
      const std::string label = std::to_string(pct * hosts / 100);
      canvas.text(left - canvas.text_width(label, 11) - 4,
                  y - canvas.text_height(11) / 2, label, kText, 11);
    }

    // Time ticks reuse the Gantt axis logic.
    for (double t : nice_ticks(*range, 8)) {
      const double x = left + (t - range->begin) / range->length() * plot_w;
      canvas.line(x, top + plot_h, x, top + plot_h + 4, kFrame);
      const std::string label = util::format_fixed(
          t, range->length() < 10 ? 2 : 0);
      canvas.text(x - canvas.text_width(label, 11) / 2, top + plot_h + 6,
                  label, kText, 11);
    }
  }

  canvas.stroke_rect(left, top, plot_w, plot_h, kFrame);
  canvas.text(left, top - canvas.text_height(11) - 0,
              "busy resources (of " + std::to_string(hosts) + ")", kText, 11);
  canvas.flush();
}

Framebuffer render_profile(const model::Schedule& schedule,
                           const ProfileStyle& style) {
  Framebuffer fb(style.width, style.height);
  RasterCanvas canvas(fb);
  paint_profile(schedule, canvas, style);
  return fb;
}

void export_profile(const model::Schedule& schedule,
                    const ProfileStyle& style, const std::string& path) {
  const std::string lower = util::to_lower(path);
  if (util::ends_with(lower, ".png")) {
    save_png(render_profile(schedule, style), path);
  } else if (util::ends_with(lower, ".ppm")) {
    save_ppm(render_profile(schedule, style), path);
  } else if (util::ends_with(lower, ".svg")) {
    SvgCanvas canvas(style.width, style.height);
    paint_profile(schedule, canvas, style);
    io::write_file(path, canvas.finish());
  } else {
    throw ArgumentError("profile export supports .png, .ppm and .svg");
  }
}

}  // namespace jedule::render
