#pragma once

// Binary PPM (P6) export — the simplest interchange format, handy for
// piping renders into external tools.

#include <string>

#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

std::string encode_ppm(const Framebuffer& fb);
void save_ppm(const Framebuffer& fb, const std::string& path);

}  // namespace jedule::render
