#include "jedule/render/frame_profile.hpp"

#include <algorithm>

#include "jedule/util/strings.hpp"

namespace jedule::render::profile {

std::string FrameStats::summary() const {
  std::string out = "frame " + util::format_fixed(total_ms, 2) + "ms (";
  if (cached) {
    out += "tiles " + std::to_string(tiles_hit) + " hit / " +
           std::to_string(tiles_missed) + " miss";
    if (tiles_evicted > 0) {
      out += " / " + std::to_string(tiles_evicted) + " evict";
    }
    if (invalidations > 0) out += ", invalidated";
  } else {
    out += "direct";
  }
  out += ", " + std::to_string(boxes) + " boxes";
  if (lod) out += ", lod";
  if (edge_arrows > 0) out += ", " + std::to_string(edge_arrows) + " edges";
  if (edge_heat_panels > 0) out += ", edge-heat";
  out += ")";
  return out;
}

void FrameLog::record(const FrameStats& s) {
  last_ = s;
  ++frames_;
  total_ms_ += s.total_ms;
  worst_ms_ = frames_ == 1 ? s.total_ms : std::max(worst_ms_, s.total_ms);
  cache_.hits += s.tiles_hit;
  cache_.misses += s.tiles_missed;
  cache_.evictions += s.tiles_evicted;
  cache_.invalidations += s.invalidations;
  edge_arrows_ += s.edge_arrows;
  if (s.edge_heat_panels > 0) ++edge_heat_frames_;
}

std::string FrameLog::summary() const {
  if (frames_ == 0) return "no frames rendered";
  const double mean = total_ms_ / static_cast<double>(frames_);
  return std::to_string(frames_) + " frame(s), mean " +
         util::format_fixed(mean, 2) + "ms, worst " +
         util::format_fixed(worst_ms_, 2) + "ms, tiles " +
         std::to_string(cache_.hits) + " hit / " +
         std::to_string(cache_.misses) + " miss / " +
         std::to_string(cache_.evictions) + " evict";
}

}  // namespace jedule::render::profile
