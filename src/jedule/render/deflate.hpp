#pragma once

// From-scratch DEFLATE (RFC 1951) encoder and zlib (RFC 1950) framing, used
// by the PNG exporter. The input is cut into fixed 256 KiB chunks; each
// chunk becomes one fixed-Huffman block with greedy hash-chain LZ77 matching
// confined to the chunk, and the blocks are stitched bit-exactly into a
// single stream. Because the chunk grid never moves, compressing the chunks
// serially or on any number of worker threads yields byte-identical output.
// inflate.hpp provides the matching decoder so the codec is verified
// end-to-end in-tree.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jedule::render {

/// RFC 1950 Adler-32 checksum.
std::uint32_t adler32(const std::uint8_t* data, std::size_t size);

/// Adler-32 of the concatenation of two buffers whose individual checksums
/// are `a1` and `a2` and whose second buffer is `len2` bytes long (the zlib
/// adler32_combine identity). Lets workers checksum chunks independently.
std::uint32_t adler32_combine(std::uint32_t a1, std::uint32_t a2,
                              std::size_t len2);

/// CRC-32 (ISO 3309, as used by PNG chunks), optionally chained via `seed`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// CRC-32 of the concatenation of two buffers from their individual CRCs
/// (GF(2) matrix method); `len2` is the second buffer's length.
std::uint32_t crc32_combine(std::uint32_t c1, std::uint32_t c2,
                            std::size_t len2);

/// CRC-32 computed over `threads` ranges in parallel and stitched with
/// crc32_combine; byte-identical to the serial crc32 for any thread count.
std::uint32_t crc32_parallel(const std::uint8_t* data, std::size_t size,
                             int threads, std::uint32_t seed = 0);

/// Raw DEFLATE stream: one fixed-Huffman block per 256 KiB input chunk,
/// compressed over up to `threads` workers. The output does not depend on
/// `threads` — chunk boundaries are fixed and blocks are merged in order.
std::vector<std::uint8_t> deflate_compress(const std::uint8_t* data,
                                           std::size_t size, int threads = 1);

/// Raw DEFLATE stream of stored (uncompressed) blocks; used as a fallback
/// and to exercise the stored-block path of the decoder.
std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size);

/// zlib stream: 2-byte header + deflate data + Adler-32. `compress` selects
/// fixed-Huffman (true) or stored blocks (false). The Adler-32 is computed
/// per chunk on the workers and combined at stitch time.
std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t size, bool compress = true,
                                        int threads = 1);

}  // namespace jedule::render
