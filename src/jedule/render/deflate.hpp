#pragma once

// From-scratch DEFLATE (RFC 1951) encoder and zlib (RFC 1950) framing, used
// by the PNG exporter. The encoder emits one final fixed-Huffman block with
// greedy hash-chain LZ77 matching — simple, deterministic, and effective on
// the long runs a filtered Gantt raster produces. inflate.hpp provides the
// matching decoder so the codec is verified end-to-end in-tree.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jedule::render {

/// RFC 1950 Adler-32 checksum.
std::uint32_t adler32(const std::uint8_t* data, std::size_t size);

/// CRC-32 (ISO 3309, as used by PNG chunks), optionally chained via `seed`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Raw DEFLATE stream (single final fixed-Huffman block).
std::vector<std::uint8_t> deflate_compress(const std::uint8_t* data,
                                           std::size_t size);

/// Raw DEFLATE stream of stored (uncompressed) blocks; used as a fallback
/// and to exercise the stored-block path of the decoder.
std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size);

/// zlib stream: 2-byte header + deflate data + Adler-32. `compress` selects
/// fixed-Huffman (true) or stored blocks (false).
std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t size,
                                        bool compress = true);

}  // namespace jedule::render
