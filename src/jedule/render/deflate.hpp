#pragma once

// From-scratch DEFLATE (RFC 1951) encoder with zlib (RFC 1950) and gzip
// (RFC 1952) framing, used by the PNG, PDF (/FlateDecode) and SVGZ
// exporters and by the serve layer's Content-Encoding negotiation. The
// input is cut into fixed 256 KiB chunks; each chunk is tokenized once
// with lazy hash-chain LZ77 matching (matches confined to the chunk) and
// emitted as one block — dynamic Huffman with canonical codes built from
// the chunk's own symbol statistics, or the RFC fixed code when the
// dynamic header would not pay — and the blocks are stitched bit-exactly
// into a single stream. Because the chunk grid never moves and every
// per-chunk decision is a pure function of the chunk bytes, compressing
// serially or on any number of worker threads yields byte-identical
// output. util/inflate.hpp provides the matching decoder so the codec is
// verified end-to-end in-tree.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jedule/util/checksum.hpp"

namespace jedule::render {

// The checksum primitives (Adler-32 / CRC-32 plus their combine and
// parallel variants) moved to jedule/util/checksum.hpp so the io layer can
// verify gzip trailers; forwarded here for existing render-side callers.
using util::adler32;
using util::adler32_combine;
using util::crc32;
using util::crc32_combine;
using util::crc32_parallel;

/// How each 256 KiB chunk is encoded. Strategy is explicit at every call
/// site; it never changes the chunk grid, so any strategy is byte-identical
/// across thread counts.
enum class DeflateStrategy {
  stored,   ///< uncompressed stored blocks — framing only
  fixed,    ///< one fixed-Huffman block per chunk (lazy LZ77 tokens)
  dynamic,  ///< per-chunk dynamic Huffman, fixed fallback when it wins
};

/// Raw DEFLATE stream: one block per 256 KiB input chunk, compressed over
/// up to `threads` workers. The output does not depend on `threads` —
/// chunk boundaries are fixed and blocks are merged in order.
std::vector<std::uint8_t> deflate_compress(
    const std::uint8_t* data, std::size_t size, int threads = 1,
    DeflateStrategy strategy = DeflateStrategy::dynamic);

/// Raw DEFLATE stream of stored (uncompressed) blocks; used as a fallback
/// and to exercise the stored-block path of the decoder.
std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size);

/// zlib stream: 2-byte header + deflate data + Adler-32. The Adler-32 is
/// computed per chunk on the workers and combined at stitch time.
std::vector<std::uint8_t> zlib_compress(
    const std::uint8_t* data, std::size_t size,
    DeflateStrategy strategy = DeflateStrategy::dynamic, int threads = 1);

/// gzip (RFC 1952) member with a deterministic 10-byte header (MTIME=0,
/// OS=255) and CRC-32 + ISIZE trailer. Used for `.svgz` export and the
/// serve layer's negotiated gzip response bodies; io::load_schedule and
/// util::gzip_decompress read it back.
std::vector<std::uint8_t> gzip_compress(
    const std::uint8_t* data, std::size_t size,
    DeflateStrategy strategy = DeflateStrategy::dynamic, int threads = 1);

}  // namespace jedule::render
