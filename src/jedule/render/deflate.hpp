#pragma once

// From-scratch DEFLATE (RFC 1951) encoder and zlib (RFC 1950) framing, used
// by the PNG exporter. The input is cut into fixed 256 KiB chunks; each
// chunk becomes one fixed-Huffman block with greedy hash-chain LZ77 matching
// confined to the chunk, and the blocks are stitched bit-exactly into a
// single stream. Because the chunk grid never moves, compressing the chunks
// serially or on any number of worker threads yields byte-identical output.
// inflate.hpp provides the matching decoder so the codec is verified
// end-to-end in-tree.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jedule/util/checksum.hpp"

namespace jedule::render {

// The checksum primitives (Adler-32 / CRC-32 plus their combine and
// parallel variants) moved to jedule/util/checksum.hpp so the io layer can
// verify gzip trailers; forwarded here for existing render-side callers.
using util::adler32;
using util::adler32_combine;
using util::crc32;
using util::crc32_combine;
using util::crc32_parallel;

/// Raw DEFLATE stream: one fixed-Huffman block per 256 KiB input chunk,
/// compressed over up to `threads` workers. The output does not depend on
/// `threads` — chunk boundaries are fixed and blocks are merged in order.
std::vector<std::uint8_t> deflate_compress(const std::uint8_t* data,
                                           std::size_t size, int threads = 1);

/// Raw DEFLATE stream of stored (uncompressed) blocks; used as a fallback
/// and to exercise the stored-block path of the decoder.
std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size);

/// zlib stream: 2-byte header + deflate data + Adler-32. `compress` selects
/// fixed-Huffman (true) or stored blocks (false). The Adler-32 is computed
/// per chunk on the workers and combined at stitch time.
std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t size, bool compress = true,
                                        int threads = 1);

}  // namespace jedule::render
