#pragma once

// Gantt chart layout and painting (paper Sec. II).
//
// layout_gantt() computes device-independent geometry: one panel per
// displayed cluster (stacked vertically, height proportional to the host
// count), one TaskBox per (task configuration x host range) rectangle —
// a multiprocessor task with a scattered allocation yields several boxes,
// exactly as in the Java tool. paint_gantt() draws a layout onto any Canvas
// backend. hit_test() maps a pixel back to the box it shows (interactive
// mode's click-to-inspect).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/canvas.hpp"

namespace jedule::render {

/// Level-of-detail policy for dense views. kOff always draws exact task
/// rectangles; kAuto collapses a panel into per-pixel-column density bins
/// once its visible (configuration x host range) count exceeds
/// GanttStyle::lod_density entries per pixel column; kForce always bins.
/// kDefault resolves to kOff on the export path (default exports stay
/// byte-identical) and to kAuto on the interactive frame path.
enum class LodMode { kDefault, kOff, kAuto, kForce };

/// Dependency-edge rendering policy (DESIGN.md §4j). kOff draws no edges.
/// kAuto draws one clipped arrow per visible dependency while a panel's
/// visible edge count stays within GanttStyle::edge_density entries per
/// pixel column, and collapses the panel to a per-column heat lane above
/// that budget; kForce always uses the heat lane. The critical path is
/// overlaid in both sub-modes. kDefault resolves to kAuto — a schedule
/// without dependencies draws nothing either way, so existing exports stay
/// byte-identical.
enum class EdgeMode { kDefault, kOff, kAuto, kForce };

struct GanttStyle {
  int width = 1000;
  int height = 600;

  model::ViewMode view_mode = model::ViewMode::kScaled;

  /// Synthesize and draw composite tasks over their members.
  bool show_composites = true;

  /// Draw task-id labels inside rectangles that can fit them.
  bool show_labels = true;

  /// Light horizontal lines at host boundaries (skipped automatically when
  /// rows get thinner than 4 px, e.g. 1024-node workload charts).
  bool show_grid = true;

  /// Meta key/value header line above the panels.
  bool show_meta = true;

  /// Extra diagonal hatching on composite rectangles so they survive
  /// grayscale colormaps.
  bool hatch_composites = false;

  /// Zoom: restrict the time axis to this window (interactive mode).
  std::optional<model::TimeRange> time_window;

  /// Display only these cluster ids (empty = all), preserving order.
  std::vector<int> cluster_filter;

  /// Display only tasks of these types (empty = all). Composites are
  /// synthesized from the filtered tasks, so hiding e.g. "transfer" also
  /// hides its overlaps (the paper's "focus on specific parts of the
  /// schedule by filtering").
  std::vector<std::string> type_filter;

  /// When nonempty, tasks whose property `highlight_key` equals
  /// `highlight_value` are filled with `highlight_bg` (paper Fig. 13:
  /// "highlighted in yellow the jobs of user 6447").
  std::string highlight_key;
  std::string highlight_value;
  color::Color highlight_bg{255, 221, 0, 255};

  /// Approximate number of ticks on the time axis.
  int time_ticks = 8;

  /// See LodMode; `lod_density` is the kAuto threshold in visible entries
  /// per pixel column (measured before the type filter).
  LodMode lod = LodMode::kDefault;
  int lod_density = 4;

  /// See EdgeMode; `edge_density` is the arrows-vs-heat-lane budget in
  /// visible dependency edges per pixel column (EdgeMode::kAuto only).
  EdgeMode edges = EdgeMode::kDefault;
  int edge_density = 2;
};

/// One dependency arrow in device coordinates, already clipped to its
/// panel: from the source task's end time at its representative host row
/// to the destination task's start time at its row.
struct EdgeArrow {
  double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  /// Clipping kept the destination endpoint, so the head barbs draw.
  bool head = false;
  /// Lies on the critical path: painted on top, in the critical color.
  bool critical = false;
};

/// Per-pixel-column dependency density strip along one panel's bottom
/// edge: levels[i] is the quantized (0..255) edge count of column i,
/// painted as alpha on the heat color with equal-level runs merged.
struct EdgeHeatLane {
  std::size_t panel_index = 0;
  double x = 0;      // device x of column 0
  double col_w = 1;  // device width of one column
  double y = 0, h = 0;
  std::vector<std::uint8_t> levels;
};

/// Edge-rendering counters (`jedule info`, serve /stats).
struct EdgeRenderStats {
  std::size_t considered = 0;  // visible entries inspected across panels
  std::size_t arrows = 0;      // individual arrows laid out (incl. critical)
  std::size_t critical_arrows = 0;
  std::size_t heat_panels = 0;   // panels that fell back to the heat lane
  std::size_t heat_columns = 0;  // nonzero heat-lane columns
};

struct TaskBox {
  /// Index into GanttLayout::tasks (kNoTask for LOD density bins).
  std::size_t task_index = 0;
  int cluster_id = 0;
  double x = 0, y = 0, w = 0, h = 0;
  color::TaskStyle style;
  std::string label;
  bool composite = false;
  bool highlighted = false;
  /// Density bin synthesized by LOD aggregation: colored by the dominant
  /// task type of its pixel cell, no backing task, skipped by hit_test().
  bool lod_bin = false;

  static constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
};

struct PanelLayout {
  int cluster_id = 0;
  std::string title;
  double x = 0, y = 0, w = 0, h = 0;
  model::TimeRange time_range;  // the window this panel displays
  int hosts = 0;

  double x_of_time(double t) const {
    return x + (t - time_range.begin) / time_range.length() * w;
  }
  double row_height() const { return h / hosts; }
};

struct GanttLayout {
  int width = 0;
  int height = 0;
  std::string header;
  std::vector<PanelLayout> panels;

  /// Schedule tasks (by index) followed by synthesized composites.
  std::vector<model::Task> tasks;
  std::size_t composite_begin = 0;  // tasks[composite_begin..) are composites

  /// Ordinary boxes first, then LOD density bins, composite boxes last
  /// (paint order).
  std::vector<TaskBox> boxes;

  /// Per panel (same order as `panels`): 1 when the panel was rendered as
  /// LOD density bins instead of exact task rectangles.
  std::vector<std::uint8_t> panel_lod;

  /// True when `tasks` holds only the viewport-culled subset instead of
  /// the full task list (hints.index + style.time_window).
  bool culled = false;

  /// Dependency rendering (DESIGN.md §4j): clipped arrows, per-panel heat
  /// lanes, and the counters behind `jedule info` / serve /stats. Arrows
  /// flagged `critical` paint last, over the ordinary ones.
  std::vector<EdgeArrow> edge_arrows;
  std::vector<EdgeHeatLane> edge_lanes;
  EdgeRenderStats edge_stats;

  int label_font_size = 13;
  int min_label_font_size = 11;
  int axes_font_size = 12;
};

/// Pixel-snapping grid for the tile cache: time `t` maps to the absolute
/// pixel column floor((t - anchor) * cols_per_time + 0.5), and a box lands
/// at device x = panel.x + (column - origin_col). Because the mapping is
/// anchored (not window-relative), a pan by a whole number of pixels
/// shifts every box by exactly that integer — tiles stay byte-identical
/// across pans.
struct SnapGrid {
  double anchor = 0;
  double cols_per_time = 1;
  long long origin_col = 0;
};

/// Optional accelerators for layout_gantt. With `index` set and a time
/// window active, only tasks intersecting the window are laid out
/// (composites are synthesized from the window-extent closure, so every
/// box intersecting the window is identical to the full layout's).
struct LayoutHints {
  const model::TaskIndex* index = nullptr;

  /// O(log n + k) window queries over the dependency edges. Without it an
  /// active EdgeMode falls back to a brute-force scan of
  /// Schedule::dependencies() per panel — the resulting layout is
  /// identical, just O(m) instead of O(visible).
  const model::EdgeIndex* edge_index = nullptr;

  /// Skip Schedule::validate() (the caller validated once already).
  bool assume_validated = false;

  /// Panels and header only — no tasks, boxes or composites (the tile
  /// cache's chrome overlay).
  bool chrome_only = false;

  /// Resolve LodMode::kDefault to kAuto instead of kOff (interactive).
  bool interactive = false;

  /// Pre-decided per-shown-panel LOD (the tile cache decides once per
  /// frame so every tile of a frame agrees); overrides the density probe.
  std::optional<std::vector<std::uint8_t>> panel_lod_override;

  /// Mark LOD panels but skip computing their density bins (the tile
  /// cache's label-overlay layout: bins are painted by the tiles).
  bool skip_lod_bins = false;

  /// Precomputed composites of the *whole, unfiltered* schedule (the
  /// serve engine maintains this list across appends with
  /// model::append_composites instead of resweeping every frame).
  /// Consumed only when no type filter is active and the layout is not
  /// viewport-culled — the only cases the precomputed list matches;
  /// otherwise it is ignored and composites are synthesized as usual.
  const std::vector<model::Composite>* composites = nullptr;

  std::optional<SnapGrid> snap;
};

/// Computes the layout; throws ValidationError on an invalid schedule and
/// ArgumentError on an empty time window or unknown filter clusters.
/// `threads` parallelizes the composite-synthesis sweep (the layout itself
/// is sequential); the layout is identical for every thread count.
GanttLayout layout_gantt(const model::Schedule& schedule,
                         const color::ColorMap& colormap,
                         const GanttStyle& style, int threads = 1,
                         const LayoutHints& hints = {});

/// Paints a layout. The canvas must have the layout's dimensions.
void paint_gantt(const GanttLayout& layout, Canvas& canvas,
                 const GanttStyle& style);

// Individual paint passes of paint_gantt, exposed for the tile cache
// (tiles paint boxes only; the per-frame overlay paints header, labels
// and chrome on top of the blitted tiles).

/// Background fill plus the meta header line.
void paint_gantt_background(const GanttLayout& layout, Canvas& canvas);

/// The meta header line only (no background fill).
void paint_gantt_header(const GanttLayout& layout, Canvas& canvas);

/// All task boxes (fill, outline, hatch); labels only when `with_labels`.
void paint_gantt_boxes(const GanttLayout& layout, Canvas& canvas,
                       const GanttStyle& style, bool with_labels);

/// Task-id labels only (the tile path draws them as a frame overlay).
void paint_gantt_labels(const GanttLayout& layout, Canvas& canvas,
                        const GanttStyle& style);

/// Panel titles, grid lines, host labels, time axes and frames.
void paint_gantt_chrome(const GanttLayout& layout, Canvas& canvas,
                        const GanttStyle& style);

/// Dependency heat lanes, arrows, and the critical-path overlay (in that
/// paint order). The tile path calls this per frame, over the blitted
/// tiles and under labels/chrome — tiles themselves never contain edges,
/// so toggling edges can never invalidate the tile cache.
void paint_gantt_edges(const GanttLayout& layout, Canvas& canvas);

/// The horizontal span (x, width) panels occupy for `style` — the fixed
/// chrome margins, shared with the tile cache's pixel grid.
struct PanelExtent {
  double x = 0;
  double w = 0;
};
PanelExtent gantt_panel_extent(const GanttStyle& style);

/// Topmost box containing pixel (x, y): composites win over their members,
/// later-drawn boxes over earlier ones. LOD density bins are not hittable.
/// nullptr if the pixel shows no task.
const TaskBox* hit_test(const GanttLayout& layout, double x, double y);

/// Panel containing pixel (x, y), or nullptr.
const PanelLayout* panel_at(const GanttLayout& layout, double x, double y);

/// "Nice" tick positions (1/2/5 x 10^k steps) covering `range`.
std::vector<double> nice_ticks(const model::TimeRange& range, int about);

}  // namespace jedule::render
