#pragma once

// Gantt chart layout and painting (paper Sec. II).
//
// layout_gantt() computes device-independent geometry: one panel per
// displayed cluster (stacked vertically, height proportional to the host
// count), one TaskBox per (task configuration x host range) rectangle —
// a multiprocessor task with a scattered allocation yields several boxes,
// exactly as in the Java tool. paint_gantt() draws a layout onto any Canvas
// backend. hit_test() maps a pixel back to the box it shows (interactive
// mode's click-to-inspect).

#include <optional>
#include <string>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/canvas.hpp"

namespace jedule::render {

struct GanttStyle {
  int width = 1000;
  int height = 600;

  model::ViewMode view_mode = model::ViewMode::kScaled;

  /// Synthesize and draw composite tasks over their members.
  bool show_composites = true;

  /// Draw task-id labels inside rectangles that can fit them.
  bool show_labels = true;

  /// Light horizontal lines at host boundaries (skipped automatically when
  /// rows get thinner than 4 px, e.g. 1024-node workload charts).
  bool show_grid = true;

  /// Meta key/value header line above the panels.
  bool show_meta = true;

  /// Extra diagonal hatching on composite rectangles so they survive
  /// grayscale colormaps.
  bool hatch_composites = false;

  /// Zoom: restrict the time axis to this window (interactive mode).
  std::optional<model::TimeRange> time_window;

  /// Display only these cluster ids (empty = all), preserving order.
  std::vector<int> cluster_filter;

  /// Display only tasks of these types (empty = all). Composites are
  /// synthesized from the filtered tasks, so hiding e.g. "transfer" also
  /// hides its overlaps (the paper's "focus on specific parts of the
  /// schedule by filtering").
  std::vector<std::string> type_filter;

  /// When nonempty, tasks whose property `highlight_key` equals
  /// `highlight_value` are filled with `highlight_bg` (paper Fig. 13:
  /// "highlighted in yellow the jobs of user 6447").
  std::string highlight_key;
  std::string highlight_value;
  color::Color highlight_bg{255, 221, 0, 255};

  /// Approximate number of ticks on the time axis.
  int time_ticks = 8;
};

struct TaskBox {
  /// Index into GanttLayout::tasks.
  std::size_t task_index = 0;
  int cluster_id = 0;
  double x = 0, y = 0, w = 0, h = 0;
  color::TaskStyle style;
  std::string label;
  bool composite = false;
  bool highlighted = false;
};

struct PanelLayout {
  int cluster_id = 0;
  std::string title;
  double x = 0, y = 0, w = 0, h = 0;
  model::TimeRange time_range;  // the window this panel displays
  int hosts = 0;

  double x_of_time(double t) const {
    return x + (t - time_range.begin) / time_range.length() * w;
  }
  double row_height() const { return h / hosts; }
};

struct GanttLayout {
  int width = 0;
  int height = 0;
  std::string header;
  std::vector<PanelLayout> panels;

  /// Schedule tasks (by index) followed by synthesized composites.
  std::vector<model::Task> tasks;
  std::size_t composite_begin = 0;  // tasks[composite_begin..) are composites

  /// Ordinary boxes first, composite boxes after (paint order).
  std::vector<TaskBox> boxes;

  int label_font_size = 13;
  int min_label_font_size = 11;
  int axes_font_size = 12;
};

/// Computes the layout; throws ValidationError on an invalid schedule and
/// ArgumentError on an empty time window or unknown filter clusters.
/// `threads` parallelizes the composite-synthesis sweep (the layout itself
/// is sequential); the layout is identical for every thread count.
GanttLayout layout_gantt(const model::Schedule& schedule,
                         const color::ColorMap& colormap,
                         const GanttStyle& style, int threads = 1);

/// Paints a layout. The canvas must have the layout's dimensions.
void paint_gantt(const GanttLayout& layout, Canvas& canvas,
                 const GanttStyle& style);

/// Topmost box containing pixel (x, y): composites win over their members,
/// later-drawn boxes over earlier ones. nullptr if the pixel shows no task.
const TaskBox* hit_test(const GanttLayout& layout, double x, double y);

/// Panel containing pixel (x, y), or nullptr.
const PanelLayout* panel_at(const GanttLayout& layout, double x, double y);

/// "Nice" tick positions (1/2/5 x 10^k steps) covering `range`.
std::vector<double> nice_ticks(const model::TimeRange& range, int about);

}  // namespace jedule::render
