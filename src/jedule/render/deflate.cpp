#include "jedule/render/deflate.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

namespace {

/// LSB-first bit writer (DEFLATE bit order).
class BitWriter {
 public:
  void put_bits(std::uint32_t value, int count) {
    JED_ASSERT(count >= 0 && count <= 24);
    acc_ |= static_cast<std::uint64_t>(value) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Huffman codes are transmitted most-significant-bit first.
  void put_huffman(std::uint32_t code, int bits) {
    std::uint32_t reversed = 0;
    for (int i = 0; i < bits; ++i) {
      reversed = (reversed << 1) | ((code >> i) & 1);
    }
    put_bits(reversed, bits);
  }

  void align_to_byte() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  void put_byte(std::uint8_t b) {
    JED_ASSERT(filled_ == 0);
    out_.push_back(b);
  }

  std::vector<std::uint8_t> take() {
    align_to_byte();
    return std::move(out_);
  }

  /// The written bits without padding: full bytes plus a partial tail byte.
  /// Used to stitch independently produced fragments bit-exactly.
  struct BitBuffer {
    std::vector<std::uint8_t> bytes;
    std::uint8_t tail = 0;  // low `tail_bits` bits are valid
    int tail_bits = 0;
  };

  BitBuffer take_bits() {
    BitBuffer b;
    b.bytes = std::move(out_);
    b.tail = static_cast<std::uint8_t>(acc_ & 0xFF);
    b.tail_bits = filled_;
    acc_ = 0;
    filled_ = 0;
    return b;
  }

  void append(const BitBuffer& b) {
    if (filled_ == 0) {
      out_.insert(out_.end(), b.bytes.begin(), b.bytes.end());
    } else {
      for (const std::uint8_t byte : b.bytes) put_bits(byte, 8);
    }
    if (b.tail_bits > 0) put_bits(b.tail, b.tail_bits);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

// RFC 1951 §3.2.5 length code table: base length and extra bits per code
// 257..285.
struct LengthCode {
  int base;
  int extra;
};
constexpr LengthCode kLengthCodes[29] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},  {8, 0},  {9, 0},
    {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1}, {19, 2}, {23, 2},
    {27, 2},  {31, 2},  {35, 3},  {43, 3},  {51, 3}, {59, 3}, {67, 4},
    {83, 4},  {99, 4},  {115, 4}, {131, 5}, {163, 5}, {195, 5}, {227, 5},
    {258, 0}};

constexpr LengthCode kDistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},      {4, 0},      {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},     {25, 3},     {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},    {193, 6},    {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12},  {12289, 12}, {16385, 13}, {24577, 13}};

void write_fixed_symbol(BitWriter& bw, int symbol) {
  // Fixed literal/length Huffman code (RFC 1951 §3.2.6).
  if (symbol <= 143) {
    bw.put_huffman(static_cast<std::uint32_t>(0x30 + symbol), 8);
  } else if (symbol <= 255) {
    bw.put_huffman(static_cast<std::uint32_t>(0x190 + symbol - 144), 9);
  } else if (symbol <= 279) {
    bw.put_huffman(static_cast<std::uint32_t>(symbol - 256), 7);
  } else {
    bw.put_huffman(static_cast<std::uint32_t>(0xC0 + symbol - 280), 8);
  }
}

void write_length(BitWriter& bw, int length) {
  JED_ASSERT(length >= 3 && length <= 258);
  int code = 28;
  while (code > 0 && kLengthCodes[code].base > length) --code;
  // Length 258 belongs to code 285 even though code 284's range reaches 257.
  if (length == 258) code = 28;
  write_fixed_symbol(bw, 257 + code);
  bw.put_bits(static_cast<std::uint32_t>(length - kLengthCodes[code].base),
              kLengthCodes[code].extra);
}

void write_distance(BitWriter& bw, int distance) {
  JED_ASSERT(distance >= 1 && distance <= 32768);
  int code = 29;
  while (code > 0 && kDistCodes[code].base > distance) --code;
  bw.put_huffman(static_cast<std::uint32_t>(code), 5);
  bw.put_bits(static_cast<std::uint32_t>(distance - kDistCodes[code].base),
              kDistCodes[code].extra);
}

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kMaxChainLength = 64;

/// Input chunk fed to one fixed-Huffman block. Must stay put: moving the
/// grid would change the bit stream and break cross-thread determinism.
constexpr std::size_t kDeflateChunk = 1 << 18;

inline std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// One complete fixed-Huffman block over [data, data+size): header, greedy
/// LZ77 (matches never reach before `data`), end-of-block symbol.
void deflate_fixed_block(const std::uint8_t* data, std::size_t size,
                         bool final, BitWriter& bw) {
  bw.put_bits(final ? 1 : 0, 1);  // BFINAL
  bw.put_bits(1, 2);              // BTYPE = 01 (fixed Huffman)

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(size > 0 ? size : 1, -1);

  std::size_t pos = 0;
  while (pos < size) {
    int best_len = 0;
    std::int64_t best_dist = 0;
    if (pos + kMinMatch <= size) {
      const std::uint32_t h = hash3(data + pos);
      std::int64_t candidate = head[h];
      int chain = kMaxChainLength;
      const int max_len =
          static_cast<int>(std::min<std::size_t>(kMaxMatch, size - pos));
      while (candidate >= 0 && chain-- > 0) {
        const std::int64_t dist = static_cast<std::int64_t>(pos) - candidate;
        if (dist > kWindowSize) break;
        int len = 0;
        const std::uint8_t* a = data + candidate;
        const std::uint8_t* b = data + pos;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == max_len) break;
        }
        candidate = prev[static_cast<std::size_t>(candidate)];
      }
      // Insert the current position into the chain.
      prev[pos] = head[h];
      head[h] = static_cast<std::int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      write_length(bw, best_len);
      write_distance(bw, static_cast<int>(best_dist));
      // Register the skipped positions so future matches can reference them.
      const std::size_t end = pos + static_cast<std::size_t>(best_len);
      for (std::size_t p = pos + 1; p < end && p + kMinMatch <= size; ++p) {
        const std::uint32_t h = hash3(data + p);
        prev[p] = head[h];
        head[h] = static_cast<std::int64_t>(p);
      }
      pos = end;
    } else {
      write_fixed_symbol(bw, data[pos]);
      ++pos;
    }
  }

  write_fixed_symbol(bw, 256);  // end of block
}

}  // namespace

std::vector<std::uint8_t> deflate_compress(const std::uint8_t* data,
                                           std::size_t size, int threads) {
  const std::size_t chunks =
      size == 0 ? 1 : (size + kDeflateChunk - 1) / kDeflateChunk;
  std::vector<BitWriter::BitBuffer> parts(chunks);
  util::parallel_for(chunks, threads, [&](std::size_t i) {
    BitWriter bw;
    const std::size_t off = i * kDeflateChunk;
    deflate_fixed_block(data + off, std::min(kDeflateChunk, size - off),
                        i + 1 == chunks, bw);
    parts[i] = bw.take_bits();
  });
  BitWriter out;
  for (const auto& part : parts) out.append(part);
  return out.take();
}

std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(size - pos, 65535);
    const bool final = pos + chunk == size;
    out.push_back(final ? 1 : 0);  // BFINAL, BTYPE=00, byte-aligned
    const auto len = static_cast<std::uint16_t>(chunk);
    out.push_back(static_cast<std::uint8_t>(len & 0xFF));
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(~len & 0xFF));
    out.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
    out.insert(out.end(), data + pos, data + pos + chunk);
    pos += chunk;
  } while (pos < size);
  return out;
}

std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t size, bool compress,
                                        int threads) {
  std::vector<std::uint8_t> out;
  out.push_back(0x78);  // CMF: deflate, 32K window
  out.push_back(0x01);  // FLG: fastest, no dict; (0x7801 % 31 == 0)
  auto body = compress ? deflate_compress(data, size, threads)
                       : deflate_store(data, size);
  out.insert(out.end(), body.begin(), body.end());

  std::uint32_t a;
  if (threads <= 1 || size <= kDeflateChunk) {
    a = adler32(data, size);
  } else {
    // Checksum the same chunk grid on the workers, combine at stitch time.
    const std::size_t chunks = (size + kDeflateChunk - 1) / kDeflateChunk;
    std::vector<std::uint32_t> parts(chunks);
    util::parallel_for(chunks, threads, [&](std::size_t i) {
      const std::size_t off = i * kDeflateChunk;
      parts[i] = adler32(data + off, std::min(kDeflateChunk, size - off));
    });
    a = parts[0];
    for (std::size_t i = 1; i < chunks; ++i) {
      a = adler32_combine(a, parts[i],
                          std::min(kDeflateChunk, size - i * kDeflateChunk));
    }
  }
  out.push_back(static_cast<std::uint8_t>(a >> 24));
  out.push_back(static_cast<std::uint8_t>(a >> 16));
  out.push_back(static_cast<std::uint8_t>(a >> 8));
  out.push_back(static_cast<std::uint8_t>(a));
  return out;
}

}  // namespace jedule::render
