#include "jedule/render/deflate.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <utility>

#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::render {

namespace {

#if defined(__x86_64__) || defined(__aarch64__)
constexpr bool kLittleEndianFastPath = true;
#else
constexpr bool kLittleEndianFastPath = false;
#endif

/// LSB-first bit writer (DEFLATE bit order).
class BitWriter {
 public:
  void put_bits(std::uint32_t value, int count) {
    JED_ASSERT(count >= 0 && count <= 24);
    acc_ |= static_cast<std::uint64_t>(value) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void align_to_byte() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

  std::vector<std::uint8_t> take() {
    align_to_byte();
    return std::move(out_);
  }

  /// The written bits without padding: full bytes plus a partial tail byte.
  /// Used to stitch independently produced fragments bit-exactly.
  struct BitBuffer {
    std::vector<std::uint8_t> bytes;
    std::uint8_t tail = 0;  // low `tail_bits` bits are valid
    int tail_bits = 0;
  };

  BitBuffer take_bits() {
    BitBuffer b;
    b.bytes = std::move(out_);
    b.tail = static_cast<std::uint8_t>(acc_ & 0xFF);
    b.tail_bits = filled_;
    acc_ = 0;
    filled_ = 0;
    return b;
  }

  void append(const BitBuffer& b) {
    const std::size_t n = b.bytes.size();
    if (filled_ == 0) {
      out_.insert(out_.end(), b.bytes.begin(), b.bytes.end());
    } else {
      std::size_t i = 0;
      if constexpr (kLittleEndianFastPath) {
        // Stream 8 input bytes per step through the accumulator instead of
        // re-entering put_bits per byte — the stitch is serial, so this is
        // the one merge loop every parallel compression funnels through.
        const int shift = filled_;
        out_.reserve(out_.size() + n + 1);
        for (; i + 8 <= n; i += 8) {
          std::uint64_t v;
          std::memcpy(&v, b.bytes.data() + i, 8);
          const std::uint64_t lo = acc_ | (v << shift);
          std::uint8_t tmp[8];
          std::memcpy(tmp, &lo, 8);
          out_.insert(out_.end(), std::begin(tmp), std::end(tmp));
          acc_ = v >> (64 - shift);
        }
      }
      for (; i < n; ++i) put_bits(b.bytes[i], 8);
    }
    if (b.tail_bits > 0) put_bits(b.tail, b.tail_bits);
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

// RFC 1951 §3.2.5 length code table: base length and extra bits per code
// 257..285.
struct LengthCode {
  int base;
  int extra;
};
constexpr LengthCode kLengthCodes[29] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},  {8, 0},  {9, 0},
    {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1}, {19, 2}, {23, 2},
    {27, 2},  {31, 2},  {35, 3},  {43, 3},  {51, 3}, {59, 3}, {67, 4},
    {83, 4},  {99, 4},  {115, 4}, {131, 5}, {163, 5}, {195, 5}, {227, 5},
    {258, 0}};

constexpr LengthCode kDistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},      {4, 0},      {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},     {25, 3},     {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},    {193, 6},    {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12},  {12289, 12}, {16385, 13}, {24577, 13}};

constexpr int kNumLitLenSymbols = 286;
constexpr int kNumDistSymbols = 30;
constexpr int kNumClSymbols = 19;
constexpr int kMaxCodeBits = 15;
constexpr int kMaxClCodeBits = 7;

// RFC 1951 §3.2.7 transmission order of code-length code lengths.
constexpr int kClOrder[kNumClSymbols] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                         11, 4,  12, 3, 13, 2, 14, 1, 15};

inline std::uint16_t reverse_code(std::uint32_t code, int bits) {
  std::uint32_t r = 0;
  for (int i = 0; i < bits; ++i) r = (r << 1) | ((code >> i) & 1);
  return static_cast<std::uint16_t>(r);
}

/// Length/distance value → symbol lookups, built once.
struct SymbolTables {
  std::uint8_t length_sym[259];     // match length 3..258 → code 0..28
  std::uint8_t dist_sym_small[257]; // distance 1..256 → code
  std::uint8_t dist_sym_large[256]; // distance d ≥ 257 → code via (d-1)>>7
};

const SymbolTables& symbol_tables() {
  static const SymbolTables tables = [] {
    SymbolTables t{};
    for (int len = 3; len <= 258; ++len) {
      int code = 28;
      while (code > 0 && kLengthCodes[code].base > len) --code;
      // Length 258 belongs to code 285 though code 284's range reaches 257.
      if (len == 258) code = 28;
      t.length_sym[len] = static_cast<std::uint8_t>(code);
    }
    for (int dist = 1; dist <= 32768; ++dist) {
      int code = 29;
      while (code > 0 && kDistCodes[code].base > dist) --code;
      if (dist <= 256) {
        t.dist_sym_small[dist] = static_cast<std::uint8_t>(code);
      } else {
        t.dist_sym_large[(dist - 1) >> 7] = static_cast<std::uint8_t>(code);
      }
    }
    return t;
  }();
  return tables;
}

inline int length_symbol(const SymbolTables& t, int len) {
  return t.length_sym[len];
}

inline int dist_symbol(const SymbolTables& t, int dist) {
  return dist <= 256 ? t.dist_sym_small[dist]
                     : t.dist_sym_large[(dist - 1) >> 7];
}

inline int fixed_litlen_bits(int sym) {
  if (sym <= 143) return 8;
  if (sym <= 255) return 9;
  if (sym <= 279) return 7;
  return 8;
}

/// RFC 1951 §3.2.6 fixed codes, pre-reversed for the LSB-first writer.
struct FixedCodes {
  std::uint8_t ll_len[kNumLitLenSymbols];
  std::uint16_t ll_code[kNumLitLenSymbols];
  std::uint8_t d_len[kNumDistSymbols];
  std::uint16_t d_code[kNumDistSymbols];
};

const FixedCodes& fixed_codes() {
  static const FixedCodes codes = [] {
    FixedCodes f{};
    for (int s = 0; s < kNumLitLenSymbols; ++s) {
      f.ll_len[s] = static_cast<std::uint8_t>(fixed_litlen_bits(s));
      std::uint32_t code;
      if (s <= 143) {
        code = 0x30 + static_cast<std::uint32_t>(s);
      } else if (s <= 255) {
        code = 0x190 + static_cast<std::uint32_t>(s) - 144;
      } else if (s <= 279) {
        code = static_cast<std::uint32_t>(s) - 256;
      } else {
        code = 0xC0 + static_cast<std::uint32_t>(s) - 280;
      }
      f.ll_code[s] = reverse_code(code, f.ll_len[s]);
    }
    for (int s = 0; s < kNumDistSymbols; ++s) {
      f.d_len[s] = 5;
      f.d_code[s] = reverse_code(static_cast<std::uint32_t>(s), 5);
    }
    return f;
  }();
  return codes;
}

/// In-place minimum-redundancy code lengths (Moffat & Katajainen). `a`
/// holds the used symbols' frequencies in ascending order; on return a[i]
/// is the unbounded Huffman code length for that slot. Requires n >= 2.
void minimum_redundancy(std::uint32_t* a, int n) {
  int root = 0;
  int leaf = 2;
  a[0] += a[1];
  for (int next = 1; next < n - 1; ++next) {
    if (leaf >= n || a[root] < a[leaf]) {
      a[next] = a[root];
      a[root++] = static_cast<std::uint32_t>(next);
    } else {
      a[next] = a[leaf++];
    }
    if (leaf >= n || (root < next && a[root] < a[leaf])) {
      a[next] += a[root];
      a[root++] = static_cast<std::uint32_t>(next);
    } else {
      a[next] += a[leaf++];
    }
  }
  a[n - 2] = 0;
  for (int next = n - 3; next >= 0; --next) a[next] = a[a[next]] + 1;
  int avail = 1;
  int used = 0;
  int depth = 0;
  root = n - 2;
  int next = n - 1;
  while (avail > 0) {
    while (root >= 0 && static_cast<int>(a[root]) == depth) {
      ++used;
      --root;
    }
    while (avail > used) {
      a[next--] = static_cast<std::uint32_t>(depth);
      --avail;
    }
    avail = 2 * used;
    ++depth;
    used = 0;
  }
}

/// Canonical length-limited Huffman code over `n` symbols: fills `lengths`
/// (0 for unused symbols) and LSB-first `codes` ready for put_bits. The
/// code depends only on the frequency histogram, so identical chunks
/// produce identical blocks on any thread.
void build_huffman(const std::uint32_t* freq, int n, int max_bits,
                   std::uint8_t* lengths, std::uint16_t* codes) {
  std::fill_n(lengths, n, static_cast<std::uint8_t>(0));
  std::fill_n(codes, n, static_cast<std::uint16_t>(0));

  // (frequency, symbol) ascending; the symbol index breaks ties.
  std::array<std::pair<std::uint32_t, int>, kNumLitLenSymbols> order;
  int used = 0;
  for (int s = 0; s < n; ++s) {
    if (freq[s] > 0) order[used++] = {freq[s], s};
  }
  if (used == 0) return;
  if (used == 1) {
    lengths[order[0].second] = 1;
  } else {
    std::sort(order.begin(), order.begin() + used);
    std::array<std::uint32_t, kNumLitLenSymbols> work;
    for (int i = 0; i < used; ++i) work[i] = order[i].first;
    minimum_redundancy(work.data(), used);

    // Histogram of code lengths, over-long codes clamped to max_bits...
    std::array<int, kMaxCodeBits + 1> count{};
    for (int i = 0; i < used; ++i) {
      count[std::min<int>(static_cast<int>(work[i]), max_bits)]++;
    }
    // ...then repaired until the Kraft sum fits: each step promotes one
    // max-length code and demotes an interior one, shrinking the sum by 1.
    std::uint32_t total = 0;
    for (int l = 1; l <= max_bits; ++l) {
      total += static_cast<std::uint32_t>(count[l]) << (max_bits - l);
    }
    while (total > (1u << max_bits)) {
      count[max_bits]--;
      for (int l = max_bits - 1; l >= 1; --l) {
        if (count[l] > 0) {
          count[l]--;
          count[l + 1] += 2;
          break;
        }
      }
      total--;
    }
    // Least frequent symbols take the longest codes.
    int idx = 0;
    for (int l = max_bits; l >= 1; --l) {
      for (int k = 0; k < count[l]; ++k) {
        lengths[order[idx++].second] = static_cast<std::uint8_t>(l);
      }
    }
  }

  // Canonical code assignment (RFC 1951 §3.2.2), stored bit-reversed.
  std::array<int, kMaxCodeBits + 1> bl_count{};
  for (int s = 0; s < n; ++s) bl_count[lengths[s]]++;
  bl_count[0] = 0;
  std::array<std::uint32_t, kMaxCodeBits + 1> next_code{};
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_bits; ++bits) {
    code = (code + static_cast<std::uint32_t>(bl_count[bits - 1])) << 1;
    next_code[bits] = code;
  }
  for (int s = 0; s < n; ++s) {
    if (const int l = lengths[s]; l > 0) {
      codes[s] = reverse_code(next_code[l]++, l);
    }
  }
}

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kMaxChainLength = 64;
/// Matches at least this long are taken immediately — the lazy one-byte
/// deferral almost never beats them and the extra probe costs real time.
constexpr int kLazyMatch = 128;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

/// Input chunk fed to one block. Must stay put: moving the grid would
/// change the bit stream and break cross-thread determinism.
constexpr std::size_t kDeflateChunk = 1 << 18;

/// Match/literal token stream of one chunk plus its symbol statistics.
/// Tokens: literals are the byte value; matches set bit 31 and pack
/// distance<<9 | length.
struct ChunkScratch {
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> prev;
  std::vector<std::uint32_t> tokens;
  std::uint32_t lit_freq[kNumLitLenSymbols];
  std::uint32_t dist_freq[kNumDistSymbols];
};

ChunkScratch& chunk_scratch() {
  thread_local ChunkScratch s;
  return s;
}

constexpr std::uint32_t kMatchFlag = 0x80000000u;

inline std::uint32_t hash3(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline int match_length(const std::uint8_t* a, const std::uint8_t* b,
                        int max_len) {
  int len = 0;
  if constexpr (kLittleEndianFastPath) {
    while (len + 8 <= max_len) {
      std::uint64_t va;
      std::uint64_t vb;
      std::memcpy(&va, a + len, 8);
      std::memcpy(&vb, b + len, 8);
      if (const std::uint64_t diff = va ^ vb; diff != 0) {
        return len + (std::countr_zero(diff) >> 3);
      }
      len += 8;
    }
  }
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

/// Lazy hash-chain LZ77 over one chunk. Matches never reach before `data`,
/// so the token stream is a pure function of the chunk bytes.
void tokenize_chunk(const std::uint8_t* data, std::size_t size,
                    ChunkScratch& s) {
  const SymbolTables& sym = symbol_tables();
  s.tokens.clear();
  s.tokens.reserve(size / 2 + 16);
  std::fill_n(s.lit_freq, kNumLitLenSymbols, 0u);
  std::fill_n(s.dist_freq, kNumDistSymbols, 0u);
  s.head.assign(kHashSize, kNoPos);
  if (s.prev.size() < size) s.prev.resize(size);

  const auto find_and_insert = [&](std::size_t pos, int* best_len,
                                   int* best_dist) {
    *best_len = 0;
    *best_dist = 0;
    if (pos + kMinMatch > size) return;
    const std::uint32_t h = hash3(data + pos);
    std::uint32_t candidate = s.head[h];
    const int max_len =
        static_cast<int>(std::min<std::size_t>(kMaxMatch, size - pos));
    const std::uint8_t* b = data + pos;
    int chain = kMaxChainLength;
    while (candidate != kNoPos && chain-- > 0) {
      const std::size_t dist = pos - candidate;
      if (dist > kWindowSize) break;
      const std::uint8_t* a = data + candidate;
      // A longer match must improve on the current best at its end byte.
      if (*best_len > 0 && a[*best_len] != b[*best_len]) {
        candidate = s.prev[candidate];
        continue;
      }
      const int len = match_length(a, b, max_len);
      if (len > *best_len) {
        *best_len = len;
        *best_dist = static_cast<int>(dist);
        if (len == max_len) break;
      }
      candidate = s.prev[candidate];
    }
    s.prev[pos] = s.head[h];
    s.head[h] = static_cast<std::uint32_t>(pos);
  };

  const auto insert_range = [&](std::size_t from, std::size_t to) {
    const std::size_t stop = std::min(to, size >= kMinMatch ? size - kMinMatch + 1 : 0);
    for (std::size_t p = from; p < stop; ++p) {
      const std::uint32_t h = hash3(data + p);
      s.prev[p] = s.head[h];
      s.head[h] = static_cast<std::uint32_t>(p);
    }
  };

  const auto emit_literal = [&](std::uint8_t b) {
    s.tokens.push_back(b);
    s.lit_freq[b]++;
  };
  const auto emit_match = [&](int len, int dist) {
    s.tokens.push_back(kMatchFlag |
                       (static_cast<std::uint32_t>(dist) << 9) |
                       static_cast<std::uint32_t>(len));
    s.lit_freq[257 + length_symbol(sym, len)]++;
    s.dist_freq[dist_symbol(sym, dist)]++;
  };

  std::size_t pos = 0;
  while (pos < size) {
    int len0;
    int dist0;
    find_and_insert(pos, &len0, &dist0);
    if (len0 < kMinMatch) {
      emit_literal(data[pos]);
      ++pos;
      continue;
    }
    if (len0 < kLazyMatch && pos + 1 < size) {
      // Lazy probe: a longer match one byte later beats taking this one.
      int len1;
      int dist1;
      find_and_insert(pos + 1, &len1, &dist1);
      if (len1 > len0) {
        emit_literal(data[pos]);
        emit_match(len1, dist1);
        insert_range(pos + 2, pos + 1 + static_cast<std::size_t>(len1));
        pos += 1 + static_cast<std::size_t>(len1);
        continue;
      }
      emit_match(len0, dist0);
      insert_range(pos + 2, pos + static_cast<std::size_t>(len0));
      pos += static_cast<std::size_t>(len0);
      continue;
    }
    emit_match(len0, dist0);
    insert_range(pos + 1, pos + static_cast<std::size_t>(len0));
    pos += static_cast<std::size_t>(len0);
  }
}

void emit_tokens(BitWriter& bw, const std::vector<std::uint32_t>& tokens,
                 const std::uint8_t* ll_len, const std::uint16_t* ll_code,
                 const std::uint8_t* d_len, const std::uint16_t* d_code) {
  const SymbolTables& sym = symbol_tables();
  for (const std::uint32_t t : tokens) {
    if ((t & kMatchFlag) == 0) {
      bw.put_bits(ll_code[t], ll_len[t]);
      continue;
    }
    const int len = static_cast<int>(t & 0x1FF);
    const int dist = static_cast<int>((t >> 9) & 0xFFFF);
    const int lc = length_symbol(sym, len);
    bw.put_bits(ll_code[257 + lc], ll_len[257 + lc]);
    bw.put_bits(static_cast<std::uint32_t>(len - kLengthCodes[lc].base),
                kLengthCodes[lc].extra);
    const int dc = dist_symbol(sym, dist);
    bw.put_bits(d_code[dc], d_len[dc]);
    bw.put_bits(static_cast<std::uint32_t>(dist - kDistCodes[dc].base),
                kDistCodes[dc].extra);
  }
  bw.put_bits(ll_code[256], ll_len[256]);  // end of block
}

/// Everything needed to emit one dynamic-Huffman block header, plus its
/// exact bit costs for the fixed-vs-dynamic decision.
struct DynamicPlan {
  std::uint8_t ll_len[kNumLitLenSymbols];
  std::uint16_t ll_code[kNumLitLenSymbols];
  std::uint8_t d_len[kNumDistSymbols];
  std::uint16_t d_code[kNumDistSymbols];
  std::uint8_t cl_len[kNumClSymbols];
  std::uint16_t cl_code[kNumClSymbols];
  struct ClOp {
    std::uint8_t sym;  // 0..18
    std::uint8_t arg;  // repeat count payload for 16/17/18
  };
  std::vector<ClOp> ops;
  int hlit = 257;
  int hdist = 1;
  int hclen = 4;
  std::uint64_t header_bits = 0;
  std::uint64_t body_bits = 0;
};

inline int cl_extra_bits(int sym) {
  return sym == 16 ? 2 : sym == 17 ? 3 : sym == 18 ? 7 : 0;
}

void build_dynamic_plan(const std::uint32_t* lit_freq,
                        const std::uint32_t* dist_freq, DynamicPlan& plan) {
  build_huffman(lit_freq, kNumLitLenSymbols, kMaxCodeBits, plan.ll_len,
                plan.ll_code);
  build_huffman(dist_freq, kNumDistSymbols, kMaxCodeBits, plan.d_len,
                plan.d_code);

  plan.hlit = kNumLitLenSymbols;
  while (plan.hlit > 257 && plan.ll_len[plan.hlit - 1] == 0) plan.hlit--;
  plan.hdist = kNumDistSymbols;
  while (plan.hdist > 1 && plan.d_len[plan.hdist - 1] == 0) plan.hdist--;

  // RLE over the concatenated code-length array (RFC 1951 §3.2.7).
  std::array<std::uint8_t, kNumLitLenSymbols + kNumDistSymbols> all;
  int total = 0;
  for (int s = 0; s < plan.hlit; ++s) all[total++] = plan.ll_len[s];
  for (int s = 0; s < plan.hdist; ++s) all[total++] = plan.d_len[s];

  plan.ops.clear();
  std::uint32_t cl_freq[kNumClSymbols] = {};
  const auto push = [&](int sym, int arg) {
    plan.ops.push_back({static_cast<std::uint8_t>(sym),
                        static_cast<std::uint8_t>(arg)});
    cl_freq[sym]++;
  };
  for (int i = 0; i < total;) {
    const std::uint8_t v = all[i];
    int run = 1;
    while (i + run < total && all[i + run] == v) ++run;
    i += run;
    if (v == 0) {
      while (run >= 11) {
        const int n = std::min(run, 138);
        push(18, n - 11);
        run -= n;
      }
      if (run >= 3) {
        push(17, run - 3);
        run = 0;
      }
      while (run-- > 0) push(0, 0);
    } else {
      push(v, 0);
      --run;
      while (run >= 3) {
        const int n = std::min(run, 6);
        push(16, n - 3);
        run -= n;
      }
      while (run-- > 0) push(v, 0);
    }
  }

  // A single-symbol code-length table would be incomplete, which strict
  // decoders (including our hardened inflate) reject for the header table;
  // gift a second length-1 code to an unused early symbol instead.
  int cl_used = 0;
  int cl_only = -1;
  for (int s = 0; s < kNumClSymbols; ++s) {
    if (cl_freq[s] > 0) {
      ++cl_used;
      cl_only = s;
    }
  }
  if (cl_used == 1) cl_freq[cl_only == 0 ? 18 : 0] = 1;
  build_huffman(cl_freq, kNumClSymbols, kMaxClCodeBits, plan.cl_len,
                plan.cl_code);

  plan.hclen = kNumClSymbols;
  while (plan.hclen > 4 && plan.cl_len[kClOrder[plan.hclen - 1]] == 0) {
    plan.hclen--;
  }

  plan.header_bits = 5 + 5 + 4 + 3 * static_cast<std::uint64_t>(plan.hclen);
  for (const auto& op : plan.ops) {
    plan.header_bits += plan.cl_len[op.sym] + cl_extra_bits(op.sym);
  }
  plan.body_bits = 0;
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    plan.body_bits +=
        static_cast<std::uint64_t>(lit_freq[s]) * plan.ll_len[s];
  }
  for (int c = 0; c < 29; ++c) {
    plan.body_bits += static_cast<std::uint64_t>(lit_freq[257 + c]) *
                      kLengthCodes[c].extra;
  }
  for (int c = 0; c < kNumDistSymbols; ++c) {
    plan.body_bits += static_cast<std::uint64_t>(dist_freq[c]) *
                      (plan.d_len[c] + kDistCodes[c].extra);
  }
}

std::uint64_t fixed_body_cost(const std::uint32_t* lit_freq,
                              const std::uint32_t* dist_freq) {
  std::uint64_t bits = 0;
  for (int s = 0; s < kNumLitLenSymbols; ++s) {
    bits += static_cast<std::uint64_t>(lit_freq[s]) * fixed_litlen_bits(s);
  }
  for (int c = 0; c < 29; ++c) {
    bits += static_cast<std::uint64_t>(lit_freq[257 + c]) *
            kLengthCodes[c].extra;
  }
  for (int c = 0; c < kNumDistSymbols; ++c) {
    bits += static_cast<std::uint64_t>(dist_freq[c]) *
            (5 + kDistCodes[c].extra);
  }
  return bits;
}

/// One complete block over [data, data+size): tokenize once, then emit
/// through the dynamic code when its exact cost (header included) beats the
/// fixed code, else through the fixed code.
void deflate_chunk(const std::uint8_t* data, std::size_t size, bool final,
                   DeflateStrategy strategy, BitWriter& bw) {
  ChunkScratch& s = chunk_scratch();
  tokenize_chunk(data, size, s);
  s.lit_freq[256]++;  // every block ends with the EOB symbol

  if (strategy == DeflateStrategy::dynamic) {
    DynamicPlan plan;
    build_dynamic_plan(s.lit_freq, s.dist_freq, plan);
    if (plan.header_bits + plan.body_bits <
        fixed_body_cost(s.lit_freq, s.dist_freq)) {
      bw.put_bits(final ? 1 : 0, 1);  // BFINAL
      bw.put_bits(2, 2);              // BTYPE = 10 (dynamic Huffman)
      bw.put_bits(static_cast<std::uint32_t>(plan.hlit - 257), 5);
      bw.put_bits(static_cast<std::uint32_t>(plan.hdist - 1), 5);
      bw.put_bits(static_cast<std::uint32_t>(plan.hclen - 4), 4);
      for (int i = 0; i < plan.hclen; ++i) {
        bw.put_bits(plan.cl_len[kClOrder[i]], 3);
      }
      for (const auto& op : plan.ops) {
        bw.put_bits(plan.cl_code[op.sym], plan.cl_len[op.sym]);
        if (const int extra = cl_extra_bits(op.sym); extra > 0) {
          bw.put_bits(op.arg, extra);
        }
      }
      emit_tokens(bw, s.tokens, plan.ll_len, plan.ll_code, plan.d_len,
                  plan.d_code);
      return;
    }
  }

  const FixedCodes& fc = fixed_codes();
  bw.put_bits(final ? 1 : 0, 1);  // BFINAL
  bw.put_bits(1, 2);              // BTYPE = 01 (fixed Huffman)
  emit_tokens(bw, s.tokens, fc.ll_len, fc.ll_code, fc.d_len, fc.d_code);
}

}  // namespace

std::vector<std::uint8_t> deflate_compress(const std::uint8_t* data,
                                           std::size_t size, int threads,
                                           DeflateStrategy strategy) {
  if (strategy == DeflateStrategy::stored) return deflate_store(data, size);
  const std::size_t chunks =
      size == 0 ? 1 : (size + kDeflateChunk - 1) / kDeflateChunk;
  std::vector<BitWriter::BitBuffer> parts(chunks);
  util::parallel_for(chunks, threads, [&](std::size_t i) {
    BitWriter bw;
    const std::size_t off = i * kDeflateChunk;
    deflate_chunk(data + off, std::min(kDeflateChunk, size - off),
                  i + 1 == chunks, strategy, bw);
    parts[i] = bw.take_bits();
  });
  BitWriter out;
  for (const auto& part : parts) out.append(part);
  return out.take();
}

std::vector<std::uint8_t> deflate_store(const std::uint8_t* data,
                                        std::size_t size) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(size - pos, 65535);
    const bool final = pos + chunk == size;
    out.push_back(final ? 1 : 0);  // BFINAL, BTYPE=00, byte-aligned
    const auto len = static_cast<std::uint16_t>(chunk);
    out.push_back(static_cast<std::uint8_t>(len & 0xFF));
    out.push_back(static_cast<std::uint8_t>(len >> 8));
    out.push_back(static_cast<std::uint8_t>(~len & 0xFF));
    out.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
    out.insert(out.end(), data + pos, data + pos + chunk);
    pos += chunk;
  } while (pos < size);
  return out;
}

std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t size,
                                        DeflateStrategy strategy,
                                        int threads) {
  std::vector<std::uint8_t> out;
  out.push_back(0x78);  // CMF: deflate, 32K window
  out.push_back(0x01);  // FLG: fastest, no dict; (0x7801 % 31 == 0)
  auto body = deflate_compress(data, size, threads, strategy);
  out.insert(out.end(), body.begin(), body.end());

  std::uint32_t a;
  if (threads <= 1 || size <= kDeflateChunk) {
    a = adler32(data, size);
  } else {
    // Checksum the same chunk grid on the workers, combine at stitch time.
    const std::size_t chunks = (size + kDeflateChunk - 1) / kDeflateChunk;
    std::vector<std::uint32_t> parts(chunks);
    util::parallel_for(chunks, threads, [&](std::size_t i) {
      const std::size_t off = i * kDeflateChunk;
      parts[i] = adler32(data + off, std::min(kDeflateChunk, size - off));
    });
    a = parts[0];
    for (std::size_t i = 1; i < chunks; ++i) {
      a = adler32_combine(a, parts[i],
                          std::min(kDeflateChunk, size - i * kDeflateChunk));
    }
  }
  out.push_back(static_cast<std::uint8_t>(a >> 24));
  out.push_back(static_cast<std::uint8_t>(a >> 16));
  out.push_back(static_cast<std::uint8_t>(a >> 8));
  out.push_back(static_cast<std::uint8_t>(a));
  return out;
}

std::vector<std::uint8_t> gzip_compress(const std::uint8_t* data,
                                        std::size_t size,
                                        DeflateStrategy strategy,
                                        int threads) {
  // Deterministic member header: no flags, MTIME=0, XFL=0, OS=255 (unknown).
  std::vector<std::uint8_t> out = {0x1F, 0x8B, 0x08, 0x00, 0x00,
                                   0x00, 0x00, 0x00, 0x00, 0xFF};
  auto body = deflate_compress(data, size, threads, strategy);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t crc = crc32_parallel(data, size, threads);
  const auto isize = static_cast<std::uint32_t>(size);
  for (const std::uint32_t v : {crc, isize}) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
  }
  return out;
}

}  // namespace jedule::render
