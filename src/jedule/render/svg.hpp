#pragma once

// SVG vector canvas. Substitutes for the Java original's JPEG export with a
// resolution-independent format (see DESIGN.md §2).

#include <string>

#include "jedule/render/canvas.hpp"

namespace jedule::render {

class SvgCanvas final : public Canvas {
 public:
  SvgCanvas(int width, int height);

  int width() const override { return width_; }
  int height() const override { return height_; }

  void fill_rect(double x, double y, double w, double h,
                 color::Color c) override;
  void stroke_rect(double x, double y, double w, double h,
                   color::Color c) override;
  void line(double x0, double y0, double x1, double y1,
            color::Color c) override;
  void text(double x, double y, std::string_view text, color::Color c,
            int size) override;
  double text_width(std::string_view text, int size) const override;
  double text_height(int size) const override;

  /// Complete SVG document.
  std::string finish() const;

 private:
  int width_;
  int height_;
  std::string body_;
};

}  // namespace jedule::render
