#pragma once

// Deterministic software rasterizer target: a 32-bit RGBA framebuffer with
// the handful of primitives a Gantt chart needs (filled/outlined rectangles,
// axis lines, hatching). Text drawing lives in font.hpp.

#include <cstdint>
#include <vector>

#include "jedule/color/color.hpp"

namespace jedule::render {

using color::Color;

class Framebuffer {
 public:
  Framebuffer(int width, int height, Color background = color::kWhite);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Raw pixels, row-major, 4 bytes (RGBA) per pixel.
  const std::vector<std::uint8_t>& pixels() const { return pixels_; }

  /// Raw pointer to row `y` (caller guarantees 0 <= y < height). The span
  /// rasterizer and the SIMD kernels write rows through this.
  std::uint8_t* row(int y) {
    return pixels_.data() + static_cast<std::size_t>(y) * width_ * 4;
  }
  const std::uint8_t* row(int y) const {
    return pixels_.data() + static_cast<std::size_t>(y) * width_ * 4;
  }

  void clear(Color c);

  /// Single pixel with source-over blending; out-of-bounds writes are
  /// silently clipped (callers pass unclamped geometry).
  void set_pixel(int x, int y, Color c);

  /// Pixel without blending or bounds checks (hot path; caller clips).
  void set_pixel_unchecked(int x, int y, Color c);

  Color pixel(int x, int y) const;

  /// Filled axis-aligned rectangle [x, x+w) x [y, y+h), clipped, blended.
  void fill_rect(int x, int y, int w, int h, Color c);

  /// 1-pixel rectangle outline.
  void draw_rect(int x, int y, int w, int h, Color c);

  void draw_hline(int x0, int x1, int y, Color c);
  void draw_vline(int x, int y0, int y1, Color c);

  /// Bresenham line (used for DAG structure exports).
  void draw_line(int x0, int y0, int x1, int y1, Color c);

  /// Diagonal hatching inside a rectangle, `spacing` pixels apart; the
  /// renderer uses it to keep composite tasks distinguishable in grayscale.
  void hatch_rect(int x, int y, int w, int h, int spacing, Color c);

  /// Copies all rows of `src` (same width, must fit) into this image
  /// starting at row `y`. The banded parallel painter calls this from
  /// worker threads; that is safe because the bands' row ranges are
  /// disjoint byte ranges of the pixel buffer.
  void blit_rows(const Framebuffer& src, int y);

  /// Copies `w` pixel columns of `src` (same height) starting at column
  /// `src_x` into this image at column `dst_x`, clipped to both images.
  /// The tile cache blits cached tile strips into a frame with this.
  void blit_cols(const Framebuffer& src, int dst_x, int src_x, int w);

  friend bool operator==(const Framebuffer& a, const Framebuffer& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace jedule::render
