#pragma once

// DEFLATE decoder covering everything the in-tree encoder can emit (stored
// and fixed-Huffman blocks) plus dynamic-Huffman blocks, so externally
// produced zlib streams also load. Exists primarily so the PNG/zlib encoder
// is round-trip verified by the test suite without external dependencies.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jedule::render {

/// Decodes a raw DEFLATE stream; throws jedule::ParseError on corruption.
std::vector<std::uint8_t> inflate_decompress(const std::uint8_t* data,
                                             std::size_t size);

/// Decodes a zlib stream and verifies its Adler-32 checksum.
std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t size);

}  // namespace jedule::render
