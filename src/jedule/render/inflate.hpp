#pragma once

// Forwarding header: the DEFLATE/zlib/gzip decoder moved to
// jedule/util/inflate.hpp so the io layer can load compressed schedule
// files without depending on the render library. Kept so existing
// render-side includes and qualified names keep working.

#include "jedule/util/inflate.hpp"

namespace jedule::render {

using util::gzip_decompress;
using util::inflate_decompress;
using util::zlib_decompress;

}  // namespace jedule::render
