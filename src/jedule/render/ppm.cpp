#include "jedule/render/ppm.hpp"

#include "jedule/io/file.hpp"

namespace jedule::render {

std::string encode_ppm(const Framebuffer& fb) {
  std::string out = "P6\n" + std::to_string(fb.width()) + " " +
                    std::to_string(fb.height()) + "\n255\n";
  out.reserve(out.size() +
              static_cast<std::size_t>(fb.width()) * fb.height() * 3);
  const auto& px = fb.pixels();
  for (std::size_t i = 0; i < px.size(); i += 4) {
    out += static_cast<char>(px[i]);
    out += static_cast<char>(px[i + 1]);
    out += static_cast<char>(px[i + 2]);
  }
  return out;
}

void save_ppm(const Framebuffer& fb, const std::string& path) {
  io::write_file(path, encode_ppm(fb));
}

}  // namespace jedule::render
