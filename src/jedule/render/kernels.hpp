#pragma once

// Runtime-dispatched SIMD row kernels for the software rasterizer
// (DESIGN.md §4e). Three primitives cover every hot inner loop of the
// raster path: opaque row fill (pattern broadcast), source-over alpha
// blend, and row copy. Each has scalar, SSE2, AVX2 and NEON variants;
// dispatch picks the best one the executing CPU supports, decided once at
// startup.
//
// Every variant is bit-exact with the scalar path — and the scalar blend
// is bit-exact with color::blend_over — so switching kernels can never
// change output bytes. The test suite fuzzes all variants against scalar
// (test_render_kernels.cpp).
//
// Overrides, strongest first:
//   - override_active(k): test hook, routes active() to a specific variant.
//   - JEDULE_SIMD environment variable: "scalar"/"off" forces scalar,
//     "sse2"/"avx2"/"neon" selects that variant when available (silently
//     falls back to the best available one otherwise).
//   - -DJEDULE_SIMD=OFF at configure time compiles the dispatch down to
//     the scalar path only.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "jedule/color/color.hpp"

namespace jedule::render::kernels {

/// Fills `npx` pixels (4 bytes each) with c.r/c.g/c.b and alpha 255.
using FillRowFn = void (*)(std::uint8_t* row, std::size_t npx,
                           color::Color c);

/// Source-over blends `c` onto `npx` pixels, writing alpha 255. Bit-exact
/// with applying color::blend_over per pixel, for every alpha 0..255.
using BlendRowFn = void (*)(std::uint8_t* row, std::size_t npx,
                            color::Color c);

/// Copies `npx` pixels; ranges must not overlap.
using CopyRowFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t npx);

struct Kernels {
  const char* name;  // "scalar", "sse2", "avx2", "neon"
  FillRowFn fill_row;
  BlendRowFn blend_row;
  CopyRowFn copy_row;
};

/// The portable reference variant (always present).
const Kernels& scalar();

/// Every variant this build supports and the host CPU can run, scalar
/// first, fastest last.
const std::vector<const Kernels*>& available();

/// The variant in `available()` with `name`, or nullptr.
const Kernels* find(std::string_view name);

/// The dispatched variant: the test override if set, else the
/// JEDULE_SIMD env selection, else the fastest available.
const Kernels& active();

/// Test hook: route active() to `k` (nullptr restores normal dispatch).
void override_active(const Kernels* k);

}  // namespace jedule::render::kernels
