#pragma once

// Runtime-dispatched SIMD row kernels for the software rasterizer, the
// PNG codec, and the columnar schedule arena (DESIGN.md §4e, §4g, §4h).
// Ten primitives cover every hot inner loop: opaque row fill (pattern
// broadcast), source-over alpha blend, row copy, PNG scanline
// filter/unfilter, the sum-of-absolute-differences filter-selection
// score, two double-column scans (paired min/max reduction and
// first-time-violation search) that serve model::ScheduleArena through
// the ColumnScanOps hook, and the edge heat-lane pair (f32 column
// accumulate + byte quantize, DESIGN.md §4j). Each has scalar, SSE2,
// AVX2 and NEON variants; dispatch picks the best one the executing CPU
// supports, decided once at startup.
//
// Every variant is bit-exact with the scalar path — and the scalar blend
// is bit-exact with color::blend_over — so switching kernels can never
// change output bytes. The test suite fuzzes all variants against scalar
// (test_render_kernels.cpp).
//
// Overrides, strongest first:
//   - override_active(k): test hook, routes active() to a specific variant.
//   - JEDULE_SIMD environment variable: "scalar"/"off" forces scalar,
//     "sse2"/"avx2"/"neon" selects that variant when available (silently
//     falls back to the best available one otherwise).
//   - -DJEDULE_SIMD=OFF at configure time compiles the dispatch down to
//     the scalar path only.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "jedule/color/color.hpp"

namespace jedule::render::kernels {

/// Fills `npx` pixels (4 bytes each) with c.r/c.g/c.b and alpha 255.
using FillRowFn = void (*)(std::uint8_t* row, std::size_t npx,
                           color::Color c);

/// Source-over blends `c` onto `npx` pixels, writing alpha 255. Bit-exact
/// with applying color::blend_over per pixel, for every alpha 0..255.
using BlendRowFn = void (*)(std::uint8_t* row, std::size_t npx,
                            color::Color c);

/// Copies `npx` pixels; ranges must not overlap.
using CopyRowFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t npx);

/// Applies PNG scanline filter `type` (0=None, 1=Sub, 2=Up, 3=Average,
/// 4=Paeth; RFC 2083 §6) to one row of `n` bytes with `bpp` bytes per
/// pixel: out[i] = cur[i] - predictor. `prev` is the prior *unfiltered*
/// row and must point at `n` zero bytes for the first scanline. All
/// arithmetic is mod 256, so every variant is bit-exact with scalar.
using PngFilterRowFn = void (*)(int type, std::uint8_t* out,
                                const std::uint8_t* cur,
                                const std::uint8_t* prev, std::size_t n,
                                std::size_t bpp);

/// Reverses a PNG scanline filter in place: `cur` holds the filtered bytes
/// on entry and the reconstructed row on return. `prev` is the prior
/// *reconstructed* row (`n` zero bytes for the first scanline). Only Up is
/// data-parallel; Sub/Average/Paeth carry a loop dependency and run the
/// scalar path in every variant.
using PngUnfilterRowFn = void (*)(int type, std::uint8_t* cur,
                                  const std::uint8_t* prev, std::size_t n,
                                  std::size_t bpp);

/// Sum over min(b, 256-b) of each byte — the minimum-sum-of-absolute-
/// differences heuristic that scores one filtered scanline candidate.
using PngSadFn = std::uint64_t (*)(const std::uint8_t* data, std::size_t n);

/// Paired column reduction: *lo = min over a[0..n), *hi = max over
/// b[0..n); n >= 1. Inputs must be NaN-free (the arena computes time
/// bounds only over columns its validation pass accepted) — with NaNs the
/// variants may legitimately disagree, like any SIMD min/max.
using MinMaxF64Fn = void (*)(const double* a, const double* b, std::size_t n,
                             double* lo, double* hi);

/// First index i in [0, n) with !(end[i] >= start[i]) — i.e. end < start
/// or either value NaN — or n if none. The arena's columnar
/// time-sanity scan; every variant returns the exact first index.
using FirstViolationFn = std::size_t (*)(const double* start,
                                         const double* end, std::size_t n);

/// acc[i] += v over [0, n) — the edge heat-lane column accumulate. Lane
/// adds are element-wise (no reassociation), so every variant is
/// bit-exact with scalar; heat counts of 1.0f stay exact below 2^24.
using HeatAccumFn = void (*)(float* acc, std::size_t n, float v);

/// out[i] = clamp(trunc(min(acc[i] * scale + 0.5f, 255.0f)), 0, 255) —
/// the heat-lane byte quantizer. Truncation toward zero matches
/// cvttps/vcvtq exactly, so the quantized ramp is identical under every
/// variant.
using HeatQuantizeFn = void (*)(const float* acc, std::size_t n, float scale,
                                std::uint8_t* out);

struct Kernels {
  const char* name;  // "scalar", "sse2", "avx2", "neon"
  FillRowFn fill_row;
  BlendRowFn blend_row;
  CopyRowFn copy_row;
  PngFilterRowFn png_filter_row;
  PngUnfilterRowFn png_unfilter_row;
  PngSadFn png_sad;
  MinMaxF64Fn minmax_f64;
  FirstViolationFn first_violation;
  HeatAccumFn heat_accum;
  HeatQuantizeFn heat_quantize;
};

/// The portable reference variant (always present).
const Kernels& scalar();

/// Every variant this build supports and the host CPU can run, scalar
/// first, fastest last.
const std::vector<const Kernels*>& available();

/// The variant in `available()` with `name`, or nullptr.
const Kernels* find(std::string_view name);

/// The dispatched variant: the test override if set, else the
/// JEDULE_SIMD env selection, else the fastest available.
const Kernels& active();

/// Test hook: route active() to `k` (nullptr restores normal dispatch).
void override_active(const Kernels* k);

}  // namespace jedule::render::kernels
