#include "jedule/render/svg.hpp"

#include "jedule/util/strings.hpp"

namespace jedule::render {

namespace {
std::string num(double v) {
  // Two decimals are plenty at chart scale and keep files small and stable.
  std::string s = util::format_fixed(v, 2);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

std::string rgb(color::Color c) { return "#" + color::to_hex(c); }
}  // namespace

SvgCanvas::SvgCanvas(int width, int height) : width_(width), height_(height) {}

void SvgCanvas::fill_rect(double x, double y, double w, double h,
                          color::Color c) {
  body_ += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" +
           num(w) + "\" height=\"" + num(h) + "\" fill=\"" + rgb(c) + "\"";
  if (c.a != 255) {
    body_ += " fill-opacity=\"" + num(c.a / 255.0) + "\"";
  }
  body_ += "/>\n";
}

void SvgCanvas::stroke_rect(double x, double y, double w, double h,
                            color::Color c) {
  body_ += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" +
           num(w) + "\" height=\"" + num(h) + "\" fill=\"none\" stroke=\"" +
           rgb(c) + "\" stroke-width=\"1\"/>\n";
}

void SvgCanvas::line(double x0, double y0, double x1, double y1,
                     color::Color c) {
  body_ += "<line x1=\"" + num(x0) + "\" y1=\"" + num(y0) + "\" x2=\"" +
           num(x1) + "\" y2=\"" + num(y1) + "\" stroke=\"" + rgb(c) +
           "\" stroke-width=\"1\"/>\n";
}

void SvgCanvas::text(double x, double y, std::string_view text,
                     color::Color c, int size) {
  // Canvas anchors text at the top-left; SVG anchors at the baseline.
  body_ += "<text x=\"" + num(x) + "\" y=\"" + num(y + size * 0.8) +
           "\" font-family=\"monospace\" font-size=\"" +
           std::to_string(size) + "\" fill=\"" + rgb(c) + "\">" +
           util::xml_escape(text) + "</text>\n";
}

double SvgCanvas::text_width(std::string_view text, int size) const {
  // Monospace advance is ~0.6 em.
  return static_cast<double>(text.size()) * size * 0.6;
}

double SvgCanvas::text_height(int size) const { return size; }

std::string SvgCanvas::finish() const {
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
         "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(width_) + "\" height=\"" + std::to_string(height_) +
         "\" viewBox=\"0 0 " + std::to_string(width_) + " " +
         std::to_string(height_) + "\">\n" + body_ + "</svg>\n";
}

}  // namespace jedule::render
