#pragma once

// Embedded 5x7 bitmap font (ASCII 32..126) plus text drawing.
//
// The Java original relies on platform fonts via Swing; a self-contained
// bitmap font keeps raster output byte-reproducible across machines, which
// the test suite depends on (DESIGN.md §6.8). Sizes scale by integer pixel
// replication: a requested pixel size s maps to scale max(1, round(s/8)).

#include <array>
#include <cstdint>
#include <string_view>

#include "jedule/render/framebuffer.hpp"

namespace jedule::render {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;

/// Rows of the glyph for `c`; bit 4 is the leftmost column. Characters
/// outside 32..126 map to a filled "tofu" box.
const std::array<std::uint8_t, kGlyphHeight>& glyph_bitmap(char c);

/// Integer replication factor used for a requested pixel size.
int scale_for_font_size(int pixel_size);

/// Width in pixels of `text` at `scale` (glyph + 1-column spacing).
int text_width(std::string_view text, int scale);

/// Height in pixels of one text line at `scale`.
int text_height(int scale);

/// Draws `text` with its top-left corner at (x, y).
void draw_text(Framebuffer& fb, int x, int y, std::string_view text,
               Color color, int scale = 1);

/// Draws `text` horizontally centered in [x, x+w) and vertically centered
/// in [y, y+h).
void draw_text_centered(Framebuffer& fb, int x, int y, int w, int h,
                        std::string_view text, Color color, int scale = 1);

}  // namespace jedule::render
