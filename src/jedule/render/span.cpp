#include "jedule/render/span.hpp"

#include <algorithm>

#include "jedule/render/kernels.hpp"

namespace jedule::render {

namespace {

// Below this many ops on a scanline, painting forward in paint order is
// cheaper than the O(width) occlusion pass. Both paths are byte-exact.
constexpr std::size_t kOcclusionThreshold = 16;

// Auto-flush bound: a flush is always a correct sequence point, so the
// queue never holds more than ~20 MB of ops regardless of scene size.
constexpr std::size_t kMaxOps = std::size_t{1} << 20;

}  // namespace

void SpanBatch::push_op(long long x0, long long y0, long long x1,
                        long long y1, Color c) {
  if (c.a == 0) return;
  x0 = std::max<long long>(x0, 0);
  y0 = std::max<long long>(y0, 0);
  x1 = std::min<long long>(x1, fb_.width());
  y1 = std::min<long long>(y1, fb_.height());
  if (x0 >= x1 || y0 >= y1) return;
  ops_.push_back(Op{static_cast<int>(x0), static_cast<int>(x1),
                    static_cast<int>(y0), static_cast<int>(y1), c});
}

void SpanBatch::add_rect(int x, int y, int w, int h, Color c) {
  if (w <= 0 || h <= 0) return;
  push_op(x, y, static_cast<long long>(x) + w,
          static_cast<long long>(y) + h, c);
  if (ops_.size() >= kMaxOps) flush();
}

void SpanBatch::add_outline(int x, int y, int w, int h, Color c) {
  if (w <= 0 || h <= 0) return;
  const long long x1 = static_cast<long long>(x) + w;
  const long long y1 = static_cast<long long>(y) + h;
  // Same order as Framebuffer::draw_rect (top, bottom, left, right); for
  // 1-pixel-high or -wide rects the edges coincide and blend repeatedly,
  // exactly like the sequential hline/vline calls.
  push_op(x, y, x1, y + 1LL, c);
  push_op(x, y1 - 1, x1, y1, c);
  push_op(x, y, x + 1LL, y1, c);
  push_op(x1 - 1, y, x1, y1, c);
  if (ops_.size() >= kMaxOps) flush();
}

void SpanBatch::flush() {
  if (ops_.empty()) return;
  const int height = fb_.height();
  const int width = fb_.width();

  // Counting-sort op indices by starting scanline; within a bucket they
  // stay in queue (= paint) order.
  bucket_at_.assign(static_cast<std::size_t>(height) + 1, 0);
  for (const Op& op : ops_) {
    ++bucket_at_[static_cast<std::size_t>(op.y0) + 1];
  }
  for (std::size_t i = 1; i < bucket_at_.size(); ++i) {
    bucket_at_[i] += bucket_at_[i - 1];
  }
  cursor_.assign(bucket_at_.begin(), bucket_at_.end() - 1);
  order_.resize(ops_.size());
  for (std::uint32_t i = 0; i < ops_.size(); ++i) {
    order_[cursor_[static_cast<std::size_t>(ops_[i].y0)]++] = i;
  }

  if (next_.size() < static_cast<std::size_t>(width) + 1) {
    next_.resize(static_cast<std::size_t>(width) + 1);
  }

  active_.clear();
  for (int y = 0; y < height; ++y) {
    // Retire ops that ended; the survivors keep ascending index order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (ops_[active_[i]].y1 > y) active_[kept++] = active_[i];
    }
    active_.resize(kept);
    // Admit ops starting here. Their indices are ascending but not
    // necessarily larger than the survivors', so merge to restore paint
    // order across the whole active set.
    const std::size_t mid = active_.size();
    for (std::uint32_t i = bucket_at_[static_cast<std::size_t>(y)];
         i < bucket_at_[static_cast<std::size_t>(y) + 1]; ++i) {
      active_.push_back(order_[i]);
    }
    if (active_.empty()) continue;
    if (mid != 0 && mid != active_.size()) {
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(mid),
                         active_.end());
    }
    flush_line(y, active_.data(), active_.size());
  }
  ops_.clear();
}

void SpanBatch::flush_line(int y, const std::uint32_t* idx, std::size_t n) {
  const auto& k = kernels::active();
  std::uint8_t* row = fb_.row(y);

  if (n < kOcclusionThreshold) {
    // Sparse row: paint forward exactly as the unbatched path would.
    for (std::size_t i = 0; i < n; ++i) {
      const Op& op = ops_[idx[i]];
      std::uint8_t* p = row + static_cast<std::size_t>(op.x0) * 4;
      const std::size_t npx = static_cast<std::size_t>(op.x1 - op.x0);
      if (op.c.a == 255) {
        k.fill_row(p, npx, op.c);
      } else {
        k.blend_row(p, npx, op.c);
      }
    }
    return;
  }

  // Dense row: walk ops in reverse paint order, tracking the columns some
  // later opaque op already owns with a "next unpainted column"
  // union-find. An opaque op paints only its still-unowned columns and
  // claims them — each pixel is filled exactly once, which is the
  // overdraw elimination. A translucent op records its unowned spans
  // instead: those are exactly the pixels the sequential path would
  // blend *after* the last opaque fill below them, so replaying the
  // recorded spans afterwards in ascending paint order reproduces the
  // sequential bytes.
  const int width = fb_.width();
  for (int x = 0; x <= width; ++x) {
    next_[static_cast<std::size_t>(x)] = x;
  }
  const auto find = [this](int x) {
    int root = x;
    while (next_[static_cast<std::size_t>(root)] != root) {
      root = next_[static_cast<std::size_t>(root)];
    }
    while (next_[static_cast<std::size_t>(x)] != root) {
      const int nx = next_[static_cast<std::size_t>(x)];
      next_[static_cast<std::size_t>(x)] = root;
      x = nx;
    }
    return root;
  };
  pending_.clear();
  for (std::size_t i = n; i-- > 0;) {
    const Op& op = ops_[idx[i]];
    const bool opaque = op.c.a == 255;
    int x = find(op.x0);
    while (x < op.x1) {
      int end = x + 1;
      while (end < op.x1 && next_[static_cast<std::size_t>(end)] == end) {
        ++end;
      }
      if (opaque) {
        k.fill_row(row + static_cast<std::size_t>(x) * 4,
                   static_cast<std::size_t>(end - x), op.c);
        for (int j = x; j < end; ++j) {
          next_[static_cast<std::size_t>(j)] = end;
        }
      } else {
        pending_.push_back(PendingBlend{idx[i], x, end});
      }
      if (end >= op.x1) break;
      x = find(end);
    }
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingBlend& a, const PendingBlend& b) {
              return a.op != b.op ? a.op < b.op : a.x0 < b.x0;
            });
  for (const PendingBlend& pb : pending_) {
    k.blend_row(row + static_cast<std::size_t>(pb.x0) * 4,
                static_cast<std::size_t>(pb.x1 - pb.x0), ops_[pb.op].c);
  }
}

}  // namespace jedule::render
