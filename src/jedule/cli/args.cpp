#include "jedule/cli/args.hpp"

#include <algorithm>

#include "jedule/engine/options.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::cli {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& value_flags) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!util::starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    const bool takes_value =
        std::find(value_flags.begin(), value_flags.end(), body) !=
        value_flags.end();
    if (takes_value) {
      if (i + 1 >= argc) {
        throw ArgumentError("flag --" + body + " requires a value");
      }
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool Args::has(const std::string& flag) const {
  return flags_.count(flag) != 0;
}

std::optional<std::string> Args::value(const std::string& flag) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::value_or(const std::string& flag,
                           const std::string& fallback) const {
  auto v = value(flag);
  return v ? *v : fallback;
}

std::vector<std::string> Args::unused(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : flags_) {
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      out.push_back(k);
    }
  }
  return out;
}

namespace {

/// Adapts an Args to the shared option parser: a set boolean flag reads as
/// the empty string, which engine::parse_bool treats as true.
engine::OptionLookup lookup_of(const Args& args) {
  return [&args](const std::string& name) { return args.value(name); };
}

}  // namespace

render::GanttStyle style_from_args(const Args& args) {
  return engine::style_from_options(lookup_of(args));
}

color::ColorMap colormap_from_args(const Args& args) {
  return engine::colormap_from_options(lookup_of(args));
}

render::RenderOptions options_from_args(const Args& args) {
  return engine::render_options_from(lookup_of(args));
}

}  // namespace jedule::cli
