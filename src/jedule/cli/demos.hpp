#pragma once

// Built-in demo schedules for `jedule demo <name>` — the paper's
// educational use case: each regenerates one case-study schedule so users
// can explore the tool without writing input files.

#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::cli {

/// Names accepted by make_demo(), with one-line descriptions.
std::vector<std::pair<std::string, std::string>> demo_catalog();

/// Builds the named demo schedule; throws ArgumentError for unknown names.
model::Schedule make_demo(const std::string& name);

}  // namespace jedule::cli
