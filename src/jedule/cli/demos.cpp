#include "jedule/cli/demos.hpp"

#include "jedule/dag/generators.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/model/builder.hpp"
#include "jedule/sched/cra.hpp"
#include "jedule/sched/heft.hpp"
#include "jedule/sched/mtask.hpp"
#include "jedule/taskpool/log_schedule.hpp"
#include "jedule/taskpool/quicksort.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"
#include "jedule/workload/thunder.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace jedule::cli {

namespace {

model::Schedule demo_composite() {
  return model::ScheduleBuilder()
      .cluster(0, "cluster-0", 8)
      .meta("demo", "fig3")
      .task("1", "computation", 0.0, 0.31)
      .on(0, 0, 8)
      .task("2", "transfer", 0.25, 0.50)
      .on(0, 2, 4)
      .build();
}

model::Schedule demo_mtask(sched::MTaskAlgorithm algo) {
  const auto dag = dag::mcpa_pathological_dag(16);
  const auto platform = platform::homogeneous_cluster(16);
  const auto result = sched::schedule_mtask(dag, platform, algo);
  return sched::mtask_to_schedule(dag, platform, result);
}

model::Schedule demo_cra() {
  util::Rng rng(5);
  std::vector<dag::Dag> apps;
  apps.push_back(dag::fork_join_dag(3, 5, rng));
  apps.push_back(dag::long_dag(10, rng));
  apps.push_back(dag::wide_dag(8, rng));
  dag::LayeredDagOptions o;
  o.levels = 5;
  apps.push_back(layered_random(o, rng));
  sched::CraOptions options;
  options.metric = sched::ShareMetric::kWidth;
  return sched::schedule_multi_dag(apps, platform::homogeneous_cluster(20),
                                   options)
      .schedule;
}

model::Schedule demo_heft(double backbone_latency) {
  const auto montage = dag::montage_case_study();
  const auto platform = platform::heterogeneous_case_study(backbone_latency);
  const auto result = sched::schedule_heft(montage, platform);
  return sched::heft_to_schedule(montage, platform, result);
}

model::Schedule demo_quicksort(taskpool::QuicksortOptions::Input input) {
  taskpool::TaskPool::Options pool;
  pool.threads = 8;
  taskpool::QuicksortOptions qs;
  qs.elements = 1 << 20;
  qs.input = input;
  const auto run = run_parallel_quicksort(pool, qs);
  taskpool::LogScheduleOptions ls;
  ls.merge_gap = run.log.wallclock / 4000.0;
  return log_to_schedule(run.log, ls);
}

model::Schedule demo_thunder() {
  const workload::ThunderOptions opts;
  const auto trace = workload::generate_thunder_day(opts);
  workload::TraceScheduleOptions conv;
  conv.cluster_name = "thunder";
  conv.reserved_nodes = opts.reserved_nodes;
  return workload::trace_to_schedule(trace, conv).schedule;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> demo_catalog() {
  return {
      {"composite", "overlapping computation/transfer (paper Fig. 3)"},
      {"cpa", "CPA on the load-imbalance DAG (Fig. 4 left)"},
      {"mcpa", "MCPA on the same DAG: idle holes (Fig. 4 right)"},
      {"cra", "4 applications under CRA_WIDTH on 20 procs (Fig. 5)"},
      {"heft-flat", "HEFT Montage, buggy flat backbone (Fig. 8)"},
      {"heft", "HEFT Montage, realistic backbone (Fig. 9)"},
      {"qsort", "parallel Quicksort, random input (Fig. 11)"},
      {"qsort-adversarial",
       "Quicksort, inversely sorted input: sequential head (Fig. 12)"},
      {"thunder", "synthetic 1024-node cluster day (Fig. 13)"},
  };
}

model::Schedule make_demo(const std::string& name) {
  if (name == "composite") return demo_composite();
  if (name == "cpa") return demo_mtask(sched::MTaskAlgorithm::kCpa);
  if (name == "mcpa") return demo_mtask(sched::MTaskAlgorithm::kMcpa);
  if (name == "cra") return demo_cra();
  if (name == "heft-flat") return demo_heft(0.0);
  if (name == "heft") return demo_heft(5e-2);
  if (name == "qsort") {
    return demo_quicksort(taskpool::QuicksortOptions::Input::kRandom);
  }
  if (name == "qsort-adversarial") {
    return demo_quicksort(taskpool::QuicksortOptions::Input::kReversed);
  }
  if (name == "thunder") return demo_thunder();
  throw ArgumentError("unknown demo '" + name +
                      "' (run 'jedule demo' for the catalog)");
}

}  // namespace jedule::cli
