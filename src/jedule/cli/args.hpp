#pragma once

// Tiny declarative flag parser for the jedule CLI.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace jedule::cli {

/// Splits argv into positional arguments and --key[=value] flags.
/// Flags listed in `value_flags` consume the next argument as their value
/// when not written as --key=value; other flags are boolean.
class Args {
 public:
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& value_flags);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const;
  std::optional<std::string> value(const std::string& flag) const;
  std::string value_or(const std::string& flag,
                       const std::string& fallback) const;

  /// Flags the command did not consume; used to reject typos.
  std::vector<std::string> unused(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // value "" = boolean
};

}  // namespace jedule::cli
