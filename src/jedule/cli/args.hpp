#pragma once

// Tiny declarative flag parser for the jedule CLI, plus the adapters that
// turn parsed flags into render options. The option *semantics* (names,
// validation, error messages) live in engine/options.hpp, shared with
// `jedule serve`'s HTTP query parameters — this header only maps an Args
// onto that parser.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/options.hpp"

namespace jedule::cli {

/// Splits argv into positional arguments and --key[=value] flags.
/// Flags listed in `value_flags` consume the next argument as their value
/// when not written as --key=value; other flags are boolean.
class Args {
 public:
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& value_flags);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& flag) const;
  std::optional<std::string> value(const std::string& flag) const;
  std::string value_or(const std::string& flag,
                       const std::string& fallback) const;

  /// Flags the command did not consume; used to reject typos.
  std::vector<std::string> unused(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // value "" = boolean
};

// -- flag -> render-option adapters (engine::options does the parsing) --

/// GanttStyle from --width/--height/--aligned/--window/--clusters/--types/
/// --highlight/--lod/--no-composites/--no-labels/--hatch-composites.
render::GanttStyle style_from_args(const Args& args);

/// ColorMap from --cmap/--grayscale.
color::ColorMap colormap_from_args(const Args& args);

/// The single options object handed CLI -> gantt -> exporter (style +
/// colormap + --threads).
render::RenderOptions options_from_args(const Args& args);

}  // namespace jedule::cli
