// jedule — command-line mode of the schedule visualizer (paper Sec. II.D.2).
//
//   jedule render <schedule> --out out.png [options]   batch image export
//   jedule batch <schedules...> --out-dir DIR          concurrent multi-export
//   jedule view <schedule> [--script file]             scripted interactive mode
//   jedule info <schedule>                             summary + statistics
//   jedule convert <schedule> --out out.{xml,csv}      format conversion
//   jedule snapshot <schedule> --out out.jbin          binary snapshot (mmap reopen)
//   jedule formats                                     registered parsers/exporters
//   jedule serve [--port N]                            long-lived HTTP render daemon

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "jedule/cli/args.hpp"
#include "jedule/cli/demos.hpp"
#include "jedule/color/colormap.hpp"
#include "jedule/engine/options.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/interactive/session.hpp"
#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/csv.hpp"
#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/ascii.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/kernels.hpp"
#include "jedule/render/profile.hpp"
#include "jedule/serve/server.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/log.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/workload/swf_parser.hpp"

namespace jedule::cli {
namespace {

/// Built at startup so the format lists always match the exporter registry
/// (a user-registered exporter shows up here automatically).
std::string usage() {
  const auto& registry = render::ExporterRegistry::instance();
  std::string u =
      "usage: jedule <command> [options]\n"
      "\n"
      "commands:\n"
      "  render <schedule> --out FILE    export an image (" +
      registry.extension_summary() +
      ")\n"
      "  batch <schedule...> --out-dir DIR\n"
      "                                  export many schedules concurrently\n"
      "  view <schedule> [--script FILE] scripted interactive session\n"
      "  info <schedule>                 print schedule statistics\n"
      "  convert <schedule> --out FILE   convert between formats (.xml .csv)\n"
      "  snapshot <schedule> --out FILE  write a .jbin binary snapshot;\n"
      "                                  .jbin inputs reopen via mmap\n"
      "                                  everywhere a schedule is accepted\n"
      "  formats                         list registered parsers and exporters\n"
      "  demo [NAME] [--out FILE]        regenerate a case-study schedule\n"
      "                                  (no NAME lists the catalog)\n"
      "  profile <schedule> --out FILE   utilization-over-time chart\n"
      "                                  (.png .ppm .svg)\n"
      "  serve [--port N]                HTTP daemon: POST /schedules,\n"
      "                                  GET /schedules/{id}/render.{ext},\n"
      "                                  GET /schedules/{id}/tile, GET /stats\n"
      "\n"
      "render options:\n"
      "  --out FILE          output image (required)\n"
      "  --cmap FILE         colormap XML (default: built-in standard map)\n"
      "  --grayscale         collapse the colormap to grays\n"
      "  --width N           image width in pixels (default 1000)\n"
      "  --height N          image height in pixels (default 600)\n"
      "  --aligned           align cluster time axes (default: scaled)\n"
      "  --window T0:T1      restrict the time axis to [T0, T1]\n"
      "  --clusters IDS      comma-separated cluster ids to display\n"
      "  --types NAMES       comma-separated task types to display\n"
      "  --no-composites     do not synthesize overlap (composite) tasks\n"
      "  --no-labels         do not draw task-id labels\n"
      "  --hatch-composites  hatch composite rectangles (grayscale safety)\n"
      "  --highlight K=V     highlight tasks whose property K equals V\n"
      "  --lod auto|off|force\n"
      "                      level of detail: collapse sub-pixel tasks into\n"
      "                      density bins (default: off for exports, auto\n"
      "                      for interactive frames)\n"
      "  --edges auto|off|force\n"
      "                      dependency rendering: arrows while the visible\n"
      "                      edge count fits the per-column budget, a heat\n"
      "                      lane above it; force always bundles (default:\n"
      "                      auto — schedules without dependencies draw\n"
      "                      nothing). The critical path overlays in red.\n"
      "  --edge-density N    arrows-vs-heat budget in visible edges per\n"
      "                      pixel column (default 2)\n"
      "  --format NAME       force the input parser (see 'jedule formats')\n"
      "  --image-format NAME force the output format: " +
      util::join(registry.exporter_names(), " ") +
      "\n"
      "  --threads N         worker threads for parsing *and* rendering\n"
      "                      (default: JEDULE_THREADS env, else hardware\n"
      "                      concurrency); output is identical for every\n"
      "                      thread count\n"
      "  --ingest-stats      print a parse summary to stderr (time, MB/s,\n"
      "                      threads, chunks, gzip/mmap)\n"
      "  --verbose           log progress to stderr\n"
      "\n"
      "batch options: render options plus\n"
      "  --out-dir DIR       output directory (required; created if missing)\n"
      "  --ext EXT           output extension, e.g. .png (default .png)\n"
      "\n"
      "view options: render options plus\n"
      "  --script FILE       read commands from FILE instead of stdin\n"
      "  --frame-stats       render a frame after every command and print\n"
      "                      its timing and tile-cache counters\n"
      "  --follow            after the command stream ends, keep polling the\n"
      "                      file and append new tasks in O(delta) (CSV\n"
      "                      tails byte-for-byte; XML re-parses, appends\n"
      "                      the delta). Ctrl-C stops.\n"
      "  --poll-ms N         --follow poll interval (default 500)\n"
      "  --quiet-polls N     stop --follow after N consecutive polls with\n"
      "                      no growth (default 0: poll until SIGINT)\n"
      "\n"
      "serve options:\n"
      "  --host ADDR         listen address (default 127.0.0.1)\n"
      "  --port N            TCP port (default 8080; 0 picks a free port)\n"
      "  --threads N         request worker threads (default 4)\n"
      "  --queue N           admission queue depth; a full queue answers\n"
      "                      429 + Retry-After (default 32)\n"
      "  --deadline-ms N     per-request socket read/write deadline\n"
      "                      (default 30000)\n"
      "  --store-entries N   schedule-store LRU capacity (default 64)\n"
      "  --cache-mb N        rendered-artifact cache budget (default 128)\n"
      "\n"
      "output formats:\n";
  for (const auto* exporter : registry.exporters()) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-7s %-12s %s\n",
                  exporter->name().c_str(),
                  util::join(exporter->extensions(), " ").c_str(),
                  exporter->description().c_str());
    u += line;
  }
  return u;
}

/// --threads N feeds the chunked parallel parse (0 = JEDULE_THREADS env,
/// else hardware); the loaded schedule is identical at any thread count.
io::IngestOptions ingest_options_from_args(const Args& args) {
  io::IngestOptions opt;
  if (const auto t = args.value("threads")) {
    opt.threads = engine::parse_positive_int(*t, "threads");
  }
  return opt;
}

/// Shared schedule-loading path of the single-input commands: mmap-backed
/// chunked ingest, with the --ingest-stats one-liner on stderr.
model::Schedule load_schedule_from_args(const Args& args,
                                        const std::string& path) {
  io::IngestStats stats;
  model::Schedule schedule = io::load_schedule(
      path, args.value_or("format", ""), ingest_options_from_args(args),
      &stats);
  if (args.has("ingest-stats")) {
    std::cerr << io::ingest_summary(stats) << "\n";
  }
  return schedule;
}

int cmd_render(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("render: expected exactly one schedule file");
  }
  auto out = args.value("out");
  if (!out) throw ArgumentError("render: --out FILE is required");
  const auto schedule = load_schedule_from_args(args, args.positional()[1]);
  JED_INFO() << "loaded " << schedule.tasks().size() << " tasks from "
             << args.positional()[1];
  auto options = options_from_args(args);
  // A windowed export only touches the visible tasks; the index makes the
  // layout O(visible) instead of a full scan (same bytes either way).
  std::optional<model::TaskIndex> index;
  if (options.style.time_window) {
    index.emplace(schedule);
    options.task_index = &*index;
  }
  // Same deal for dependency edges: the index turns the per-panel edge
  // layout into window queries instead of full dependency scans.
  std::optional<model::EdgeIndex> edge_index;
  if (!schedule.dependencies().empty()) {
    edge_index.emplace(schedule, options.resolved_threads());
    options.edge_index = &*edge_index;
  }
  render::export_schedule(schedule, options, *out,
                          args.value_or("image-format", ""));
  JED_INFO() << "wrote " << *out << " (threads=" << options.resolved_threads()
             << ")";
  return 0;
}

int cmd_batch(const Args& args) {
  const auto& pos = args.positional();
  if (pos.size() < 2) {
    throw ArgumentError("batch: expected at least one schedule file");
  }
  auto out_dir = args.value("out-dir");
  if (!out_dir) throw ArgumentError("batch: --out-dir DIR is required");
  std::string ext = args.value_or("ext", ".png");
  if (!ext.empty() && ext[0] != '.') ext = "." + ext;
  const std::string image_format = args.value_or("image-format", "");
  const std::string parser_format = args.value_or("format", "");

  // Validate the output format before doing any work.
  const auto& registry = render::ExporterRegistry::instance();
  if (image_format.empty()) {
    if (registry.find_for_path("x" + ext) == nullptr) {
      throw ArgumentError("batch: no exporter for extension '" + ext +
                          "' (use " + registry.extension_summary() + ")");
    }
  } else if (registry.find(image_format) == nullptr) {
    throw ArgumentError("batch: unknown --image-format '" + image_format +
                        "' (available: " +
                        util::join(registry.exporter_names(), ", ") + ")");
  }

  const std::vector<std::string> inputs(pos.begin() + 1, pos.end());
  std::vector<std::string> outputs(inputs.size());
  std::map<std::string, std::string> stem_of;  // collision -> first input
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string stem = std::filesystem::path(inputs[i]).stem().string();
    auto [it, inserted] = stem_of.emplace(stem, inputs[i]);
    if (!inserted) {
      throw ArgumentError("batch: '" + inputs[i] + "' and '" + it->second +
                          "' would both write " + stem + ext);
    }
    outputs[i] = (std::filesystem::path(*out_dir) / (stem + ext)).string();
  }
  std::filesystem::create_directories(*out_dir);

  // One shared worker pool: files are dealt to the workers, and whatever
  // concurrency is not consumed at the file level is spent inside each
  // render, so a single huge trace still uses every thread.
  render::RenderOptions options = options_from_args(args);
  const int threads = options.resolved_threads();
  const int file_workers =
      static_cast<int>(std::min<std::size_t>(inputs.size(),
                                             static_cast<std::size_t>(threads)));
  options.threads = std::max(1, threads / file_workers);

  // Per-file parses stay chunked too, with the per-render thread share.
  io::IngestOptions ingest_opt = ingest_options_from_args(args);
  ingest_opt.threads = options.threads;
  const bool ingest_stats = args.has("ingest-stats");

  std::vector<std::string> errors(inputs.size());
  util::parallel_for(inputs.size(), file_workers, [&](std::size_t i) {
    try {
      io::IngestStats stats;
      const auto schedule =
          io::load_schedule(inputs[i], parser_format, ingest_opt, &stats);
      if (ingest_stats) {
        std::cerr << inputs[i] + ": " + io::ingest_summary(stats) + "\n";
      }
      render::RenderOptions file_options = options;
      std::optional<model::TaskIndex> index;
      if (file_options.style.time_window) {
        index.emplace(schedule);
        file_options.task_index = &*index;
      }
      std::optional<model::EdgeIndex> edge_index;
      if (!schedule.dependencies().empty()) {
        edge_index.emplace(schedule, file_options.threads);
        file_options.edge_index = &*edge_index;
      }
      render::export_schedule(schedule, file_options, outputs[i],
                              image_format);
      JED_INFO() << "wrote " << outputs[i];
    } catch (const Error& e) {
      errors[i] = e.what();
    }
  });

  int failed = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!errors[i].empty()) {
      std::cerr << "jedule: batch: " << inputs[i] << ": " << errors[i] << "\n";
      ++failed;
    }
  }
  std::cout << "batch: wrote " << (inputs.size() - static_cast<std::size_t>(failed))
            << "/" << inputs.size() << " files to " << *out_dir << " ("
            << file_workers << " file worker(s) x " << options.threads
            << " render thread(s))\n";
  return failed > 0 ? 1 : 0;
}

// Shared by the long-lived loops (serve, view --follow): SIGINT/SIGTERM
// only raise the flag; the drain happens on the main thread.
std::atomic<int> g_stop{0};

void stop_signal_handler(int) { g_stop.store(1); }

void install_stop_handler() {
  g_stop.store(0);
  struct sigaction sa = {};
  sa.sa_handler = stop_signal_handler;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int cmd_view(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("view: expected exactly one schedule file");
  }
  interactive::Session session(args.positional()[1], colormap_from_args(args),
                               style_from_args(args));
  std::istringstream script_stream;
  std::istream* in = &std::cin;
  if (auto script = args.value("script")) {
    script_stream.str(io::read_file(*script));
    in = &script_stream;
  }
  // --frame-stats renders a frame through the tile cache after every view
  // command and reports its timing (cache hits/misses, box count, LOD).
  const bool frame_stats = args.has("frame-stats");
  std::string line;
  while (std::getline(*in, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    try {
      const std::string output = session.execute(std::string(trimmed));
      if (!output.empty()) std::cout << output << "\n";
      if (frame_stats && trimmed != "frame" && trimmed != "stats") {
        session.frame();
        std::cout << session.frame_log().last().summary() << "\n";
      }
    } catch (const Error& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  // --follow: after the command stream ends, keep polling the file for
  // appended tasks. Each poll with growth extends the entry in O(delta)
  // (CSV tails byte-for-byte; XML re-parses and appends the delta).
  if (args.has("follow")) {
    int poll_ms = 500;
    if (const auto p = args.value("poll-ms")) {
      poll_ms = engine::parse_positive_int(*p, "poll-ms");
    }
    long long quiet_limit = 0;  // 0: poll until SIGINT
    if (const auto q = args.value("quiet-polls")) {
      quiet_limit = engine::parse_positive_int(*q, "quiet-polls");
    }
    install_stop_handler();
    long long quiet = 0;
    while (g_stop.load() == 0) {
      const std::string status = session.follow();
      if (status == "no new tasks") {
        if (quiet_limit > 0 && ++quiet >= quiet_limit) break;
      } else {
        quiet = 0;
        std::cout << status << "\n" << std::flush;
        if (frame_stats) {
          session.frame();
          std::cout << session.frame_log().last().summary() << "\n";
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  if (frame_stats && session.frame_log().frames() > 0) {
    std::cout << session.frame_log().summary() << "\n";
  }
  return 0;
}

int cmd_snapshot(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("snapshot: expected exactly one schedule file");
  }
  auto out = args.value("out");
  if (!out) throw ArgumentError("snapshot: --out FILE is required");
  if (!util::ends_with(*out, ".jbin")) {
    throw ArgumentError("snapshot: --out must end in .jbin");
  }
  // load_entry builds exactly the two structures the snapshot holds; a
  // .jbin input round-trips (load mmapped, rewrite) without ever
  // materializing the AoS schedule.
  const engine::EntryPtr entry =
      engine::load_entry(args.positional()[1], args.value_or("format", ""),
                         ingest_options_from_args(args));
  if (args.has("ingest-stats") && !entry->ingest.format.empty()) {
    std::cerr << io::ingest_summary(entry->ingest) << "\n";
  }
  io::save_snapshot(entry->arena(), entry->index, *out, &entry->edges);
  std::cout << "wrote " << *out << " ("
            << std::filesystem::file_size(*out) << " bytes, "
            << entry->task_count() << " task(s), id " << entry->id << ")\n";
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("info: expected exactly one schedule file");
  }
  const auto schedule = load_schedule_from_args(args, args.positional()[1]);
  const auto stats = model::compute_stats(schedule);
  std::cout << "clusters:    " << schedule.clusters().size() << "\n";
  for (const auto& c : schedule.clusters()) {
    std::cout << "  [" << c.id << "] " << c.name << ": " << c.hosts
              << " hosts\n";
  }
  std::cout << "tasks:       " << stats.task_count << "\n";
  std::cout << "makespan:    " << util::format_fixed(stats.makespan, 3)
            << "\n";
  std::cout << "utilization: "
            << util::format_fixed(stats.utilization * 100.0, 1) << "%\n";
  std::cout << "idle time:   " << util::format_fixed(stats.idle_time, 3)
            << "\n";
  for (const auto& [type, area] : stats.area_by_type) {
    std::cout << "  area[" << type << "] = " << util::format_fixed(area, 3)
              << "\n";
  }
  if (!schedule.dependencies().empty()) {
    const model::EdgeIndex edges(schedule);
    // Max per-column density on a 1000-column grid over the full time
    // range — the quantity the renderer's arrows-vs-heat budget compares
    // against (accumulated with the heat-lane kernel itself).
    constexpr std::size_t kCols = 1000;
    std::size_t max_col = 0;
    const auto range = schedule.time_range();
    if (range && range->length() > 0) {
      const double len = range->length();
      for (const auto& c : schedule.clusters()) {
        std::vector<float> acc(kCols, 0.0f);
        edges.query(
            c.id, range->begin, range->end,
            [&](const model::EdgeIndex::Entry& e) {
              const double u0 = (std::max(e.begin, range->begin) -
                                 range->begin) /
                                len * static_cast<double>(kCols);
              const double u1 = (std::min(e.end, range->end) -
                                 range->begin) /
                                len * static_cast<double>(kCols);
              auto c0 = static_cast<long long>(std::floor(u0));
              auto c1 = static_cast<long long>(std::ceil(u1));
              if (c1 <= c0) c1 = c0 + 1;
              c0 = std::clamp<long long>(c0, 0, kCols);
              c1 = std::clamp<long long>(c1, 0, kCols);
              if (c1 > c0) {
                render::kernels::active().heat_accum(
                    acc.data() + c0, static_cast<std::size_t>(c1 - c0),
                    1.0f);
              }
            });
        for (const float v : acc) {
          max_col = std::max(max_col, static_cast<std::size_t>(v));
        }
      }
    }
    std::cout << "edges:       " << edges.edge_count() << "\n";
    std::cout << "  max edges/column: " << max_col
              << " (1000-column grid)\n";
    std::cout << "  critical path: " << edges.critical_path().size()
              << " task(s), length "
              << util::format_fixed(edges.critical_path_time(), 3) << "\n";
  }
  if (!schedule.meta().empty()) {
    std::cout << "meta:\n";
    for (const auto& [k, v] : schedule.meta()) {
      std::cout << "  " << k << " = " << v << "\n";
    }
  }
  return 0;
}

int cmd_convert(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("convert: expected exactly one schedule file");
  }
  auto out = args.value("out");
  if (!out) throw ArgumentError("convert: --out FILE is required");
  const auto schedule = load_schedule_from_args(args, args.positional()[1]);
  if (util::ends_with(*out, ".csv")) {
    io::save_schedule_csv(schedule, *out);
  } else if (util::ends_with(*out, ".xml") ||
             util::ends_with(*out, ".jed")) {
    io::save_schedule_xml(schedule, *out);
  } else {
    throw ArgumentError("convert: output must end in .xml, .jed or .csv");
  }
  return 0;
}

int cmd_profile(const Args& args) {
  if (args.positional().size() != 2) {
    throw ArgumentError("profile: expected exactly one schedule file");
  }
  auto out = args.value("out");
  if (!out) throw ArgumentError("profile: --out FILE is required");
  const auto schedule = load_schedule_from_args(args, args.positional()[1]);
  render::ProfileStyle style;
  if (auto w = args.value("width")) {
    auto v = util::parse_int(*w);
    if (!v || *v <= 0) throw ArgumentError("bad --width");
    style.width = static_cast<int>(*v);
  }
  if (auto h = args.value("height")) {
    auto v = util::parse_int(*h);
    if (!v || *v <= 0) throw ArgumentError("bad --height");
    style.height = static_cast<int>(*v);
  }
  if (auto types = args.value("types")) {
    style.type_filter = util::split(*types, ',');
  }
  render::export_profile(schedule, style, *out);
  return 0;
}

int cmd_demo(const Args& args) {
  if (args.positional().size() == 1) {
    for (const auto& [name, description] : demo_catalog()) {
      std::printf("  %-18s %s\n", name.c_str(), description.c_str());
    }
    return 0;
  }
  if (args.positional().size() != 2) {
    throw ArgumentError("demo: expected at most one demo name");
  }
  const auto schedule = make_demo(args.positional()[1]);
  auto options = options_from_args(args);
  if (args.positional()[1] == "thunder") {
    // The bird's-eye view needs the Fig. 13 styling to be readable.
    options.style.show_labels = false;
    options.style.show_composites = false;
    if (options.style.highlight_key.empty()) {
      options.style.highlight_key = "user";
      options.style.highlight_value = "6447";
    }
  }
  if (auto out = args.value("out")) {
    if (util::ends_with(*out, ".jed") || util::ends_with(*out, ".xml")) {
      io::save_schedule_xml(schedule, *out);
    } else if (util::ends_with(*out, ".csv")) {
      io::save_schedule_csv(schedule, *out);
    } else {
      render::export_schedule(schedule, options, *out,
                              args.value_or("image-format", ""));
    }
    std::cout << "wrote " << *out << "\n";
  } else {
    render::AsciiOptions ascii;
    ascii.type_filter = options.style.type_filter;
    std::cout << render::render_ascii(schedule, ascii);
  }
  return 0;
}

int cmd_serve(const Args& args) {
  serve::Server::Options opt;
  opt.host = args.value_or("host", "127.0.0.1");
  opt.port = 8080;
  if (const auto port = args.value("port")) {
    const auto v = util::parse_int(*port);
    if (!v || *v < 0 || *v > 65535) {
      throw ArgumentError("port must be in [0, 65535] (got '" + *port + "')");
    }
    opt.port = static_cast<int>(*v);
  }
  if (const auto t = args.value("threads")) {
    opt.threads = engine::parse_positive_int(*t, "threads");
  }
  if (const auto q = args.value("queue")) {
    opt.queue_capacity =
        static_cast<std::size_t>(engine::parse_positive_int(*q, "queue"));
  }
  if (const auto d = args.value("deadline-ms")) {
    opt.request_timeout_ms = engine::parse_positive_int(*d, "deadline-ms");
  }
  if (const auto e = args.value("store-entries")) {
    opt.store.max_entries =
        static_cast<std::size_t>(engine::parse_positive_int(*e, "store-entries"));
  }
  if (const auto mb = args.value("cache-mb")) {
    opt.render.artifact_bytes =
        static_cast<std::size_t>(engine::parse_positive_int(*mb, "cache-mb"))
        << 20;
  }

  serve::Server server(opt);
  server.start();
  std::cout << "jedule serve: listening on " << opt.host << ":"
            << server.port() << " (" << opt.threads << " worker(s), queue "
            << opt.queue_capacity << ")\n"
            << std::flush;

  install_stop_handler();

  while (g_stop.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "jedule serve: draining...\n" << std::flush;
  server.stop();
  const auto counters = server.counters();
  std::cout << "jedule serve: stopped (served " << counters.served
            << ", shed " << counters.rejected_429 << ")\n";
  return 0;
}

int cmd_formats() {
  std::cout << "input parsers:\n";
  for (const auto& name : io::ParserRegistry::instance().parser_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "output exporters:\n";
  for (const auto* e : render::ExporterRegistry::instance().exporters()) {
    std::printf("  %-7s %-12s %s\n", e->name().c_str(),
                util::join(e->extensions(), " ").c_str(),
                e->description().c_str());
  }
  return 0;
}

int run(int argc, char** argv) {
  // Register the SWF parser the same way a user extension would, so
  // `jedule render trace.swf` works out of the box.
  workload::register_swf_parser();

  const std::vector<std::string> value_flags = {
      "out",      "cmap",  "width",     "height", "window",
      "clusters", "types", "highlight", "format", "script",
      "threads",  "out-dir", "ext",     "image-format", "lod",
      "edges",    "edge-density",
      "host",     "port",  "queue",     "deadline-ms",  "store-entries",
      "cache-mb", "poll-ms", "quiet-polls"};
  const std::vector<std::string> known_flags = {
      "out",       "cmap",          "width",      "height",
      "window",    "clusters",      "types",      "highlight",  "format",
      "script",    "grayscale",     "aligned",    "no-composites",
      "no-labels", "hatch-composites", "verbose", "threads",
      "out-dir",   "ext",           "image-format", "lod", "frame-stats",
      "edges",     "edge-density",
      "host",      "port",          "queue",      "deadline-ms",
      "store-entries", "cache-mb",  "follow",     "poll-ms",
      "quiet-polls", "ingest-stats"};

  Args args(argc - 1, argv + 1, value_flags);
  if (args.has("verbose")) util::set_log_level(util::LogLevel::kInfo);
  for (const auto& flag : args.unused(known_flags)) {
    throw ArgumentError("unknown flag --" + flag);
  }
  if (args.positional().empty()) {
    std::cerr << usage();
    return 2;
  }
  const std::string& command = args.positional()[0];
  if (command == "render") return cmd_render(args);
  if (command == "batch") return cmd_batch(args);
  if (command == "view") return cmd_view(args);
  if (command == "info") return cmd_info(args);
  if (command == "convert") return cmd_convert(args);
  if (command == "snapshot") return cmd_snapshot(args);
  if (command == "formats") return cmd_formats();
  if (command == "demo") return cmd_demo(args);
  if (command == "profile") return cmd_profile(args);
  if (command == "serve") return cmd_serve(args);
  std::cerr << "unknown command '" << command << "'\n\n" << usage();
  return 2;
}

}  // namespace
}  // namespace jedule::cli

int main(int argc, char** argv) {
  try {
    return jedule::cli::run(argc, argv);
  } catch (const jedule::Error& e) {
    std::cerr << "jedule: " << e.what() << "\n";
    return 1;
  }
}
