#pragma once

// Runtime CPU feature detection for the SIMD raster kernels
// (render/kernels.hpp). Detection runs once, on first use; the result is
// immutable afterwards, so concurrent readers are safe.

namespace jedule::util {

struct CpuFeatures {
  bool sse2 = false;    ///< x86-64 baseline; always set there.
  bool avx2 = false;
  bool pclmul = false;  ///< carry-less multiply (x86 PCLMULQDQ + SSE4.1)
  bool neon = false;    ///< AArch64 baseline; always set there.
};

/// Features of the executing CPU.
const CpuFeatures& cpu_features();

}  // namespace jedule::util
