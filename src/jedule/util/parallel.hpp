#pragma once

// Minimal threading helpers for the render/export pipeline. The design
// constraint is determinism: callers partition work into indexed pieces,
// workers may claim pieces in any order, and results are merged by index,
// so the output never depends on the thread count or on scheduling.

#include <cstddef>
#include <functional>

namespace jedule::util {

/// std::thread::hardware_concurrency(), never less than 1.
int hardware_threads();

/// Resolves a requested worker count: `requested` >= 1 is used as-is;
/// anything else falls back to the JEDULE_THREADS environment variable when
/// it holds a positive integer, and to hardware_threads() otherwise.
int resolve_threads(int requested);

/// Runs fn(i) for every i in [0, n), spreading the calls over up to
/// `threads` workers (the calling thread included). Workers claim indices
/// from a shared counter, so uneven pieces balance automatically. Runs
/// inline when threads <= 1 or n <= 1. The first exception thrown by any
/// call is rethrown on the calling thread after all workers finish.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace jedule::util
