#pragma once

// Minimal threading helpers for the render/export pipeline. The design
// constraint is determinism: callers partition work into indexed pieces,
// workers may claim pieces in any order, and results are merged by index,
// so the output never depends on the thread count or on scheduling.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jedule::util {

/// std::thread::hardware_concurrency(), never less than 1.
int hardware_threads();

/// Resolves a requested worker count: `requested` >= 1 is used as-is;
/// anything else falls back to the JEDULE_THREADS environment variable when
/// it holds a positive integer, and to hardware_threads() otherwise.
int resolve_threads(int requested);

/// Runs fn(i) for every i in [0, n), spreading the calls over up to
/// `threads` workers (the calling thread included). Workers claim indices
/// from a shared counter, so uneven pieces balance automatically. Runs
/// inline when threads <= 1 or n <= 1. The first exception thrown by any
/// call is rethrown on the calling thread after all workers finish.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Fixed pool of long-lived worker threads over a bounded job queue — the
/// admission-control building block of `jedule serve` (parallel_for spreads
/// one computation over transient workers; WorkerPool multiplexes many
/// independent jobs with backpressure). try_submit() refuses instead of
/// blocking when the queue is full, so callers can shed load explicitly
/// (HTTP 429) rather than stall. Jobs must not throw; escaped exceptions
/// are swallowed (workers must survive any request).
class WorkerPool {
 public:
  /// Spawns max(1, threads) workers; at most `queue_capacity` jobs wait.
  WorkerPool(int threads, std::size_t queue_capacity);

  /// stop()s, discarding jobs still queued.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `job` unless the pool is stopping or the queue is at
  /// capacity; returns whether the job was accepted.
  bool try_submit(std::function<void()> job);

  /// Blocks until every queued *and* running job has finished (new
  /// submissions are still accepted while draining).
  void drain();

  /// Rejects new jobs, finishes the running ones, discards the queue and
  /// joins the workers. Idempotent.
  void stop();

  int threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queued() const;
  std::size_t running() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable wake_;   // workers: job available or stopping
  std::condition_variable idle_;   // drain(): queue empty and nothing running
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t capacity_;
  std::size_t running_ = 0;
  bool stopping_ = false;
};

}  // namespace jedule::util
