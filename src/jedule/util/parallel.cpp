#include "jedule/util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "jedule/util/strings.hpp"

namespace jedule::util {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("JEDULE_THREADS")) {
    if (const auto n = parse_int(env); n && *n >= 1 && *n <= 1 << 16) {
      return static_cast<int>(*n);
    }
  }
  return hardware_threads();
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(n, threads < 1 ? 1 : static_cast<std::size_t>(threads));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

WorkerPool::WorkerPool(int threads, std::size_t queue_capacity)
    : capacity_(queue_capacity) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

bool WorkerPool::try_submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
  return true;
}

void WorkerPool::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    queue_.clear();
  }
  wake_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  idle_.notify_all();
}

std::size_t WorkerPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t WorkerPool::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    try {
      job();
    } catch (...) {
      // A job that throws must not take its worker down with it.
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace jedule::util
