#include "jedule/util/checksum.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "jedule/util/parallel.hpp"

namespace jedule::util {

std::uint32_t adler32(const std::uint8_t* data, std::size_t size) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = 1;
  std::uint32_t b = 0;
  // Process in chunks small enough that the sums cannot overflow 32 bits.
  while (size > 0) {
    const std::size_t chunk = std::min<std::size_t>(size, 5552);
    for (std::size_t i = 0; i < chunk; ++i) {
      a += data[i];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    data += chunk;
    size -= chunk;
  }
  return (b << 16) | a;
}

std::uint32_t adler32_combine(std::uint32_t a1, std::uint32_t a2,
                              std::size_t len2) {
  // adler(AB) from adler(A) and adler(B): the s2 sum of B advances by
  // len2 * (s1(A) - 1) because every byte of B sees A's s1 as its prefix.
  constexpr std::uint64_t kMod = 65521;
  const std::uint64_t rem = static_cast<std::uint64_t>(len2 % kMod);
  std::uint64_t sum1 = a1 & 0xFFFF;
  std::uint64_t sum2 = (rem * sum1) % kMod;
  sum1 += (a2 & 0xFFFF) + kMod - 1;
  sum2 += ((a1 >> 16) & 0xFFFF) + ((a2 >> 16) & 0xFFFF) + kMod - rem;
  if (sum1 >= kMod) sum1 -= kMod;
  if (sum1 >= kMod) sum1 -= kMod;
  if (sum2 >= kMod << 1) sum2 -= kMod << 1;
  if (sum2 >= kMod) sum2 -= kMod;
  return static_cast<std::uint32_t>((sum2 << 16) | sum1);
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

// CRC-32 is linear over GF(2): appending len2 zero bytes to A multiplies
// crc(A) by x^(8*len2) modulo the CRC polynomial, and crc(AB) is that
// product XOR crc(B). The multiplication is applied as a 32x32 bit matrix.
std::uint32_t gf2_matrix_times(const std::array<std::uint32_t, 32>& mat,
                               std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec != 0; vec >>= 1, ++i) {
    if (vec & 1) sum ^= mat[static_cast<std::size_t>(i)];
  }
  return sum;
}

std::array<std::uint32_t, 32> gf2_matrix_square(
    const std::array<std::uint32_t, 32>& mat) {
  std::array<std::uint32_t, 32> sq{};
  for (std::size_t n = 0; n < 32; ++n) sq[n] = gf2_matrix_times(mat, mat[n]);
  return sq;
}

}  // namespace

std::uint32_t crc32_combine(std::uint32_t c1, std::uint32_t c2,
                            std::size_t len2) {
  if (len2 == 0) return c1;

  std::array<std::uint32_t, 32> odd{};
  odd[0] = 0xEDB88320u;  // the CRC-32 polynomial: one shift
  std::uint32_t row = 1;
  for (std::size_t n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  std::array<std::uint32_t, 32> even = gf2_matrix_square(odd);  // 2 shifts
  odd = gf2_matrix_square(even);                                // 4 shifts

  // Apply x^(8*len2) by squaring along the bits of len2 (zlib's scheme:
  // the first `even` application already covers the factor 4 above).
  do {
    even = gf2_matrix_square(odd);
    if (len2 & 1) c1 = gf2_matrix_times(even, c1);
    len2 >>= 1;
    if (len2 == 0) break;
    odd = gf2_matrix_square(even);
    if (len2 & 1) c1 = gf2_matrix_times(odd, c1);
    len2 >>= 1;
  } while (len2 != 0);
  return c1 ^ c2;
}

std::uint32_t crc32_parallel(const std::uint8_t* data, std::size_t size,
                             int threads, std::uint32_t seed) {
  constexpr std::size_t kChunk = 1 << 18;
  if (threads <= 1 || size <= kChunk) return crc32(data, size, seed);
  const std::size_t chunks = (size + kChunk - 1) / kChunk;
  std::vector<std::uint32_t> parts(chunks);
  util::parallel_for(chunks, threads, [&](std::size_t i) {
    const std::size_t off = i * kChunk;
    parts[i] = crc32(data + off, std::min(kChunk, size - off));
  });
  std::uint32_t c = seed;
  std::size_t done = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t len = std::min(kChunk, size - done);
    c = crc32_combine(c, parts[i], len);
    done += len;
  }
  return c;
}

}  // namespace jedule::util
