#include "jedule/util/checksum.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#include "jedule/util/cpu.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::util {

std::uint32_t adler32(const std::uint8_t* data, std::size_t size) {
  constexpr std::uint32_t kMod = 65521;
  std::uint32_t a = 1;
  std::uint32_t b = 0;
  // Process in chunks small enough that the sums cannot overflow 32 bits.
  while (size > 0) {
    const std::size_t chunk = std::min<std::size_t>(size, 5552);
    for (std::size_t i = 0; i < chunk; ++i) {
      a += data[i];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    data += chunk;
    size -= chunk;
  }
  return (b << 16) | a;
}

std::uint32_t adler32_combine(std::uint32_t a1, std::uint32_t a2,
                              std::size_t len2) {
  // adler(AB) from adler(A) and adler(B): the s2 sum of B advances by
  // len2 * (s1(A) - 1) because every byte of B sees A's s1 as its prefix.
  constexpr std::uint64_t kMod = 65521;
  const std::uint64_t rem = static_cast<std::uint64_t>(len2 % kMod);
  std::uint64_t sum1 = a1 & 0xFFFF;
  std::uint64_t sum2 = (rem * sum1) % kMod;
  sum1 += (a2 & 0xFFFF) + kMod - 1;
  sum2 += ((a1 >> 16) & 0xFFFF) + ((a2 >> 16) & 0xFFFF) + kMod - rem;
  if (sum1 >= kMod) sum1 -= kMod;
  if (sum1 >= kMod) sum1 -= kMod;
  if (sum2 >= kMod << 1) sum2 -= kMod << 1;
  if (sum2 >= kMod) sum2 -= kMod;
  return static_cast<std::uint32_t>((sum2 << 16) | sum1);
}

namespace {

// Slice-by-8 tables: table[k][b] is the CRC of byte b followed by k zero
// bytes, so eight table lookups advance the register by a full 64-bit
// word per iteration instead of one byte. table[0] is the classic
// bytewise table; results are bit-identical to the bytewise loop.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

const CrcTables& crc_tables() {
  static const CrcTables tables = [] {
    CrcTables t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][n] = c;
    }
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = t[0][n];
      for (std::size_t k = 1; k < 8; ++k) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[k][n] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32_portable(const std::uint8_t* data, std::size_t size,
                             std::uint32_t seed) {
  const CrcTables& t = crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint64_t word;
      std::memcpy(&word, data, 8);
      word ^= c;
      c = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][word >> 56];
      data += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define JEDULE_CRC32_CLMUL 1
#endif

#if defined(JEDULE_CRC32_CLMUL)

namespace {

// PCLMULQDQ folding over the reflected CRC-32 polynomial (the classic
// Intel white-paper scheme): four 128-bit lanes fold 64 bytes per step,
// then reduce 4 -> 1 lane, 128 -> 64 bits, and Barrett-reduce to 32 bits.
// Takes and returns the *raw* (pre-inverted) CRC register; `size` must be
// a non-zero multiple of 16 and at least 64.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_clmul_raw(
    const std::uint8_t* data, std::size_t size, std::uint32_t crc) {
  // x^(4*128+32), x^(4*128-32), x^(128+32), x^(128-32), x^64 mod P, and
  // the Barrett pair (P', mu), all bit-reflected.
  alignas(16) static const std::uint64_t k1k2[2] = {0x0154442bd4,
                                                    0x01c6e41596};
  alignas(16) static const std::uint64_t k3k4[2] = {0x01751997d0,
                                                    0x00ccaa009e};
  alignas(16) static const std::uint64_t k5k0[2] = {0x0163cd6124, 0};
  alignas(16) static const std::uint64_t poly[2] = {0x01db710641,
                                                    0x01f7011641};
  const __m128i* buf = reinterpret_cast<const __m128i*>(data);

  __m128i x1 = _mm_loadu_si128(buf + 0);
  __m128i x2 = _mm_loadu_si128(buf + 1);
  __m128i x3 = _mm_loadu_si128(buf + 2);
  __m128i x4 = _mm_loadu_si128(buf + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  buf += 4;
  size -= 64;

  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(k1k2));
  while (size >= 64) {
    const __m128i f1 = _mm_clmulepi64_si128(x1, k, 0x00);
    const __m128i f2 = _mm_clmulepi64_si128(x2, k, 0x00);
    const __m128i f3 = _mm_clmulepi64_si128(x3, k, 0x00);
    const __m128i f4 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f1), _mm_loadu_si128(buf + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, f2), _mm_loadu_si128(buf + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, f3), _mm_loadu_si128(buf + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, f4), _mm_loadu_si128(buf + 3));
    buf += 4;
    size -= 64;
  }

  // Fold the four lanes into x1.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(k3k4));
  __m128i f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x2);
  f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x3);
  f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x4);

  // Remaining 16-byte blocks.
  while (size >= 16) {
    f = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), _mm_loadu_si128(buf));
    ++buf;
    size -= 16;
  }

  // 128 -> 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  f = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), f);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(k5k0));
  f = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, f);

  // Barrett reduction 64 -> 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(poly));
  f = _mm_and_si128(x1, mask32);
  f = _mm_clmulepi64_si128(f, k, 0x10);
  f = _mm_and_si128(f, mask32);
  f = _mm_clmulepi64_si128(f, k, 0x00);
  x1 = _mm_xor_si128(x1, f);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool crc32_clmul_enabled() {
  static const bool on = [] {
    if (const char* env = std::getenv("JEDULE_SIMD")) {
      const std::string_view want(env);
      if (want == "scalar" || want == "off" || want == "0") return false;
    }
    return cpu_features().pclmul;
  }();
  return on;
}

}  // namespace

#endif  // JEDULE_CRC32_CLMUL

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
#if defined(JEDULE_CRC32_CLMUL)
  if (size >= 64 && crc32_clmul_enabled()) {
    const std::size_t folded = size & ~static_cast<std::size_t>(15);
    const std::uint32_t raw =
        crc32_clmul_raw(data, folded, seed ^ 0xFFFFFFFFu);
    return crc32_portable(data + folded, size - folded, raw ^ 0xFFFFFFFFu);
  }
#endif
  return crc32_portable(data, size, seed);
}

namespace {

// CRC-32 is linear over GF(2): appending len2 zero bytes to A multiplies
// crc(A) by x^(8*len2) modulo the CRC polynomial, and crc(AB) is that
// product XOR crc(B). The multiplication is applied as a 32x32 bit matrix.
std::uint32_t gf2_matrix_times(const std::array<std::uint32_t, 32>& mat,
                               std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec != 0; vec >>= 1, ++i) {
    if (vec & 1) sum ^= mat[static_cast<std::size_t>(i)];
  }
  return sum;
}

std::array<std::uint32_t, 32> gf2_matrix_square(
    const std::array<std::uint32_t, 32>& mat) {
  std::array<std::uint32_t, 32> sq{};
  for (std::size_t n = 0; n < 32; ++n) sq[n] = gf2_matrix_times(mat, mat[n]);
  return sq;
}

}  // namespace

std::uint32_t crc32_combine(std::uint32_t c1, std::uint32_t c2,
                            std::size_t len2) {
  if (len2 == 0) return c1;

  std::array<std::uint32_t, 32> odd{};
  odd[0] = 0xEDB88320u;  // the CRC-32 polynomial: one shift
  std::uint32_t row = 1;
  for (std::size_t n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  std::array<std::uint32_t, 32> even = gf2_matrix_square(odd);  // 2 shifts
  odd = gf2_matrix_square(even);                                // 4 shifts

  // Apply x^(8*len2) by squaring along the bits of len2 (zlib's scheme:
  // the first `even` application already covers the factor 4 above).
  do {
    even = gf2_matrix_square(odd);
    if (len2 & 1) c1 = gf2_matrix_times(even, c1);
    len2 >>= 1;
    if (len2 == 0) break;
    odd = gf2_matrix_square(even);
    if (len2 & 1) c1 = gf2_matrix_times(odd, c1);
    len2 >>= 1;
  } while (len2 != 0);
  return c1 ^ c2;
}

std::uint32_t crc32_parallel(const std::uint8_t* data, std::size_t size,
                             int threads, std::uint32_t seed) {
  constexpr std::size_t kChunk = 1 << 18;
  if (threads <= 1 || size <= kChunk) return crc32(data, size, seed);
  const std::size_t chunks = (size + kChunk - 1) / kChunk;
  std::vector<std::uint32_t> parts(chunks);
  util::parallel_for(chunks, threads, [&](std::size_t i) {
    const std::size_t off = i * kChunk;
    parts[i] = crc32(data + off, std::min(kChunk, size - off));
  });
  std::uint32_t c = seed;
  std::size_t done = 0;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t len = std::min(kChunk, size - done);
    c = crc32_combine(c, parts[i], len);
    done += len;
  }
  return c;
}

}  // namespace jedule::util
