#pragma once

// Error hierarchy shared by all jedule libraries.
//
// Errors that a caller can reasonably anticipate (malformed input files,
// invalid schedules, missing resources) are reported by throwing one of the
// exception types below; programming errors are guarded with JED_ASSERT.

#include <stdexcept>
#include <string>

namespace jedule {

/// Base class of all errors thrown by the jedule libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A file or string could not be parsed (XML, SWF, CSV, colormap, ...).
/// Carries an optional 1-based line number of the offending input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what, long line = 0)
      : Error(line > 0 ? what + " (line " + std::to_string(line) + ")" : what),
        line_(line) {}

  /// 1-based line of the offending input, or 0 if unknown.
  long line() const noexcept { return line_; }

 private:
  long line_;
};

/// A structurally well-formed object violates a semantic invariant
/// (overlapping clusters, host index out of range, negative duration, ...).
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// An operating-system level I/O failure (cannot open/read/write a file).
class IoError : public Error {
 public:
  using Error::Error;
};

/// Bad arguments passed to a public API entry point.
class ArgumentError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace jedule

/// Internal invariant check that stays enabled in release builds; the
/// libraries are I/O bound, so the cost is irrelevant and the diagnostics
/// are worth it.
#define JED_ASSERT(expr)                                           \
  ((expr) ? static_cast<void>(0)                                   \
          : ::jedule::detail::assert_fail(#expr, __FILE__, __LINE__))
