#pragma once

// DEFLATE decoder covering everything the in-tree encoder can emit (stored
// and fixed-Huffman blocks) plus dynamic-Huffman blocks, so externally
// produced zlib/gzip streams also load. Lives in util (not render) so the
// io layer can read compressed schedule files without a render dependency.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace jedule::util {

/// Decodes a raw DEFLATE stream; throws jedule::ParseError on corruption.
/// Bytes past the final block are ignored.
std::vector<std::uint8_t> inflate_decompress(const std::uint8_t* data,
                                             std::size_t size);

/// Decodes a zlib (RFC 1950) stream and verifies its Adler-32 checksum.
std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t size);

/// Decodes a single-member gzip (RFC 1952) file: parses the header
/// (including the optional FEXTRA/FNAME/FCOMMENT/FHCRC fields), inflates
/// the DEFLATE body, and verifies the CRC-32 + ISIZE trailer.
std::vector<std::uint8_t> gzip_decompress(const std::uint8_t* data,
                                          std::size_t size);

/// True when `head` starts with the gzip magic bytes 0x1f 0x8b.
bool looks_like_gzip(std::string_view head);

}  // namespace jedule::util
