#pragma once

// DEFLATE decoder covering everything the in-tree encoder can emit (stored
// and fixed-Huffman blocks) plus dynamic-Huffman blocks, so externally
// produced zlib/gzip streams also load. Lives in util (not render) so the
// io layer can read compressed schedule files without a render dependency.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

namespace jedule::util {

/// Decodes a raw DEFLATE stream; throws jedule::ParseError on corruption.
/// Bytes past the final block are ignored.
std::vector<std::uint8_t> inflate_decompress(const std::uint8_t* data,
                                             std::size_t size);

/// Decodes a zlib (RFC 1950) stream and verifies its Adler-32 checksum.
std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t size);

/// Decodes a single-member gzip (RFC 1952) file: parses the header
/// (including the optional FEXTRA/FNAME/FCOMMENT/FHCRC fields), inflates
/// the DEFLATE body, and verifies the CRC-32 + ISIZE trailer.
std::vector<std::uint8_t> gzip_decompress(const std::uint8_t* data,
                                          std::size_t size);

/// Streaming variant of gzip_decompress for the pipelined ingest path:
/// decodes into the caller-provided buffer (which is never reallocated, so
/// concurrent readers may hold views into the already-published prefix)
/// and invokes `progress` with the decoded byte count every ~256 KiB.
/// Returns the decoded size, or nullopt when the output would exceed
/// `capacity` (the ISIZE trailer lied); header, CRC-32 and ISIZE failures
/// throw the same ParseError messages as gzip_decompress.
std::optional<std::size_t> gzip_decompress_bounded(
    const std::uint8_t* data, std::size_t size, std::uint8_t* out,
    std::size_t capacity,
    const std::function<void(std::size_t)>& progress = nullptr);

/// The ISIZE trailer field (uncompressed size mod 2^32) of a gzip stream,
/// or 0 when `size` cannot hold a gzip member. A *hint* only: the field is
/// attacker-controlled, so callers must bound allocations independently.
std::size_t gzip_isize_hint(const std::uint8_t* data, std::size_t size);

/// True when `head` starts with the gzip magic bytes 0x1f 0x8b.
bool looks_like_gzip(std::string_view head);

}  // namespace jedule::util
