#pragma once

// Small string utilities used across the jedule libraries. All functions are
// pure; none allocate more than the returned value requires.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jedule::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split `s` on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_ws(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strict full-string numeric parses; return nullopt on any trailing junk,
/// overflow, or empty input. Used by every file parser so malformed fields
/// are diagnosed rather than truncated.
std::optional<long long> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Format a double the way schedule labels want it: fixed, `digits` decimals,
/// trailing zeros kept ("0.310").
std::string format_fixed(double v, int digits);

/// One dependency reference from the CSV `deps` column / live-event deps
/// field: `<src_id>` or `<src_id>:<data>`.
struct DepToken {
  std::string_view id;
  double data = 0;
};

/// Splits a dependency reference at the LAST ':' — and only when the tail
/// parses as a number — so task ids containing ':' keep working. The view
/// aliases `token`.
DepToken parse_dep_token(std::string_view token);

/// Escape the five XML special characters for use in text or attributes.
std::string xml_escape(std::string_view s);

}  // namespace jedule::util
