#pragma once

// Deterministic random number generation for workload generators and tests.
//
// The engine is xoshiro256** (Blackman & Vigna): fast, tiny state, excellent
// statistical quality, and — unlike std::mt19937 distributions — the helper
// methods below are fully specified here, so generated workloads are
// bit-reproducible across standard libraries and platforms.

#include <cstdint>
#include <vector>

namespace jedule::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value (also makes Rng a UniformRandomBitGenerator).
  std::uint64_t operator()();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights[i].
  /// Requires a nonempty vector with nonnegative weights, not all zero.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace jedule::util
