#include "jedule/util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace jedule::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

DepToken parse_dep_token(std::string_view token) {
  const auto colon = token.rfind(':');
  if (colon != std::string_view::npos) {
    if (const auto v = parse_double(token.substr(colon + 1))) {
      return {token.substr(0, colon), *v};
    }
  }
  return {token, 0};
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace jedule::util
