#pragma once

// Minimal leveled logger. The CLI raises the level for --verbose; libraries
// log only at debug/info so batch pipelines stay quiet by default.

#include <sstream>
#include <string>

namespace jedule::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr as "[level] message" if `level` passes the
/// threshold. Thread-safe (single formatted write).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, out_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace jedule::util

#define JED_LOG(level) ::jedule::util::detail::LogStream(level)
#define JED_DEBUG() JED_LOG(::jedule::util::LogLevel::kDebug)
#define JED_INFO() JED_LOG(::jedule::util::LogLevel::kInfo)
#define JED_WARN() JED_LOG(::jedule::util::LogLevel::kWarn)
#define JED_ERROR() JED_LOG(::jedule::util::LogLevel::kError)
