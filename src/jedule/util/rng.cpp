#include "jedule/util/rng.hpp"

#include <cmath>

#include "jedule/util/error.hpp"

namespace jedule::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64; used only to expand the user seed into the 256-bit state.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  JED_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) {
  // 53 random mantissa bits -> uniform in [0,1).
  const double u =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

double Rng::exponential(double mean) {
  JED_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  JED_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    JED_ASSERT(w >= 0.0);
    total += w;
  }
  JED_ASSERT(total > 0.0);
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // numeric edge: r landed on the far boundary
}

}  // namespace jedule::util
