#include "jedule/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace jedule::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace jedule::util
