#include "jedule/util/cpu.hpp"

namespace jedule::util {

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
    f.sse2 = true;
#if defined(__GNUC__) || defined(__clang__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.pclmul = __builtin_cpu_supports("pclmul") != 0 &&
               __builtin_cpu_supports("sse4.1") != 0;
#endif
#elif defined(__aarch64__)
    f.neon = true;
#endif
    return f;
  }();
  return features;
}

}  // namespace jedule::util
