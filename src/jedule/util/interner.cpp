#include "jedule/util/interner.hpp"

#include <algorithm>
#include <cstring>

namespace jedule::util {

std::string_view Arena::store(std::string_view s) {
  if (s.empty()) return std::string_view();
  // Advance past chunks that cannot hold the string; allocate when none can.
  while (active_ < chunks_.size() &&
         chunks_[active_].capacity - chunks_[active_].used < s.size()) {
    ++active_;
  }
  if (active_ == chunks_.size()) {
    Chunk chunk;
    chunk.capacity = std::max(kMinChunk, s.size());
    chunk.data = std::make_unique<char[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_[active_];
  char* dst = chunk.data.get() + chunk.used;
  std::memcpy(dst, s.data(), s.size());
  chunk.used += s.size();
  bytes_ += s.size();
  return std::string_view(dst, s.size());
}

void Arena::clear() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
  bytes_ = 0;
}

std::string_view Interner::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return *it;
  const std::string_view stored = arena_.store(s);
  index_.insert(stored);
  return stored;
}

}  // namespace jedule::util
