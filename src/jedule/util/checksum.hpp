#pragma once

// Rolling checksums shared by the compressed-container codecs: Adler-32
// (zlib framing), CRC-32 (PNG chunks and gzip trailers), and their
// combine/parallel variants used to stitch per-chunk worker results into
// the serial answer bit-exactly.

#include <cstddef>
#include <cstdint>

namespace jedule::util {

/// RFC 1950 Adler-32 checksum.
std::uint32_t adler32(const std::uint8_t* data, std::size_t size);

/// Adler-32 of the concatenation of two buffers whose individual checksums
/// are `a1` and `a2` and whose second buffer is `len2` bytes long (the zlib
/// adler32_combine identity). Lets workers checksum chunks independently.
std::uint32_t adler32_combine(std::uint32_t a1, std::uint32_t a2,
                              std::size_t len2);

/// CRC-32 (ISO 3309, as used by PNG chunks and gzip), optionally chained
/// via `seed`. Dispatches to a carry-less-multiply (PCLMULQDQ) folding
/// kernel on CPUs that have one — snapshot loads checksum ~100 MB of
/// mapped columns, where the table walk would dominate the reopen time.
/// Set JEDULE_SIMD=scalar (or off/0) to force the portable path.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// The portable slice-by-8 CRC-32 the dispatcher falls back to. Exposed so
/// tests can pin the accelerated path against it bit-for-bit.
std::uint32_t crc32_portable(const std::uint8_t* data, std::size_t size,
                             std::uint32_t seed = 0);

/// CRC-32 of the concatenation of two buffers from their individual CRCs
/// (GF(2) matrix method); `len2` is the second buffer's length.
std::uint32_t crc32_combine(std::uint32_t c1, std::uint32_t c2,
                            std::size_t len2);

/// CRC-32 computed over `threads` ranges in parallel and stitched with
/// crc32_combine; byte-identical to the serial crc32 for any thread count.
std::uint32_t crc32_parallel(const std::uint8_t* data, std::size_t size,
                             int threads, std::uint32_t seed = 0);

}  // namespace jedule::util
