#pragma once

// Rolling checksums shared by the compressed-container codecs: Adler-32
// (zlib framing), CRC-32 (PNG chunks and gzip trailers), and their
// combine/parallel variants used to stitch per-chunk worker results into
// the serial answer bit-exactly.

#include <cstddef>
#include <cstdint>

namespace jedule::util {

/// RFC 1950 Adler-32 checksum.
std::uint32_t adler32(const std::uint8_t* data, std::size_t size);

/// Adler-32 of the concatenation of two buffers whose individual checksums
/// are `a1` and `a2` and whose second buffer is `len2` bytes long (the zlib
/// adler32_combine identity). Lets workers checksum chunks independently.
std::uint32_t adler32_combine(std::uint32_t a1, std::uint32_t a2,
                              std::size_t len2);

/// CRC-32 (ISO 3309, as used by PNG chunks and gzip), optionally chained
/// via `seed`.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

/// CRC-32 of the concatenation of two buffers from their individual CRCs
/// (GF(2) matrix method); `len2` is the second buffer's length.
std::uint32_t crc32_combine(std::uint32_t c1, std::uint32_t c2,
                            std::size_t len2);

/// CRC-32 computed over `threads` ranges in parallel and stitched with
/// crc32_combine; byte-identical to the serial crc32 for any thread count.
std::uint32_t crc32_parallel(const std::uint8_t* data, std::size_t size,
                             int threads, std::uint32_t seed = 0);

}  // namespace jedule::util
