#pragma once

// Arena-backed string storage for the zero-copy ingest path. `Arena` hands
// out stable copies of byte ranges from chunked storage (no per-string
// allocation); `Interner` deduplicates on top of an arena so repeated
// strings — XML element/attribute names, task types — share one copy and
// compare by pointer-sized views instead of heap strings.

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace jedule::util {

/// Append-only chunked byte arena. Stored views stay valid until clear()
/// (or destruction); storing never reallocates previously returned data.
class Arena {
 public:
  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view store(std::string_view s);

  /// Resets the write position, keeping the allocated chunks for reuse.
  /// All previously returned views are invalidated.
  void clear();

  /// Total bytes currently stored.
  std::size_t bytes() const { return bytes_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  static constexpr std::size_t kMinChunk = 4096;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk currently being filled
  std::size_t bytes_ = 0;
};

/// String pool: intern() stores each distinct string once (in an Arena) and
/// returns a view into that single stable copy.
class Interner {
 public:
  /// Returns the canonical view for `s`, storing it on first sight.
  std::string_view intern(std::string_view s);

  bool contains(std::string_view s) const { return index_.count(s) != 0; }
  std::size_t size() const { return index_.size(); }
  std::size_t bytes() const { return arena_.bytes(); }

 private:
  Arena arena_;
  std::unordered_set<std::string_view> index_;
};

}  // namespace jedule::util
