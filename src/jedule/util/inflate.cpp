#include "jedule/util/inflate.hpp"

#include <array>

#include "jedule/util/checksum.hpp"
#include "jedule/util/error.hpp"

namespace jedule::util {

namespace {

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t get_bits(int count) {
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) {
      v |= static_cast<std::uint32_t>(get_bit()) << i;
    }
    return v;
  }

  int get_bit() {
    if (byte_ >= size_) throw ParseError("deflate: truncated stream");
    const int bit = (data_[byte_] >> bit_) & 1;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return bit;
  }

  void align_to_byte() {
    if (bit_ != 0) {
      bit_ = 0;
      ++byte_;
    }
  }

  std::uint8_t get_byte() {
    JED_ASSERT(bit_ == 0);
    if (byte_ >= size_) throw ParseError("deflate: truncated stored block");
    return data_[byte_++];
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t byte_ = 0;
  int bit_ = 0;
};

/// Canonical Huffman decoder built from code lengths (RFC 1951 §3.2.2),
/// decoding with the standard first-code-per-length walk: O(code length)
/// per symbol.
///
/// The constructor validates the Kraft sum the way zlib's inflate_table
/// does: an oversubscribed set (more codes than the tree can hold) is
/// always rejected; an incomplete set (unused code space, which would make
/// some bit patterns undecodable) is rejected unless `allow_incomplete`
/// and at most one code is in use — the one shape valid streams produce
/// (a literal/length or distance alphabet with a single symbol, or a
/// distance alphabet with none).
class HuffmanTable {
 public:
  explicit HuffmanTable(const std::vector<int>& lengths,
                        bool allow_incomplete = false) {
    int used = 0;
    for (int len : lengths) {
      JED_ASSERT(len >= 0 && len <= kMaxBits);
      ++count_[static_cast<std::size_t>(len)];
      if (len > 0) ++used;
    }
    count_[0] = 0;
    int code = 0;
    int offset = 0;
    int left = 1;  // code space still unclaimed, in units of 2^-bits
    for (int bits = 1; bits <= kMaxBits; ++bits) {
      left <<= 1;
      left -= count_[static_cast<std::size_t>(bits)];
      if (left < 0) {
        throw ParseError("deflate: oversubscribed Huffman code lengths");
      }
      first_code_[static_cast<std::size_t>(bits)] = code;
      first_index_[static_cast<std::size_t>(bits)] = offset;
      code = (code + count_[static_cast<std::size_t>(bits)]) << 1;
      offset += count_[static_cast<std::size_t>(bits)];
    }
    if (left > 0 && !(allow_incomplete && used <= 1)) {
      throw ParseError("deflate: incomplete Huffman code lengths");
    }
    symbols_.resize(static_cast<std::size_t>(offset));
    std::array<int, kMaxBits + 1> next = first_index_;
    for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
      if (lengths[sym] == 0) continue;
      symbols_[static_cast<std::size_t>(
          next[static_cast<std::size_t>(lengths[sym])]++)] =
          static_cast<int>(sym);
    }
  }

  int decode(BitReader& br) const {
    int code = 0;
    for (int len = 1; len <= kMaxBits; ++len) {
      code = (code << 1) | br.get_bit();
      const int index = code - first_code_[static_cast<std::size_t>(len)];
      if (index >= 0 && index < count_[static_cast<std::size_t>(len)]) {
        return symbols_[static_cast<std::size_t>(
            first_index_[static_cast<std::size_t>(len)] + index)];
      }
    }
    throw ParseError("deflate: invalid Huffman code");
  }

 private:
  static constexpr int kMaxBits = 15;
  std::array<int, kMaxBits + 1> count_{};
  std::array<int, kMaxBits + 1> first_code_{};
  std::array<int, kMaxBits + 1> first_index_{};
  std::vector<int> symbols_;
};

struct LengthCode {
  int base;
  int extra;
};
constexpr LengthCode kLengthCodes[29] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},  {8, 0},  {9, 0},
    {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1}, {19, 2}, {23, 2},
    {27, 2},  {31, 2},  {35, 3},  {43, 3},  {51, 3}, {59, 3}, {67, 4},
    {83, 4},  {99, 4},  {115, 4}, {131, 5}, {163, 5}, {195, 5}, {227, 5},
    {258, 0}};
constexpr LengthCode kDistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},      {4, 0},      {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},     {25, 3},     {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},    {193, 6},    {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},   {1537, 9},   {2049, 10}, {3073, 10},
    {4097, 11}, {6145, 11}, {8193, 12},  {12289, 12}, {16385, 13}, {24577, 13}};

std::vector<int> fixed_literal_lengths() {
  std::vector<int> lengths(288);
  for (int i = 0; i <= 143; ++i) lengths[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) lengths[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) lengths[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) lengths[static_cast<std::size_t>(i)] = 8;
  return lengths;
}

// All 32 5-bit distance codes exist in the fixed tree (RFC 1951 §3.2.6);
// 30 and 31 never appear in valid data and are rejected after decode.
std::vector<int> fixed_distance_lengths() { return std::vector<int>(32, 5); }

// The decode loops are templated on a Sink policy so the same core serves
// both output disciplines: VecSink (a growing heap vector — the historical
// behavior, byte for byte) and BoundedSink (a caller-provided fixed buffer
// for the pipelined ingest path, where reallocation would dangle the
// concurrent readers' views into the already-published prefix).
struct VecSink {
  std::vector<std::uint8_t>& out;
  void push(std::uint8_t b) { out.push_back(b); }
  std::size_t size() const { return out.size(); }
  std::uint8_t back_byte(std::size_t distance) const {
    return out[out.size() - distance];
  }
};

/// Thrown (and caught internally) when the bounded buffer fills; distinct
/// from ParseError so callers can tell "ISIZE lied" from corruption.
struct BoundedOverflow {};

class BoundedSink {
 public:
  BoundedSink(std::uint8_t* buf, std::size_t cap,
              const std::function<void(std::size_t)>& progress)
      : buf_(buf), cap_(cap), progress_(progress) {}

  void push(std::uint8_t b) {
    if (len_ == cap_) throw BoundedOverflow{};
    buf_[len_++] = b;
    if (++since_publish_ >= kPublishEvery) publish();
  }
  std::size_t size() const { return len_; }
  std::uint8_t back_byte(std::size_t distance) const {
    return buf_[len_ - distance];
  }
  void publish() {
    since_publish_ = 0;
    if (progress_) progress_(len_);
  }

 private:
  static constexpr std::size_t kPublishEvery = 256 * 1024;
  std::uint8_t* buf_;
  std::size_t cap_;
  std::size_t len_ = 0;
  std::size_t since_publish_ = 0;
  const std::function<void(std::size_t)>& progress_;
};

template <typename Sink>
void inflate_block(BitReader& br, const HuffmanTable& literals,
                   const HuffmanTable& distances, Sink& out) {
  while (true) {
    const int sym = literals.decode(br);
    if (sym == 256) return;
    if (sym < 256) {
      out.push(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym > 285) throw ParseError("deflate: invalid length symbol");
    const auto& lc = kLengthCodes[sym - 257];
    const int length = lc.base + static_cast<int>(br.get_bits(lc.extra));
    const int dsym = distances.decode(br);
    if (dsym > 29) throw ParseError("deflate: invalid distance symbol");
    const auto& dc = kDistCodes[dsym];
    const int distance = dc.base + static_cast<int>(br.get_bits(dc.extra));
    if (distance <= 0 || static_cast<std::size_t>(distance) > out.size()) {
      throw ParseError("deflate: distance exceeds output");
    }
    for (int i = 0; i < length; ++i) {
      out.push(out.back_byte(static_cast<std::size_t>(distance)));
    }
  }
}

template <typename Sink>
void inflate_into(BitReader& br, Sink& out) {
  bool final_block = false;
  while (!final_block) {
    final_block = br.get_bit() != 0;
    const std::uint32_t type = br.get_bits(2);
    if (type == 0) {  // stored
      br.align_to_byte();
      const std::uint32_t len = br.get_byte() |
                                (static_cast<std::uint32_t>(br.get_byte()) << 8);
      const std::uint32_t nlen =
          br.get_byte() | (static_cast<std::uint32_t>(br.get_byte()) << 8);
      if ((len ^ nlen) != 0xFFFF) {
        throw ParseError("deflate: stored block LEN/NLEN mismatch");
      }
      for (std::uint32_t i = 0; i < len; ++i) out.push(br.get_byte());
    } else if (type == 1) {  // fixed Huffman
      static const HuffmanTable literals(fixed_literal_lengths());
      static const HuffmanTable distances(fixed_distance_lengths());
      inflate_block(br, literals, distances, out);
    } else if (type == 2) {  // dynamic Huffman
      const int hlit = static_cast<int>(br.get_bits(5)) + 257;
      const int hdist = static_cast<int>(br.get_bits(5)) + 1;
      const int hclen = static_cast<int>(br.get_bits(4)) + 4;
      if (hlit > 286) {
        throw ParseError("deflate: too many literal/length codes");
      }
      if (hdist > 30) throw ParseError("deflate: too many distance codes");
      static constexpr int kOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                         11, 4,  12, 3, 13, 2, 14, 1, 15};
      std::vector<int> code_lengths(19, 0);
      for (int i = 0; i < hclen; ++i) {
        code_lengths[static_cast<std::size_t>(kOrder[i])] =
            static_cast<int>(br.get_bits(3));
      }
      // The code-length table must be exactly complete: every bit pattern
      // the header can contain has to decode (zlib's CODES policy).
      const HuffmanTable code_table(code_lengths);
      const auto total = static_cast<std::size_t>(hlit + hdist);
      std::vector<int> lengths;
      lengths.reserve(total);
      while (lengths.size() < total) {
        const int sym = code_table.decode(br);
        if (sym < 16) {
          lengths.push_back(sym);
          continue;
        }
        int count = 0;
        int value = 0;
        if (sym == 16) {
          if (lengths.empty()) {
            throw ParseError("deflate: length repeat before any code");
          }
          count = 3 + static_cast<int>(br.get_bits(2));
          value = lengths.back();
        } else if (sym == 17) {
          count = 3 + static_cast<int>(br.get_bits(3));
        } else {
          count = 11 + static_cast<int>(br.get_bits(7));
        }
        if (lengths.size() + static_cast<std::size_t>(count) > total) {
          throw ParseError("deflate: length repeat past end of table");
        }
        for (int i = 0; i < count; ++i) lengths.push_back(value);
      }
      // Literal/length and distance sets may be incomplete only in the
      // degenerate one-code shape; anything else leaves undecodable bit
      // patterns and is a malformed header.
      const HuffmanTable literals(
          std::vector<int>(lengths.begin(), lengths.begin() + hlit),
          /*allow_incomplete=*/true);
      const HuffmanTable distances(
          std::vector<int>(lengths.begin() + hlit, lengths.end()),
          /*allow_incomplete=*/true);
      inflate_block(br, literals, distances, out);
    } else {
      throw ParseError("deflate: reserved block type");
    }
  }
}

// Gzip header walk shared by the eager and bounded decoders: returns the
// offset of the DEFLATE body. Identical errors in identical order.
std::size_t parse_gzip_header(const std::uint8_t* data, std::size_t size) {
  if (size < 18) throw ParseError("gzip: stream too short");
  if (data[0] != 0x1f || data[1] != 0x8b) throw ParseError("gzip: bad magic");
  if (data[2] != 8) throw ParseError("gzip: unsupported compression method");
  const std::uint8_t flg = data[3];
  if (flg & 0xE0) throw ParseError("gzip: reserved flag bits set");
  // 4-byte MTIME, XFL, OS.
  std::size_t pos = 10;
  const auto need = [&](std::size_t n) {
    if (size - pos < n || size - pos - n < 8) {
      throw ParseError("gzip: truncated header");
    }
  };
  if (flg & 0x04) {  // FEXTRA
    need(2);
    const std::size_t xlen = data[pos] |
                             (static_cast<std::size_t>(data[pos + 1]) << 8);
    pos += 2;
    need(xlen);
    pos += xlen;
  }
  if (flg & 0x08) {  // FNAME: NUL-terminated
    while (pos < size - 8 && data[pos] != 0) ++pos;
    need(1);
    ++pos;
  }
  if (flg & 0x10) {  // FCOMMENT: NUL-terminated
    while (pos < size - 8 && data[pos] != 0) ++pos;
    need(1);
    ++pos;
  }
  if (flg & 0x02) {  // FHCRC
    need(2);
    pos += 2;
  }
  return pos;
}

// Verifies the 8-byte CRC-32 + ISIZE gzip trailer against decoded output.
void check_gzip_trailer(const std::uint8_t* trailer, const std::uint8_t* out,
                        std::size_t out_size) {
  const std::uint32_t expected_crc =
      static_cast<std::uint32_t>(trailer[0]) |
      (static_cast<std::uint32_t>(trailer[1]) << 8) |
      (static_cast<std::uint32_t>(trailer[2]) << 16) |
      (static_cast<std::uint32_t>(trailer[3]) << 24);
  const std::uint32_t expected_size =
      static_cast<std::uint32_t>(trailer[4]) |
      (static_cast<std::uint32_t>(trailer[5]) << 8) |
      (static_cast<std::uint32_t>(trailer[6]) << 16) |
      (static_cast<std::uint32_t>(trailer[7]) << 24);
  if (crc32(out, out_size) != expected_crc) {
    throw ParseError("gzip: CRC-32 mismatch");
  }
  if (static_cast<std::uint32_t>(out_size & 0xFFFFFFFFu) != expected_size) {
    throw ParseError("gzip: uncompressed size mismatch");
  }
}

}  // namespace

std::vector<std::uint8_t> inflate_decompress(const std::uint8_t* data,
                                             std::size_t size) {
  BitReader br(data, size);
  std::vector<std::uint8_t> out;
  VecSink sink{out};
  inflate_into(br, sink);
  return out;
}

std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t size) {
  if (size < 6) throw ParseError("zlib: stream too short");
  if ((data[0] & 0x0F) != 8) throw ParseError("zlib: not a deflate stream");
  if (((static_cast<unsigned>(data[0]) << 8) | data[1]) % 31 != 0) {
    throw ParseError("zlib: header check failed");
  }
  if (data[1] & 0x20) throw ParseError("zlib: preset dictionaries unsupported");
  auto out = inflate_decompress(data + 2, size - 6);
  const std::uint32_t expected =
      (static_cast<std::uint32_t>(data[size - 4]) << 24) |
      (static_cast<std::uint32_t>(data[size - 3]) << 16) |
      (static_cast<std::uint32_t>(data[size - 2]) << 8) |
      static_cast<std::uint32_t>(data[size - 1]);
  if (adler32(out.data(), out.size()) != expected) {
    throw ParseError("zlib: Adler-32 mismatch");
  }
  return out;
}

std::vector<std::uint8_t> gzip_decompress(const std::uint8_t* data,
                                          std::size_t size) {
  const std::size_t pos = parse_gzip_header(data, size);
  auto out = inflate_decompress(data + pos, size - pos - 8);
  check_gzip_trailer(data + size - 8, out.data(), out.size());
  return out;
}

std::optional<std::size_t> gzip_decompress_bounded(
    const std::uint8_t* data, std::size_t size, std::uint8_t* out,
    std::size_t capacity, const std::function<void(std::size_t)>& progress) {
  const std::size_t pos = parse_gzip_header(data, size);
  BitReader br(data + pos, size - pos - 8);
  BoundedSink sink(out, capacity, progress);
  try {
    inflate_into(br, sink);
  } catch (const BoundedOverflow&) {
    return std::nullopt;
  }
  check_gzip_trailer(data + size - 8, out, sink.size());
  sink.publish();
  return sink.size();
}

std::size_t gzip_isize_hint(const std::uint8_t* data, std::size_t size) {
  if (size < 18) return 0;
  const std::uint8_t* trailer = data + size - 4;
  return static_cast<std::size_t>(trailer[0]) |
         (static_cast<std::size_t>(trailer[1]) << 8) |
         (static_cast<std::size_t>(trailer[2]) << 16) |
         (static_cast<std::size_t>(trailer[3]) << 24);
}

bool looks_like_gzip(std::string_view head) {
  return head.size() >= 2 && static_cast<unsigned char>(head[0]) == 0x1f &&
         static_cast<unsigned char>(head[1]) == 0x8b;
}

}  // namespace jedule::util
