#pragma once

// Allocation phase of the two-step moldable-task schedulers (paper
// Sec. III.B).
//
// CPA (Radulescu & van Gemund): start every task at one processor; while
// the critical-path length T_CP exceeds the average area T_A, grow the
// allocation of the critical-path task whose extra processor shortens it
// the most. Both T_CP and T_A are lower bounds on the makespan, so the loop
// balances them.
//
// MCPA (Bansal et al.): same loop, but a task may only grow while the total
// allocation of its precedence level stays within the machine size —
// preserving task parallelism within a level. This is exactly the behaviour
// that backfires in Fig. 4 when one level mixes cheap and expensive tasks.

#include <vector>

#include "jedule/dag/dag.hpp"

namespace jedule::sched {

struct AllocationOptions {
  int total_procs = 1;
  double host_speed = 1.0;

  /// MCPA's per-precedence-level cap (ignored by CPA).
  bool level_cap = false;

  /// Safety bound on allocation-growing iterations (0 = automatic).
  int max_iterations = 0;
};

struct AllocationResult {
  std::vector<int> procs;       // p(v) per node
  std::vector<double> times;    // T(v, p(v)) at host_speed
  double t_cp = 0;              // critical path with these times
  double t_a = 0;               // average area
  int iterations = 0;
};

/// Runs the CPA/MCPA allocation loop (level_cap selects MCPA).
AllocationResult allocate(const dag::Dag& dag,
                          const AllocationOptions& options);

/// Convenience wrappers.
AllocationResult cpa_allocate(const dag::Dag& dag, int total_procs,
                              double host_speed = 1.0);
AllocationResult mcpa_allocate(const dag::Dag& dag, int total_procs,
                               double host_speed = 1.0);

}  // namespace jedule::sched
