#include "jedule/sched/backfill.hpp"

#include <algorithm>

#include "jedule/sched/gaps.hpp"
#include "jedule/util/error.hpp"

namespace jedule::sched {

BackfillResult conservative_backfill(
    const std::vector<PlacedTask>& tasks, int total_hosts,
    const std::vector<std::vector<int>>& deps,
    const std::vector<std::vector<double>>& dep_delay) {
  JED_ASSERT(deps.size() == tasks.size());
  JED_ASSERT(dep_delay.empty() || dep_delay.size() == tasks.size());

  BackfillResult result;
  result.tasks = tasks;

  // Every task's current slot is reserved up front, so a move can never
  // collide with a task that has not been revisited yet — the property
  // that makes the pass conservative.
  // Per-host free-gap trees (earliest-fit, free query, occupy and release
  // are all O(log slots); the busy-interval scan they replace was linear).
  std::vector<GapTimeline> timeline(static_cast<std::size_t>(total_hosts));
  for (const auto& t : tasks) {
    for (int h : t.hosts) {
      JED_ASSERT(h >= 0 && h < total_hosts);
      timeline[static_cast<std::size_t>(h)].occupy(t.start, t.finish);
    }
  }

  // Revisit in nondecreasing current start time (schedule FIFO order).
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].start < tasks[b].start;
                   });

  for (std::size_t i : order) {
    PlacedTask& t = result.tasks[i];
    const double len = t.finish - t.start;

    double ready = 0;
    for (std::size_t d = 0; d < deps[i].size(); ++d) {
      const auto j = static_cast<std::size_t>(deps[i][d]);
      const double delay =
          dep_delay.empty() || dep_delay[i].empty() ? 0.0 : dep_delay[i][d];
      // result.tasks[j] holds j's final position if already revisited and
      // its original one otherwise; either way a position it will not
      // leave for a later one (moves only go earlier... and revisit order
      // is by start time, so dependencies come first).
      ready = std::max(ready, result.tasks[j].finish + delay);
    }

    // Take the task off the board while searching for its new slot.
    for (int h : t.hosts) {
      timeline[static_cast<std::size_t>(h)].release(t.start, t.finish);
    }

    auto fits = [&](const std::vector<int>& hosts, double at) {
      for (int h : hosts) {
        if (!timeline[static_cast<std::size_t>(h)].is_free(at, at + len)) {
          return false;
        }
      }
      return true;
    };

    double best_start = t.start;  // staying put is always feasible
    std::vector<int> best_hosts = t.hosts;

    // 1. Squeeze earlier on the original hosts: iterate the combined
    // earliest fit (raising the bound on one host can invalidate another).
    {
      double at = ready;
      for (int round = 0; round < 16; ++round) {
        double next = at;
        for (int h : t.hosts) {
          next = std::max(
              next, timeline[static_cast<std::size_t>(h)].earliest_fit(at, len));
        }
        if (next == at) break;
        at = next;
      }
      if (at < best_start && fits(t.hosts, at)) {
        best_start = at;
        best_hosts = t.hosts;
      }
    }

    // 2. Anywhere at the ready time: any |hosts| processors free there.
    if (best_start > ready) {
      std::vector<int> chosen;
      for (int h = 0;
           h < total_hosts && chosen.size() < t.hosts.size(); ++h) {
        if (timeline[static_cast<std::size_t>(h)].is_free(ready,
                                                          ready + len)) {
          chosen.push_back(h);
        }
      }
      if (chosen.size() == t.hosts.size()) {
        best_start = ready;
        best_hosts = std::move(chosen);
      }
    }

    if (best_start < t.start) ++result.moved;
    t.start = best_start;
    t.finish = best_start + len;
    t.hosts = best_hosts;
    for (int h : t.hosts) {
      timeline[static_cast<std::size_t>(h)].occupy(t.start, t.finish);
    }
  }
  return result;
}

}  // namespace jedule::sched
