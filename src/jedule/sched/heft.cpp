#include "jedule/sched/heft.hpp"
#include <cmath>

#include <algorithm>

#include "jedule/sched/gaps.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::sched {

namespace {

using dag::Dag;
using platform::Platform;

}  // namespace

HeftResult schedule_heft(const Dag& dag, const Platform& platform,
                         const HeftOptions& options) {
  const int n = dag.node_count();
  const int hosts = platform.total_hosts();
  JED_ASSERT(hosts >= 1);

  // Average execution cost per node and average communication cost factors.
  std::vector<double> avg_cost(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    double total = 0;
    for (int h = 0; h < hosts; ++h) {
      total += dag.node(v).work / platform.host_speed(h);
    }
    avg_cost[static_cast<std::size_t>(v)] = total / hosts;
  }
  const double avg_lat = platform.average_latency();
  const double avg_bw = platform.average_bandwidth();

  HeftResult r;
  r.upward_rank.assign(static_cast<std::size_t>(n), 0.0);
  const auto topo = dag.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int v = *it;
    double below = 0;
    for (int s : dag.successors(v)) {
      const double comm = avg_lat + dag.edge_data(v, s) / avg_bw;
      below = std::max(below,
                       comm + r.upward_rank[static_cast<std::size_t>(s)]);
    }
    r.upward_rank[static_cast<std::size_t>(v)] =
        avg_cost[static_cast<std::size_t>(v)] + below;
  }

  r.order.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) r.order[static_cast<std::size_t>(v)] = v;
  std::sort(r.order.begin(), r.order.end(), [&](int a, int b) {
    const double ra = r.upward_rank[static_cast<std::size_t>(a)];
    const double rb = r.upward_rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra > rb;
    return a < b;
  });

  r.host.assign(static_cast<std::size_t>(n), -1);
  r.start.assign(static_cast<std::size_t>(n), 0.0);
  r.finish.assign(static_cast<std::size_t>(n), 0.0);
  // Per-host free-gap trees: earliest-fit and insert are O(log slots),
  // where the linear slot scan they replace was O(slots).
  std::vector<GapTimeline> timeline(static_cast<std::size_t>(hosts));

  std::vector<double> eft_of(static_cast<std::size_t>(hosts));
  std::vector<bool> ready_bound(static_cast<std::size_t>(hosts));
  for (int v : r.order) {
    const auto vi = static_cast<std::size_t>(v);
    // HEFT's rank order is a topological order only when ranks strictly
    // decrease along edges, which averaged costs guarantee for comm >= 0;
    // predecessors are therefore already placed.
    double best_eft = 0;
    int best_host = -1;
    double best_est = 0;
    for (int h = 0; h < hosts; ++h) {
      double ready = 0;
      for (int p : dag.predecessors(v)) {
        const auto pi = static_cast<std::size_t>(p);
        JED_ASSERT(r.host[pi] >= 0);
        const double comm =
            platform.comm_time(r.host[pi], h, dag.edge_data(p, v));
        ready = std::max(ready, r.finish[pi] + comm);
      }
      const double len = dag.node(v).work / platform.host_speed(h);
      const auto& tl = timeline[static_cast<std::size_t>(h)];
      // Without insertion, tasks only ever append after the host's last
      // reservation, so the earliest start is just the running maximum.
      const double est = options.use_insertion
                             ? tl.earliest_fit(ready, len)
                             : std::max(ready, tl.last_end());
      const double eft = est + len;
      eft_of[static_cast<std::size_t>(h)] = eft;
      ready_bound[static_cast<std::size_t>(h)] = est == ready;
      if (best_host < 0 || eft < best_eft) {
        best_eft = eft;
        best_host = h;
        best_est = est;
      }
    }
    r.host[vi] = best_host;
    r.start[vi] = best_est;
    r.finish[vi] = best_eft;
    timeline[static_cast<std::size_t>(best_host)].occupy(best_est, best_eft);
    r.makespan = std::max(r.makespan, best_eft);

    // Fig. 8 anomaly check: the task crossed the backbone "for free".
    //
    // A placement is a *free ride* when (a) the chosen host's start is
    // bound by a data arrival that crossed the backbone, and (b) another
    // host ties the chosen EFT while its own binding arrival is local to
    // its cluster. Under a flat backbone latency such ties are exact —
    // "sending data to another cluster is as costly as executing the task
    // locally" — and the scheduler may wander off-cluster; any realistic
    // (higher) backbone latency makes the local candidate strictly better
    // and the count collapses (Fig. 9). Availability-bound ties and ties
    // between two unavoidably-remote candidates (predecessors split across
    // clusters) are deliberately excluded: no latency fixes those.
    if (!dag.predecessors(v).empty() &&
        ready_bound[static_cast<std::size_t>(best_host)]) {
      constexpr double kTieEps = 1e-9;
      // True iff every arrival achieving the ready bound on `h` crossed a
      // cluster boundary (nullopt-style -1 when no predecessor).
      auto binding_is_cross = [&](int h) {
        double ready = -1;
        bool cross = false;
        for (int p : dag.predecessors(v)) {
          const auto pi = static_cast<std::size_t>(p);
          const double t = r.finish[pi] +
                           platform.comm_time(r.host[pi], h,
                                              dag.edge_data(p, v));
          const bool edge_cross = platform.cluster_of(r.host[pi]) !=
                                  platform.cluster_of(h);
          if (t > ready + kTieEps) {
            ready = t;
            cross = edge_cross;
          } else if (t > ready - kTieEps) {
            cross = cross && edge_cross;  // a tying local arrival absolves
          }
        }
        return cross;
      };
      if (binding_is_cross(best_host)) {
        for (int h = 0; h < hosts; ++h) {
          if (h == best_host) continue;
          if (!ready_bound[static_cast<std::size_t>(h)]) continue;
          if (eft_of[static_cast<std::size_t>(h)] - best_eft >
              options.free_ride_margin) {
            continue;  // staying local costs real time; crossing is earned
          }
          if (!binding_is_cross(h)) {
            r.free_ride_nodes.push_back(v);
            break;
          }
        }
      }
    }
  }

  r.mapping.items.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    r.mapping.items[static_cast<std::size_t>(v)].hosts = {
        r.host[static_cast<std::size_t>(v)]};
    r.mapping.items[static_cast<std::size_t>(v)].priority =
        r.start[static_cast<std::size_t>(v)];
  }
  return r;
}

model::Schedule heft_to_schedule(const Dag& dag, const Platform& platform,
                                 const HeftResult& result,
                                 bool include_transfers) {
  // Reuse the sim -> schedule converter by presenting HEFT's own times as a
  // simulation result (they come from the same platform model).
  sim::SimResult sim;
  sim.start = result.start;
  sim.finish = result.finish;
  sim.makespan = result.makespan;
  if (include_transfers) {
    for (const auto& e : dag.edges()) {
      const int hs = result.host[static_cast<std::size_t>(e.src)];
      const int hd = result.host[static_cast<std::size_t>(e.dst)];
      const double delay = platform.comm_time(hs, hd, e.data);
      if (hs == hd || delay <= 0) continue;
      sim::Transfer tr;
      tr.src_node = e.src;
      tr.dst_node = e.dst;
      tr.src_host = hs;
      tr.dst_host = hd;
      tr.start = result.finish[static_cast<std::size_t>(e.src)];
      tr.end = tr.start + delay;
      tr.mb = e.data;
      sim.transfers.push_back(tr);
    }
  }
  sim::ToScheduleOptions o;
  o.include_transfers = include_transfers;
  model::Schedule s =
      sim::to_schedule(dag, platform, result.mapping, sim, o);
  s.set_meta("algorithm", "HEFT");
  s.set_meta("makespan", util::format_fixed(result.makespan, 1));
  s.set_meta("platform", platform.describe());
  return s;
}

}  // namespace jedule::sched
