#pragma once

// End-to-end moldable-task scheduling: allocation + mapping + simulated
// execution, for CPA, MCPA and the MCPA2 poly-algorithm (paper Sec. III.B).
//
// MCPA2 (Hunold, CCGrid 2010) selects between CPA and MCPA "depending on
// the DAG and the parallel platform"; following the paper's description, it
// evaluates both candidates and keeps the one with the smaller (simulated)
// makespan — which reproduces the Fig. 4 outcome where MCPA2 generates the
// same schedule as CPA.

#include <string>
#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/platform/platform.hpp"
#include "jedule/sched/allocation.hpp"
#include "jedule/sched/mapping.hpp"
#include "jedule/sim/dag_execution.hpp"

namespace jedule::sched {

enum class MTaskAlgorithm { kCpa, kMcpa, kMcpa2 };

const char* algorithm_name(MTaskAlgorithm algo);

struct MTaskResult {
  std::string algorithm;        // "CPA", "MCPA", or the MCPA2 pick
  AllocationResult allocation;
  MappingResult mapping;
  sim::SimResult sim;           // simulated execution on the platform
  double makespan = 0;          // simulated
};

/// Schedules `dag` on the (single, homogeneous) cluster of `platform`.
MTaskResult schedule_mtask(const dag::Dag& dag,
                           const platform::Platform& platform,
                           MTaskAlgorithm algorithm);

/// The two degenerate strategies the mixed-parallel literature compares
/// against (paper Sec. III.A: mixed-parallel algorithms "reduce the
/// completion time ... with regard to schedules that only exploit either
/// task- or data-parallelism").
enum class BaselineKind {
  kTaskParallel,  // every task on 1 processor, list scheduling
  kDataParallel,  // every task on ALL processors, serialized
};

MTaskResult schedule_baseline(const dag::Dag& dag,
                              const platform::Platform& platform,
                              BaselineKind kind);

/// Jedule view of the result (clusters from the platform; meta records the
/// algorithm and makespan).
model::Schedule mtask_to_schedule(const dag::Dag& dag,
                                  const platform::Platform& platform,
                                  const MTaskResult& result,
                                  bool include_transfers = false);

}  // namespace jedule::sched
