#include "jedule/sched/mapping.hpp"

#include <algorithm>
#include <set>

#include "jedule/util/error.hpp"

namespace jedule::sched {

std::vector<double> bottom_levels(const dag::Dag& dag,
                                  const std::vector<double>& times) {
  JED_ASSERT(times.size() == static_cast<std::size_t>(dag.node_count()));
  std::vector<double> bl(times.size(), 0.0);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int v = *it;
    double below = 0.0;
    for (int s : dag.successors(v)) {
      below = std::max(below, bl[static_cast<std::size_t>(s)]);
    }
    bl[static_cast<std::size_t>(v)] = times[static_cast<std::size_t>(v)] + below;
  }
  return bl;
}

MappingResult map_allocations(const dag::Dag& dag,
                              const platform::Platform& platform,
                              const std::vector<int>& host_pool,
                              const std::vector<int>& procs) {
  const int n = dag.node_count();
  JED_ASSERT(procs.size() == static_cast<std::size_t>(n));
  JED_ASSERT(!host_pool.empty());
  for (int v = 0; v < n; ++v) {
    if (procs[static_cast<std::size_t>(v)] < 1 ||
        procs[static_cast<std::size_t>(v)] >
            static_cast<int>(host_pool.size())) {
      throw ValidationError("allocation of node " + std::to_string(v) +
                            " exceeds the host pool");
    }
  }

  const double speed = platform.host_speed(host_pool[0]);
  std::vector<double> times(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    times[static_cast<std::size_t>(v)] =
        dag.node(v).exec_time(procs[static_cast<std::size_t>(v)], speed);
  }
  const auto priority = bottom_levels(dag, times);

  MappingResult result;
  result.mapping.items.resize(static_cast<std::size_t>(n));
  result.est_start.assign(static_cast<std::size_t>(n), 0.0);
  result.est_finish.assign(static_cast<std::size_t>(n), 0.0);

  // host_free[i]: when host_pool[i] becomes available.
  std::vector<double> host_free(host_pool.size(), 0.0);
  std::vector<int> missing(static_cast<std::size_t>(n), 0);
  std::vector<double> data_ready(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    missing[static_cast<std::size_t>(v)] =
        static_cast<int>(dag.predecessors(v).size());
  }

  auto by_priority = [&](int a, int b) {
    const double pa = priority[static_cast<std::size_t>(a)];
    const double pb = priority[static_cast<std::size_t>(b)];
    if (pa != pb) return pa > pb;  // larger bottom level first
    return a < b;
  };
  std::set<int, decltype(by_priority)> ready(by_priority);
  for (int v = 0; v < n; ++v) {
    if (missing[static_cast<std::size_t>(v)] == 0) ready.insert(v);
  }

  int dispatched = 0;
  while (!ready.empty()) {
    const int v = *ready.begin();
    ready.erase(ready.begin());
    const auto vi = static_cast<std::size_t>(v);
    const int need = procs[vi];

    // Pick the `need` hosts that free earliest (stable by pool order).
    std::vector<std::size_t> idx(host_pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return host_free[a] < host_free[b];
    });

    double start = data_ready[vi];
    std::vector<int> chosen;
    for (int k = 0; k < need; ++k) {
      chosen.push_back(host_pool[idx[static_cast<std::size_t>(k)]]);
      start = std::max(start, host_free[idx[static_cast<std::size_t>(k)]]);
    }
    const double finish = start + times[vi];
    for (int k = 0; k < need; ++k) {
      host_free[idx[static_cast<std::size_t>(k)]] = finish;
    }
    std::sort(chosen.begin(), chosen.end());

    result.mapping.items[vi].hosts = chosen;
    result.mapping.items[vi].priority = static_cast<double>(dispatched++);
    result.est_start[vi] = start;
    result.est_finish[vi] = finish;
    result.est_makespan = std::max(result.est_makespan, finish);

    for (int s : dag.successors(v)) {
      const auto si = static_cast<std::size_t>(s);
      // Classic CPA mapping estimates data-ready from predecessor finish
      // times only; the successor's hosts are unknown until dispatch, and
      // intra-cluster links are cheap relative to task times. The simulator
      // charges the real link costs afterwards.
      data_ready[si] = std::max(data_ready[si], finish);
      if (--missing[si] == 0) ready.insert(s);
    }
  }

  if (dispatched != n) {
    throw ValidationError("mapping dispatched " + std::to_string(dispatched) +
                          " of " + std::to_string(n) +
                          " nodes (cyclic graph?)");
  }
  return result;
}

}  // namespace jedule::sched
