#pragma once

// Conservative backfilling over a placed task list (paper Sec. IV.B: "a
// conservative backfilling step applied at the end of the scheduling
// process ... a check that no task is delayed by this step").
//
// Tasks are revisited in start order; each may move to an earlier time on
// any set of processors of the same size, provided its predecessors'
// (possibly already moved) finish times are respected and no other task is
// displaced. Moves only go earlier, so no task is ever delayed —
// conservative by construction.

#include <vector>

#include "jedule/dag/dag.hpp"

namespace jedule::sched {

/// One placed task in the flat representation the backfiller works on.
struct PlacedTask {
  int node = -1;                 // DAG node id, or -1 for non-DAG tasks
  std::vector<int> hosts;        // global host ids (size preserved by moves)
  double start = 0;
  double finish = 0;
  int app = -1;                  // owning application (multi-DAG)
};

struct BackfillResult {
  std::vector<PlacedTask> tasks;  // same order as the input
  int moved = 0;                  // how many tasks started earlier
};

/// Backfills `tasks` on `total_hosts` processors. `deps[i]` lists indices
/// (into `tasks`) that must finish before task i starts, with an optional
/// communication delay per dependency in `dep_delay` (same shape, may be
/// empty for all-zero). Keeps host-set sizes; prefers keeping the original
/// hosts when the earlier slot fits there.
BackfillResult conservative_backfill(
    const std::vector<PlacedTask>& tasks, int total_hosts,
    const std::vector<std::vector<int>>& deps,
    const std::vector<std::vector<double>>& dep_delay = {});

}  // namespace jedule::sched
