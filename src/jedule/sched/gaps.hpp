#pragma once

// Per-resource free-gap timeline for the scheduler hot paths.
//
// HEFT's insertion policy and conservative backfill both repeatedly ask one
// question per (task, host) pair: "from `ready` on, where is the earliest
// hole of length `len`?". The straightforward answer — a linear scan over
// the host's busy slots — is O(slots) per query and makes both schedulers
// quadratic per host. GapTimeline stores the *free gaps* instead, in a
// balanced tree (treap) augmented with the maximum gap length per subtree,
// so earliest-fit, occupy and release are all O(log slots).
//
// The semantics deliberately replicate the linear scans they replace, bit
// for bit, including the edge cases around zero-length intervals:
//
//  * Two busy intervals touching at t leave a zero-length *marker* gap
//    [t, t]: a later task cannot straddle t, but a zero-length task can
//    still sit exactly at t.
//  * A zero-length *busy* interval at t (a task of length 0) blocks any
//    interval that strictly contains t, and nothing else. These are kept
//    outside the tree as refcounted points and enforced at query time.
//  * Occupying the same positive interval twice is allowed (two tasks may
//    legitimately hold identical reservations while backfill shuffles
//    them); identical intervals are refcounted. Partially overlapping
//    occupations are a caller bug and assert.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace jedule::sched {

class GapTimeline {
 public:
  GapTimeline();

  /// Earliest t >= ready with [t, t + len) entirely free. `len` may be 0:
  /// the result is then the earliest point not strictly inside a busy
  /// interval. Always succeeds (the timeline ends in an infinite gap).
  double earliest_fit(double ready, double len) const;

  /// True iff [t0, t1) does not intersect any busy interval. A zero-length
  /// query is free unless the point lies strictly inside a busy interval.
  bool is_free(double t0, double t1) const;

  /// Marks [t0, t1) busy. The interval must be free, or exactly equal to
  /// an already-busy interval (refcounted).
  void occupy(double t0, double t1);

  /// Releases one previously occupied [t0, t1).
  void release(double t0, double t1);

  /// Largest end time ever occupied (-inf when nothing was). Only
  /// meaningful for append-only users (HEFT without insertion): release
  /// does not lower it.
  double last_end() const { return last_end_; }

 private:
  struct Node {
    double start = 0;
    double end = 0;
    double max_len = 0;  // max (end - start) within the subtree
    std::uint32_t prio = 0;
    int left = -1;
    int right = -1;
  };

  double gap_len(int n) const { return nodes_[n].end - nodes_[n].start; }
  void pull(int n);
  std::uint32_t next_prio();
  int new_node(double start, double end);
  void free_node(int n);

  int merge_trees(int a, int b);
  void split(int n, double key, int& a, int& b);  // a: start < key
  int insert_node(int n, int v);
  int erase_start(int n, double start);

  /// Node with the greatest start <= t, -1 if none.
  int find_pred(double t) const;
  /// Leftmost node with start >= t, -1 if none.
  int find_first_at_or_after(double t) const;
  /// Leftmost node with start > t and length >= len, -1 if none.
  int first_fit(int n, double t, double len) const;
  /// Leftmost node with length >= len, -1 if none.
  int first_fit_any(int n, double len) const;

  void insert_gap(double start, double end);
  void erase_gap(double start);

  std::vector<Node> nodes_;
  std::vector<int> free_list_;
  int root_ = -1;
  std::uint32_t prio_state_ = 0x9e3779b9u;
  double last_end_;

  // Zero-length busy intervals: point -> refcount.
  std::map<double, int> points_;
  // Positive busy intervals: [start, end) -> refcount. Only the gap carve /
  // restore for the first / last holder touches the tree.
  std::map<std::pair<double, double>, int> busy_count_;
};

}  // namespace jedule::sched
