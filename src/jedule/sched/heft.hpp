#pragma once

// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu 2002),
// the scheduler of the paper's Sec. V case study.
//
// Tasks are single-processor; each is placed, in decreasing upward-rank
// order, on the host minimizing its Earliest Finish Time, optionally using
// insertion into idle gaps. Upward rank uses execution costs averaged over
// all hosts and communication costs averaged over all host pairs.

#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/platform/platform.hpp"
#include "jedule/sim/dag_execution.hpp"

namespace jedule::sched {

struct HeftOptions {
  /// Insertion-based slot search (the variant of the original paper).
  bool use_insertion = true;

  /// Free-ride detection threshold (seconds): a backbone crossing counts
  /// as anomalous when it beats the best data-local host by less than
  /// this. Set it to the latency a realistic backbone would add — under
  /// the buggy flat description crossings win by microseconds and are
  /// flagged; under the realistic description any crossing that still
  /// happens gains more than the margin and is legitimate.
  double free_ride_margin = 5e-3;
};

struct HeftResult {
  std::vector<int> host;        // chosen host per node
  std::vector<double> start;    // HEFT's own (exact, model-based) times
  std::vector<double> finish;
  std::vector<double> upward_rank;
  std::vector<int> order;       // nodes in scheduling (rank) order
  double makespan = 0;
  sim::Mapping mapping;         // for cross-validation via the simulator

  /// The paper's Fig. 8 anomaly, detected at placement time: tasks placed
  /// on a cluster hosting none of their predecessors although a host in a
  /// predecessor's cluster achieved the *same* EFT — i.e. "sending data to
  /// another cluster is as costly as executing the task locally". A flat
  /// backbone latency produces such free rides; a realistic (higher)
  /// backbone latency makes remote placement strictly worse and the count
  /// drops to zero (Fig. 9).
  std::vector<int> free_ride_nodes;
};

HeftResult schedule_heft(const dag::Dag& dag,
                         const platform::Platform& platform,
                         const HeftOptions& options = {});

/// Jedule view using HEFT's own times (the schedule shown in Figs. 8-9),
/// including inter-host transfers as "transfer" tasks when requested.
model::Schedule heft_to_schedule(const dag::Dag& dag,
                                 const platform::Platform& platform,
                                 const HeftResult& result,
                                 bool include_transfers = false);

}  // namespace jedule::sched
