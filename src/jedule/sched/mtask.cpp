#include "jedule/sched/mtask.hpp"

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::sched {

const char* algorithm_name(MTaskAlgorithm algo) {
  switch (algo) {
    case MTaskAlgorithm::kCpa: return "CPA";
    case MTaskAlgorithm::kMcpa: return "MCPA";
    case MTaskAlgorithm::kMcpa2: return "MCPA2";
  }
  return "?";
}

namespace {

MTaskResult run_one(const dag::Dag& dag, const platform::Platform& platform,
                    bool level_cap, const char* name) {
  if (platform.clusters().size() != 1) {
    throw ArgumentError(
        "moldable-task scheduling targets a single homogeneous cluster");
  }
  const auto& cluster = platform.clusters()[0];

  MTaskResult r;
  r.algorithm = name;

  AllocationOptions ao;
  ao.total_procs = cluster.hosts;
  ao.host_speed = cluster.host_speed;
  ao.level_cap = level_cap;
  r.allocation = allocate(dag, ao);

  std::vector<int> pool;
  for (int h = 0; h < cluster.hosts; ++h) {
    pool.push_back(platform.first_host(cluster.id) + h);
  }
  r.mapping = map_allocations(dag, platform, pool, r.allocation.procs);
  r.sim = sim::simulate_dag(dag, platform, r.mapping.mapping);
  r.makespan = r.sim.makespan;
  return r;
}

}  // namespace

MTaskResult schedule_mtask(const dag::Dag& dag,
                           const platform::Platform& platform,
                           MTaskAlgorithm algorithm) {
  switch (algorithm) {
    case MTaskAlgorithm::kCpa:
      return run_one(dag, platform, /*level_cap=*/false, "CPA");
    case MTaskAlgorithm::kMcpa:
      return run_one(dag, platform, /*level_cap=*/true, "MCPA");
    case MTaskAlgorithm::kMcpa2: {
      MTaskResult cpa = run_one(dag, platform, false, "CPA");
      MTaskResult mcpa = run_one(dag, platform, true, "MCPA");
      MTaskResult& best = cpa.makespan <= mcpa.makespan ? cpa : mcpa;
      best.algorithm = std::string("MCPA2/") + best.algorithm;
      return best;
    }
  }
  throw ArgumentError("unknown m-task algorithm");
}

MTaskResult schedule_baseline(const dag::Dag& dag,
                              const platform::Platform& platform,
                              BaselineKind kind) {
  if (platform.clusters().size() != 1) {
    throw ArgumentError(
        "moldable-task scheduling targets a single homogeneous cluster");
  }
  const auto& cluster = platform.clusters()[0];

  MTaskResult r;
  r.algorithm =
      kind == BaselineKind::kTaskParallel ? "TASK-PARALLEL" : "DATA-PARALLEL";

  const int procs_per_task =
      kind == BaselineKind::kTaskParallel ? 1 : cluster.hosts;
  r.allocation.procs.assign(static_cast<std::size_t>(dag.node_count()),
                            procs_per_task);
  r.allocation.times.resize(static_cast<std::size_t>(dag.node_count()));
  for (int v = 0; v < dag.node_count(); ++v) {
    r.allocation.times[static_cast<std::size_t>(v)] =
        dag.node(v).exec_time(procs_per_task, cluster.host_speed);
  }
  r.allocation.t_cp = dag.critical_path_time(r.allocation.times);
  r.allocation.t_a = dag.average_area(r.allocation.times, r.allocation.procs,
                                      cluster.hosts);

  std::vector<int> pool;
  for (int h = 0; h < cluster.hosts; ++h) {
    pool.push_back(platform.first_host(cluster.id) + h);
  }
  r.mapping = map_allocations(dag, platform, pool, r.allocation.procs);
  r.sim = sim::simulate_dag(dag, platform, r.mapping.mapping);
  r.makespan = r.sim.makespan;
  return r;
}

model::Schedule mtask_to_schedule(const dag::Dag& dag,
                                  const platform::Platform& platform,
                                  const MTaskResult& result,
                                  bool include_transfers) {
  sim::ToScheduleOptions o;
  o.include_transfers = include_transfers;
  model::Schedule s = sim::to_schedule(dag, platform, result.mapping.mapping,
                                       result.sim, o);
  s.set_meta("algorithm", result.algorithm);
  s.set_meta("makespan", util::format_fixed(result.makespan, 3));
  s.set_meta("t_cp", util::format_fixed(result.allocation.t_cp, 3));
  s.set_meta("t_a", util::format_fixed(result.allocation.t_a, 3));
  return s;
}

}  // namespace jedule::sched
