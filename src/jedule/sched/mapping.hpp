#pragma once

// Mapping phase of the two-step schedulers: list scheduling of the
// allocated moldable tasks onto a (subset of a) homogeneous cluster.
// Ready tasks are served by decreasing bottom level; each takes the p(v)
// hosts that become free earliest.

#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/platform/platform.hpp"
#include "jedule/sim/dag_execution.hpp"

namespace jedule::sched {

struct MappingResult {
  sim::Mapping mapping;
  std::vector<double> est_start;   // scheduler's own estimates
  std::vector<double> est_finish;
  double est_makespan = 0;
};

/// Maps the DAG with per-node allocation `procs` onto the hosts listed in
/// `host_pool` (global ids, all in one homogeneous cluster). Data-ready
/// times include platform communication costs between representative hosts.
MappingResult map_allocations(const dag::Dag& dag,
                              const platform::Platform& platform,
                              const std::vector<int>& host_pool,
                              const std::vector<int>& procs);

/// Bottom level of each node: T(v) plus the longest chain of successor
/// times below it (the list-scheduling priority).
std::vector<double> bottom_levels(const dag::Dag& dag,
                                  const std::vector<double>& times);

}  // namespace jedule::sched
