#include "jedule/sched/allocation.hpp"

#include <algorithm>

#include "jedule/util/error.hpp"

namespace jedule::sched {

AllocationResult allocate(const dag::Dag& dag,
                          const AllocationOptions& options) {
  JED_ASSERT(options.total_procs >= 1);
  JED_ASSERT(options.host_speed > 0);
  const int n = dag.node_count();
  const int P = options.total_procs;

  AllocationResult r;
  r.procs.assign(static_cast<std::size_t>(n), 1);
  r.times.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    r.times[static_cast<std::size_t>(v)] =
        dag.node(v).exec_time(1, options.host_speed);
  }

  const auto levels = dag.precedence_levels();
  std::vector<int> level_alloc;
  for (int v = 0; v < n; ++v) {
    const auto level = static_cast<std::size_t>(levels[static_cast<std::size_t>(v)]);
    if (level >= level_alloc.size()) level_alloc.resize(level + 1, 0);
    ++level_alloc[level];
  }

  // Each iteration adds one processor to one task, so n*(P-1) bounds the
  // reachable states; the loop also exits as soon as no growth helps.
  const int max_iter = options.max_iterations > 0 ? options.max_iterations
                                                  : n * std::max(1, P - 1);

  r.t_cp = dag.critical_path_time(r.times);
  r.t_a = dag.average_area(r.times, r.procs, P);

  while (r.t_cp > r.t_a && r.iterations < max_iter) {
    const auto path = dag.critical_path(r.times);
    int best = -1;
    double best_gain = 0.0;
    for (int v : path) {
      const auto vi = static_cast<std::size_t>(v);
      const int p = r.procs[vi];
      if (p >= P) continue;
      if (options.level_cap) {
        const auto level = static_cast<std::size_t>(levels[vi]);
        if (level_alloc[level] >= P) continue;  // MCPA: level saturated
      }
      const double gain =
          r.times[vi] - dag.node(v).exec_time(p + 1, options.host_speed);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best < 0) break;  // no critical task can usefully grow

    const auto bi = static_cast<std::size_t>(best);
    ++r.procs[bi];
    ++level_alloc[static_cast<std::size_t>(levels[bi])];
    r.times[bi] = dag.node(best).exec_time(r.procs[bi], options.host_speed);
    ++r.iterations;
    r.t_cp = dag.critical_path_time(r.times);
    r.t_a = dag.average_area(r.times, r.procs, P);
  }
  return r;
}

AllocationResult cpa_allocate(const dag::Dag& dag, int total_procs,
                              double host_speed) {
  AllocationOptions o;
  o.total_procs = total_procs;
  o.host_speed = host_speed;
  o.level_cap = false;
  return allocate(dag, o);
}

AllocationResult mcpa_allocate(const dag::Dag& dag, int total_procs,
                               double host_speed) {
  AllocationOptions o;
  o.total_procs = total_procs;
  o.host_speed = host_speed;
  o.level_cap = true;
  return allocate(dag, o);
}

}  // namespace jedule::sched
