#include "jedule/sched/cra.hpp"

#include <algorithm>
#include <numeric>

#include "jedule/sched/backfill.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::sched {

const char* share_metric_name(ShareMetric metric) {
  switch (metric) {
    case ShareMetric::kWork: return "CRA_WORK";
    case ShareMetric::kWidth: return "CRA_WIDTH";
    case ShareMetric::kEqual: return "CRA_EQUAL";
  }
  return "?";
}

std::vector<double> cra_shares(const std::vector<dag::Dag>& apps,
                               ShareMetric metric, double mu) {
  if (apps.empty()) throw ArgumentError("no applications");
  if (mu < 0 || mu > 1) throw ArgumentError("mu outside [0, 1]");

  std::vector<double> weight(apps.size(), 1.0);
  if (metric == ShareMetric::kWork) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      // W(i) with the reference sequential allocation p(v) = 1, for which
      // T(v, 1) * 1 equals the node work.
      double w = 0;
      for (const auto& node : apps[i].nodes()) w += node.work;
      weight[i] = w;
    }
  } else if (metric == ShareMetric::kWidth) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
      weight[i] = apps[i].width();
    }
  }
  const double total = std::accumulate(weight.begin(), weight.end(), 0.0);
  JED_ASSERT(total > 0);

  std::vector<double> beta(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    beta[i] = mu / static_cast<double>(apps.size()) +
              (1.0 - mu) * weight[i] / total;
  }
  return beta;
}

namespace {

/// Integer processor counts from the fractional shares: every app gets at
/// least 1; leftovers go to the largest remainders.
std::vector<int> integral_shares(const std::vector<double>& beta, int P) {
  const auto n = beta.size();
  if (static_cast<int>(n) > P) {
    throw ArgumentError("more applications (" + std::to_string(n) +
                        ") than processors (" + std::to_string(P) + ")");
  }
  std::vector<int> procs(n, 1);
  std::vector<double> remainder(n);
  int used = static_cast<int>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = beta[i] * P;
    const int extra = std::max(0, static_cast<int>(exact) - 1);
    procs[i] += extra;
    used += extra;
    remainder[i] = exact - static_cast<double>(procs[i]);
  }
  // Too many (rounding of large shares after the +1 floor): trim from the
  // most over-served apps.
  while (used > P) {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (procs[i] > 1 &&
          (procs[worst] <= 1 || remainder[i] < remainder[worst])) {
        worst = i;
      }
    }
    JED_ASSERT(procs[worst] > 1);
    --procs[worst];
    remainder[worst] += 1.0;
    --used;
  }
  // Leftovers: largest remainder first.
  while (used < P) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (remainder[i] > remainder[best]) best = i;
    }
    ++procs[best];
    remainder[best] -= 1.0;
    ++used;
  }
  return procs;
}

}  // namespace

CraResult schedule_multi_dag(const std::vector<dag::Dag>& apps,
                             const platform::Platform& platform,
                             const CraOptions& options) {
  if (platform.clusters().size() != 1) {
    throw ArgumentError("CRA targets a single homogeneous cluster");
  }
  const auto& cluster = platform.clusters()[0];
  const int P = cluster.hosts;
  const double speed = cluster.host_speed;

  const auto beta = cra_shares(apps, options.metric, options.mu);
  const auto procs = integral_shares(beta, P);

  CraResult result;
  sim::add_platform_clusters(platform, result.schedule);
  result.schedule.set_meta("algorithm", share_metric_name(options.metric));
  result.schedule.set_meta("mu", util::format_fixed(options.mu, 2));
  result.schedule.set_meta("apps", std::to_string(apps.size()));

  const bool level_cap = options.inner == MTaskAlgorithm::kMcpa;

  // Flat task list for the optional backfill pass.
  std::vector<PlacedTask> placed;
  std::vector<std::vector<int>> deps;
  std::vector<std::vector<std::size_t>> index_of_node(apps.size());

  int next_host = platform.first_host(cluster.id);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    CraAppResult app;
    app.first_host = next_host;
    app.host_count = procs[i];
    next_host += procs[i];

    // Allocation constrained to the app's block size, then list mapping on
    // exactly that block.
    AllocationOptions ao;
    ao.total_procs = app.host_count;
    ao.host_speed = speed;
    ao.level_cap = level_cap;
    const auto alloc = allocate(apps[i], ao);

    std::vector<int> pool(static_cast<std::size_t>(app.host_count));
    std::iota(pool.begin(), pool.end(), app.first_host);
    const auto mapped = map_allocations(apps[i], platform, pool, alloc.procs);
    const auto sim = sim::simulate_dag(apps[i], platform, mapped.mapping);
    app.makespan = sim.makespan;

    // Dedicated baseline: the whole cluster to itself.
    const auto dedicated = schedule_mtask(
        apps[i], platform,
        level_cap ? MTaskAlgorithm::kMcpa : MTaskAlgorithm::kCpa);
    app.dedicated = dedicated.makespan;
    app.stretch = app.dedicated > 0 ? app.makespan / app.dedicated : 0.0;

    // Record tasks into the flat list (used for the merged schedule too).
    index_of_node[i].resize(static_cast<std::size_t>(apps[i].node_count()));
    for (int v = 0; v < apps[i].node_count(); ++v) {
      PlacedTask t;
      t.node = v;
      t.hosts = mapped.mapping.items[static_cast<std::size_t>(v)].hosts;
      t.start = sim.start[static_cast<std::size_t>(v)];
      t.finish = sim.finish[static_cast<std::size_t>(v)];
      t.app = static_cast<int>(i);
      index_of_node[i][static_cast<std::size_t>(v)] = placed.size();
      placed.push_back(std::move(t));
    }
    result.apps.push_back(app);
  }

  deps.resize(placed.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (const auto& e : apps[i].edges()) {
      deps[index_of_node[i][static_cast<std::size_t>(e.dst)]].push_back(
          static_cast<int>(index_of_node[i][static_cast<std::size_t>(e.src)]));
    }
  }

  auto idle_of = [&](const std::vector<PlacedTask>& tasks) {
    double makespan = 0;
    double busy = 0;
    for (const auto& t : tasks) {
      makespan = std::max(makespan, t.finish);
      busy += (t.finish - t.start) * static_cast<double>(t.hosts.size());
    }
    return makespan * P - busy;
  };
  result.idle_before_backfill = idle_of(placed);

  if (options.backfill) {
    auto backfilled = conservative_backfill(placed, P, deps);
    result.backfilled_tasks = backfilled.moved;
    placed = std::move(backfilled.tasks);
  }
  result.idle_after_backfill = idle_of(placed);

  // Merged jedule view: one task type per application so the colormap gives
  // "each having its own color" (Fig. 5).
  for (const auto& t : placed) {
    const auto& node = apps[static_cast<std::size_t>(t.app)].node(t.node);
    model::Task task("a" + std::to_string(t.app) + "." + node.name,
                     "app" + std::to_string(t.app), t.start, t.finish);
    std::vector<int> hosts = t.hosts;
    std::sort(hosts.begin(), hosts.end());
    model::Configuration cfg;
    cfg.cluster_id = cluster.id;
    const int base = platform.first_host(cluster.id);
    for (int h : hosts) {
      const int local = h - base;
      if (!cfg.hosts.empty() &&
          cfg.hosts.back().start + cfg.hosts.back().nb == local) {
        ++cfg.hosts.back().nb;
      } else {
        cfg.hosts.push_back(model::HostRange{local, 1});
      }
    }
    task.add_configuration(std::move(cfg));
    task.set_property("app", std::to_string(t.app));
    result.schedule.add_task(std::move(task));
    result.overall_makespan = std::max(result.overall_makespan, t.finish);
  }
  for (const auto& app : result.apps) {
    result.max_stretch = std::max(result.max_stretch, app.stretch);
  }
  result.schedule.set_meta(
      "makespan", util::format_fixed(result.overall_makespan, 3));
  result.schedule.validate();
  return result;
}

}  // namespace jedule::sched
