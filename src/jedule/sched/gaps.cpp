#include "jedule/sched/gaps.hpp"

#include <algorithm>
#include <limits>

#include "jedule/util/error.hpp"

namespace jedule::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

GapTimeline::GapTimeline() : last_end_(-kInf) {
  root_ = new_node(-kInf, kInf);
}

void GapTimeline::pull(int n) {
  double m = gap_len(n);
  if (nodes_[n].left >= 0) m = std::max(m, nodes_[nodes_[n].left].max_len);
  if (nodes_[n].right >= 0) m = std::max(m, nodes_[nodes_[n].right].max_len);
  nodes_[n].max_len = m;
}

std::uint32_t GapTimeline::next_prio() {
  // splitmix32: deterministic, well-mixed treap priorities.
  std::uint32_t z = (prio_state_ += 0x9e3779b9u);
  z = (z ^ (z >> 16)) * 0x21f0aaadu;
  z = (z ^ (z >> 15)) * 0x735a2d97u;
  return z ^ (z >> 15);
}

int GapTimeline::new_node(double start, double end) {
  int n;
  if (!free_list_.empty()) {
    n = free_list_.back();
    free_list_.pop_back();
    nodes_[n] = Node();
  } else {
    n = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[n].start = start;
  nodes_[n].end = end;
  nodes_[n].max_len = end - start;
  nodes_[n].prio = next_prio();
  return n;
}

void GapTimeline::free_node(int n) { free_list_.push_back(n); }

int GapTimeline::merge_trees(int a, int b) {
  if (a < 0) return b;
  if (b < 0) return a;
  if (nodes_[a].prio > nodes_[b].prio) {
    nodes_[a].right = merge_trees(nodes_[a].right, b);
    pull(a);
    return a;
  }
  nodes_[b].left = merge_trees(a, nodes_[b].left);
  pull(b);
  return b;
}

void GapTimeline::split(int n, double key, int& a, int& b) {
  if (n < 0) {
    a = b = -1;
    return;
  }
  if (nodes_[n].start < key) {
    split(nodes_[n].right, key, nodes_[n].right, b);
    a = n;
    pull(n);
  } else {
    split(nodes_[n].left, key, a, nodes_[n].left);
    b = n;
    pull(n);
  }
}

int GapTimeline::insert_node(int n, int v) {
  if (n < 0) return v;
  if (nodes_[v].prio > nodes_[n].prio) {
    split(n, nodes_[v].start, nodes_[v].left, nodes_[v].right);
    pull(v);
    return v;
  }
  if (nodes_[v].start < nodes_[n].start) {
    nodes_[n].left = insert_node(nodes_[n].left, v);
  } else {
    nodes_[n].right = insert_node(nodes_[n].right, v);
  }
  pull(n);
  return n;
}

int GapTimeline::erase_start(int n, double start) {
  JED_ASSERT(n >= 0);
  if (start < nodes_[n].start) {
    nodes_[n].left = erase_start(nodes_[n].left, start);
  } else if (start > nodes_[n].start) {
    nodes_[n].right = erase_start(nodes_[n].right, start);
  } else {
    const int res = merge_trees(nodes_[n].left, nodes_[n].right);
    free_node(n);
    return res;
  }
  pull(n);
  return n;
}

int GapTimeline::find_pred(double t) const {
  int n = root_;
  int best = -1;
  while (n >= 0) {
    if (nodes_[n].start <= t) {
      best = n;
      n = nodes_[n].right;
    } else {
      n = nodes_[n].left;
    }
  }
  return best;
}

int GapTimeline::find_first_at_or_after(double t) const {
  int n = root_;
  int best = -1;
  while (n >= 0) {
    if (nodes_[n].start >= t) {
      best = n;
      n = nodes_[n].left;
    } else {
      n = nodes_[n].right;
    }
  }
  return best;
}

int GapTimeline::first_fit(int n, double t, double len) const {
  if (n < 0 || nodes_[n].max_len < len) return -1;
  if (nodes_[n].start <= t) {
    // Everything in the left subtree starts even earlier; skip it.
    return first_fit(nodes_[n].right, t, len);
  }
  const int l = first_fit(nodes_[n].left, t, len);
  if (l >= 0) return l;
  if (gap_len(n) >= len) return n;
  return first_fit_any(nodes_[n].right, len);
}

int GapTimeline::first_fit_any(int n, double len) const {
  if (n < 0 || nodes_[n].max_len < len) return -1;
  const int l = first_fit_any(nodes_[n].left, len);
  if (l >= 0) return l;
  if (gap_len(n) >= len) return n;
  return first_fit_any(nodes_[n].right, len);
}

void GapTimeline::insert_gap(double start, double end) {
  root_ = insert_node(root_, new_node(start, end));
}

void GapTimeline::erase_gap(double start) {
  root_ = erase_start(root_, start);
}

double GapTimeline::earliest_fit(double ready, double len) const {
  JED_ASSERT(len >= 0);
  double t = ready;
  for (;;) {
    double pos;
    const int g = find_pred(t);
    if (g >= 0 && nodes_[g].end - t >= len) {
      // `t` lies inside (or at the edge of) a gap with enough room left.
      pos = t;
    } else {
      const int f = first_fit(root_, t, len);
      JED_ASSERT(f >= 0);  // the trailing [*, +inf) gap fits everything
      pos = nodes_[f].start;
    }
    // A zero-length busy point strictly inside [pos, pos + len) blocks the
    // fit; restart just past it (matching the linear scan, which bumps the
    // candidate to each blocking interval's end).
    const auto it = points_.upper_bound(pos);
    if (it == points_.end() || !(it->first < pos + len)) return pos;
    t = it->first;
  }
}

bool GapTimeline::is_free(double t0, double t1) const {
  JED_ASSERT(t1 >= t0);
  const int g = find_pred(t0);
  if (g < 0 || nodes_[g].end < t1) return false;
  const auto it = points_.upper_bound(t0);
  return it == points_.end() || !(it->first < t1);
}

void GapTimeline::occupy(double t0, double t1) {
  JED_ASSERT(t1 >= t0);
  last_end_ = std::max(last_end_, t1);
  if (t0 == t1) {
    ++points_[t0];
    return;
  }
  if (++busy_count_[{t0, t1}] > 1) return;  // identical interval re-held
  const int g = find_pred(t0);
  JED_ASSERT(g >= 0 && nodes_[g].start <= t0 && nodes_[g].end >= t1);
  const double gs = nodes_[g].start;
  const double ge = nodes_[g].end;
  erase_gap(gs);
  // Both remainders are kept even when empty: a zero-length gap is the
  // marker recording that two busy intervals touch there.
  insert_gap(gs, t0);
  insert_gap(t1, ge);
}

void GapTimeline::release(double t0, double t1) {
  JED_ASSERT(t1 >= t0);
  if (t0 == t1) {
    const auto it = points_.find(t0);
    JED_ASSERT(it != points_.end());
    if (--it->second == 0) points_.erase(it);
    return;
  }
  const auto it = busy_count_.find({t0, t1});
  JED_ASSERT(it != busy_count_.end());
  if (--it->second > 0) return;
  busy_count_.erase(it);
  // While [t0, t1) was busy there is always a gap ending exactly at t0 and
  // one starting exactly at t1 (occupy never drops the remainders); merge
  // them, absorbing zero-length markers.
  const int l = find_pred(t0);
  JED_ASSERT(l >= 0 && nodes_[l].end == t0);
  const int r = find_first_at_or_after(t1);
  JED_ASSERT(r >= 0 && nodes_[r].start == t1);
  const double ls = nodes_[l].start;
  const double re = nodes_[r].end;
  erase_gap(ls);
  erase_gap(t1);
  insert_gap(ls, re);
}

}  // namespace jedule::sched
