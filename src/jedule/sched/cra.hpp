#pragma once

// Constrained Resource Allocation for concurrent mixed-parallel
// applications (paper Sec. IV; N'takpe & Suter, PDSEC 2009).
//
// The cluster's P processors are split among the N applications: app i gets
// a share
//     beta_i = mu / |A|  +  (1 - mu) * w(i) / sum_j w(j)
// where w(i) is the share metric — the application's total work (CRA_WORK),
// its width (CRA_WIDTH), or 1 (equal split) — and mu in [0,1] blends toward
// an even division. Each application is then scheduled by CPA (or MCPA)
// strictly inside its own processor block, which is the property Fig. 5
// checks visually: "the tasks of each application are mapped on distinct
// processors".

#include <string>
#include <vector>

#include "jedule/dag/dag.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/platform/platform.hpp"
#include "jedule/sched/mtask.hpp"

namespace jedule::sched {

enum class ShareMetric { kWork, kWidth, kEqual };

const char* share_metric_name(ShareMetric metric);

struct CraOptions {
  ShareMetric metric = ShareMetric::kWork;
  double mu = 0.5;
  MTaskAlgorithm inner = MTaskAlgorithm::kCpa;

  /// Apply the conservative backfilling pass of Sec. IV.B after the
  /// constrained schedules are merged.
  bool backfill = false;
};

struct CraAppResult {
  int first_host = 0;      // the app's processor block [first, first+count)
  int host_count = 0;
  double makespan = 0;     // within the shared run
  double dedicated = 0;    // same algorithm, whole cluster to itself
  double stretch = 0;      // makespan / dedicated (lower is better)
};

struct CraResult {
  model::Schedule schedule;           // merged view; task type = "app<i>"
  std::vector<CraAppResult> apps;
  double overall_makespan = 0;
  double max_stretch = 0;
  double idle_before_backfill = 0;    // idle area within the makespan
  double idle_after_backfill = 0;     // == before when backfill is off
  int backfilled_tasks = 0;
};

/// Schedules `apps` concurrently on the single homogeneous cluster of
/// `platform`. Throws ArgumentError when there are more applications than
/// processors (every app needs at least one).
CraResult schedule_multi_dag(const std::vector<dag::Dag>& apps,
                             const platform::Platform& platform,
                             const CraOptions& options = {});

/// The share fractions beta_i (sum to 1) for the given metric and mu.
std::vector<double> cra_shares(const std::vector<dag::Dag>& apps,
                               ShareMetric metric, double mu);

}  // namespace jedule::sched
