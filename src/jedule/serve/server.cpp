#include "jedule/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "jedule/engine/events.hpp"
#include "jedule/engine/options.hpp"
#include "jedule/io/ingest.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::serve {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HttpResponse text_response(int status, std::string message) {
  if (!message.empty() && message.back() != '\n') message += '\n';
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(message);
  return resp;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.media_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

std::string entry_json(const engine::ScheduleEntry& entry) {
  std::string out = "{\"id\":\"" + entry.id + "\"";
  out += ",\"source\":\"" + json_escape(entry.source) + "\"";
  out += ",\"tasks\":" + std::to_string(entry.task_count());
  out += ",\"clusters\":" + std::to_string(entry.cluster_count());
  out += ",\"time\":{\"begin\":" + std::to_string(entry.full_range.begin) +
         ",\"end\":" + std::to_string(entry.full_range.end) + "}}";
  return out;
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

// Strong ETag for a render artifact: the entry's content hash, the digest
// of every render-affecting option, and the request shape (format, wire
// encoding, tile coordinates) — anything that changes the bytes changes
// the tag.
std::string artifact_etag(const engine::ScheduleEntry& entry,
                          std::uint64_t options_digest,
                          const std::string& shape) {
  return "\"" + hex16(entry.content_hash) + "-" + hex16(options_digest) +
         "-" + shape + "\"";
}

// RFC 9110 If-None-Match: a list of entity tags, or "*". Strong vs weak
// comparison collapses here because we only ever mint strong tags; a
// client echoing the tag back as W/"..." still matches on the opaque part.
bool if_none_match(const HttpRequest& request, const std::string& etag) {
  const auto it = request.headers.find("if-none-match");
  if (it == request.headers.end()) return false;
  for (const auto& part : util::split(it->second, ',')) {
    std::string_view tag = util::trim(part);
    if (tag == "*") return true;
    if (tag.rfind("W/", 0) == 0) tag = tag.substr(2);
    if (tag == etag) return true;
  }
  return false;
}

HttpResponse not_modified(const std::string& etag) {
  HttpResponse resp;
  resp.status = 304;
  resp.media_type.clear();
  resp.headers["ETag"] = etag;
  return resp;
}

// RFC 9110 Accept-Encoding: does the client accept gzip? A listed
// "gzip;q=0" is an explicit refusal; "*" matches gzip unless gzip itself
// appears with another q-value.
bool accepts_gzip(const HttpRequest& request) {
  const auto it = request.headers.find("accept-encoding");
  if (it == request.headers.end()) return false;
  bool wildcard_ok = false;
  for (const auto& part : util::split(it->second, ',')) {
    const std::string token = util::to_lower(util::trim(part));
    const std::size_t semi = token.find(';');
    const std::string coding{util::trim(token.substr(0, semi))};
    bool q_zero = false;
    if (semi != std::string::npos) {
      const std::size_t q = token.find("q=", semi);
      if (q != std::string::npos) {
        const std::string qv{util::trim(token.substr(q + 2))};
        q_zero = !qv.empty() &&
                 qv.find_first_not_of("0.") == std::string::npos;
      }
    }
    if (coding == "gzip") return !q_zero;
    if (coding == "*" && !q_zero) wildcard_ok = true;
  }
  return wildcard_ok;
}

long long parse_integer(const std::string& value, const char* name) {
  std::size_t digits = value.size();
  if (!value.empty() && (value[0] == '-' || value[0] == '+')) --digits;
  if (digits == 0 || digits > 18 ||
      value.find_first_not_of("0123456789", value[0] == '-' || value[0] == '+'
                                                ? 1
                                                : 0) != std::string::npos) {
    throw ArgumentError(std::string("tile ") + name +
                        " must be an integer (got '" + value + "')");
  }
  return std::stoll(value);
}

}  // namespace

Server::Server(Options opt)
    : opt_(std::move(opt)), store_(opt_.store), renders_(opt_.render) {}

Server::~Server() { stop(); }

void Server::start() {
  JED_ASSERT(listen_fd_ < 0);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("socket failed: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ArgumentError("serve host must be an IPv4 address (got '" +
                        opt_.host + "')");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("cannot listen on " + opt_.host + ":" +
                  std::to_string(opt_.port) + ": " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<util::WorkerPool>(opt_.threads,
                                             opt_.queue_capacity);
  stopping_.store(false);
  listener_ = std::thread([this] { listen_loop(); });
}

void Server::stop() {
  stopping_.store(true);
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (pool_) {
    pool_->drain();
    pool_->stop();
  }
}

void Server::listen_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stopping_) or EINTR

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    timeval deadline{};
    deadline.tv_sec = opt_.request_timeout_ms / 1000;
    deadline.tv_usec = (opt_.request_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &deadline, sizeof(deadline));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &deadline, sizeof(deadline));

    const bool admitted =
        pool_->try_submit([this, fd] { serve_connection(fd); });
    if (admitted) {
      accepted_.fetch_add(1);
      continue;
    }
    // Admission queue full: shed the connection right here on the
    // listener thread instead of queueing unboundedly.
    rejected_429_.fetch_add(1);
    HttpResponse resp = text_response(
        429, "server busy: admission queue is full, retry shortly");
    resp.headers["Retry-After"] = "1";
    write_all(fd, serialize_response(resp));
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  HttpResponse resp;
  bool have_response = true;
  try {
    const HttpRequest req = read_request(fd, opt_.max_body);
    resp = handle(req);
  } catch (const HttpError& e) {
    resp = text_response(e.status, e.message);
  } catch (const IoError&) {
    // Peer hung up before sending a full request: nothing to answer.
    have_response = false;
  } catch (const std::exception& e) {
    errors_.fetch_add(1);
    resp = text_response(500, std::string("internal error: ") + e.what());
  }
  if (have_response) {
    if (write_all(fd, serialize_response(resp))) {
      served_.fetch_add(1);
    } else {
      errors_.fetch_add(1);
    }
  }
  ::close(fd);
}

HttpResponse Server::handle(const HttpRequest& request) {
  try {
    const std::string& path = request.path;
    if (path == "/healthz") {
      if (request.method != "GET") return text_response(405, "use GET");
      return text_response(200, "ok");
    }
    if (path == "/stats") {
      if (request.method != "GET") return text_response(405, "use GET");
      return json_response(200, stats_json());
    }
    if (path == "/schedules") return handle_schedules(request);
    constexpr std::string_view kPrefix = "/schedules/";
    if (path.rfind(kPrefix, 0) == 0) {
      std::string rest = path.substr(kPrefix.size());
      const std::size_t slash = rest.find('/');
      std::string id = rest.substr(0, slash);
      std::string tail =
          slash == std::string::npos ? std::string() : rest.substr(slash + 1);
      if (id.empty()) return text_response(404, "missing schedule id");
      return handle_schedule_resource(request, id, tail);
    }
    return text_response(404, "no such resource: " + path);
  } catch (const HttpError& e) {
    return text_response(e.status, e.message);
  } catch (const ArgumentError& e) {
    return text_response(400, e.what());
  } catch (const ValidationError& e) {
    return text_response(400, e.what());
  } catch (const ParseError& e) {
    // Unrecognized or malformed trace content; the body mirrors the CLI
    // error, including the supported-format list for format mismatches.
    return text_response(415, e.what());
  } catch (const std::exception& e) {
    errors_.fetch_add(1);
    return text_response(500, std::string("internal error: ") + e.what());
  }
}

HttpResponse Server::handle_schedules(const HttpRequest& request) {
  if (request.method == "GET") {
    std::string body = "[";
    bool first = true;
    for (const auto& entry : store_.list()) {
      if (!first) body += ',';
      first = false;
      body += entry_json(*entry);
    }
    body += "]\n";
    return json_response(200, body);
  }
  if (request.method == "POST") {
    const std::string name = request.query_value("name").value_or("upload");
    const std::string format = request.query_value("format").value_or("");
    engine::EntryPtr entry = engine::parse_entry(request.body, name, format);
    const auto put = store_.put(std::move(entry));
    std::string body = "{\"id\":\"" + put.entry->id + "\"";
    body += ",\"tasks\":" + std::to_string(put.entry->task_count());
    body += ",\"deduplicated\":";
    body += put.deduplicated ? "true" : "false";
    body += "}\n";
    HttpResponse resp = json_response(put.deduplicated ? 200 : 201,
                                      std::move(body));
    resp.headers["Location"] = "/schedules/" + put.entry->id;
    return resp;
  }
  return text_response(405, "use GET or POST on /schedules");
}

HttpResponse Server::handle_schedule_resource(const HttpRequest& request,
                                              const std::string& id,
                                              const std::string& tail) {
  if (tail.empty()) {
    if (request.method == "DELETE") {
      if (!store_.erase(id)) {
        return text_response(404, "no schedule with id " + id);
      }
      HttpResponse resp;
      resp.status = 204;
      resp.media_type.clear();
      return resp;
    }
    if (request.method != "GET") {
      return text_response(405, "use GET or DELETE on /schedules/{id}");
    }
    const engine::EntryPtr entry = store_.find(id);
    if (!entry) return text_response(404, "no schedule with id " + id);
    return json_response(200, entry_json(*entry) + "\n");
  }

  if (tail == "events") {
    if (request.method != "POST") {
      return text_response(405, "use POST on /schedules/{id}/events");
    }
    const engine::EntryPtr base = store_.find(id);
    if (!base) return text_response(404, "no schedule with id " + id);
    const auto events = engine::parse_event_lines(request.body);
    if (events.empty()) {
      return text_response(400, "no events in request body");
    }
    // Entries are immutable: the append produces a *new* entry whose id
    // is the new content hash. The base entry stays addressable (and
    // LRU-evictable) so in-flight renders of the old state stay valid.
    const auto put = store_.put(engine::append_entry(base, events));
    std::string body = "{\"id\":\"" + put.entry->id + "\"";
    body += ",\"tasks\":" + std::to_string(put.entry->task_count());
    body += ",\"appended\":" + std::to_string(events.size());
    body += ",\"deduplicated\":";
    body += put.deduplicated ? "true" : "false";
    body += "}\n";
    HttpResponse resp =
        json_response(put.deduplicated ? 200 : 201, std::move(body));
    resp.headers["Location"] = "/schedules/" + put.entry->id;
    return resp;
  }

  if (request.method != "GET") return text_response(405, "use GET");
  const engine::EntryPtr entry = store_.find(id);
  if (!entry) return text_response(404, "no schedule with id " + id);

  auto query_lookup = [&request](const std::string& key) {
    return request.query_value(key);
  };

  if (tail.rfind("render.", 0) == 0) {
    const std::string format = tail.substr(7);
    if (render::ExporterRegistry::instance().find(format) == nullptr) {
      return text_response(
          415, "no exporter registered for format '" + format +
                   "' (supported formats: " +
                   util::join(
                       render::ExporterRegistry::instance().exporter_names(),
                       ", ") +
                   ")");
    }
    // Query parameters go through the same parser as CLI flags; "cmap" is
    // rejected there (no server-side file reads from request input).
    render::RenderOptions options =
        engine::render_options_from(query_lookup, /*allow_cmap_file=*/false);
    // Text-based bodies compress well and stay cheap to negotiate: svg and
    // ascii are gzip-encoded when the client accepts it (the compressed
    // bytes are cached by the render service, so only the first negotiated
    // request pays for deflate). Binary formats (png, pdf, svgz) are
    // already compressed and always go out as-is.
    const bool negotiable = format == "svg" || format == "ascii";
    const auto encoding = negotiable && accepts_gzip(request)
                              ? engine::RenderService::Encoding::gzip
                              : engine::RenderService::Encoding::identity;
    const std::string etag = artifact_etag(
        *entry, engine::RenderService::options_digest(options),
        encoding == engine::RenderService::Encoding::gzip ? format + ".gz"
                                                          : format);
    if (if_none_match(request, etag)) {
      not_modified_304_.fetch_add(1);
      HttpResponse resp = not_modified(etag);
      if (negotiable) resp.headers["Vary"] = "Accept-Encoding";
      return resp;
    }
    engine::RenderService::Artifact artifact =
        renders_.render(entry, std::move(options), format, encoding);
    HttpResponse resp;
    resp.media_type = artifact.media_type;
    resp.headers["ETag"] = etag;
    resp.headers["X-Cache"] = artifact.cache_hit ? "hit" : "miss";
    if (negotiable) resp.headers["Vary"] = "Accept-Encoding";
    // A .svgz body is a gzip stream by definition; label it so clients
    // transparently decompress to SVG.
    const bool gzip_wire =
        encoding == engine::RenderService::Encoding::gzip || format == "svgz";
    if (gzip_wire) resp.headers["Content-Encoding"] = "gzip";
    resp.body = *artifact.bytes;
    wire_bytes_.fetch_add(resp.body.size());
    raw_bytes_.fetch_add(artifact.raw_size);
    (gzip_wire ? gzip_responses_ : identity_responses_).fetch_add(1);
    return resp;
  }

  if (tail == "tile") {
    const auto x = request.query_value("x");
    const auto zoom = request.query_value("zoom");
    if (!x || !zoom) {
      throw ArgumentError("tile requires x and zoom query parameters");
    }
    const auto y = request.query_value("y");
    const long long tx = parse_integer(*x, "x");
    const long long ty = y ? parse_integer(*y, "y") : -1;
    const int tzoom = static_cast<int>(parse_integer(*zoom, "zoom"));
    render::RenderOptions options =
        engine::render_options_from(query_lookup, /*allow_cmap_file=*/false);
    // x/y/zoom are folded into the style inside render_tile, so they go
    // into the ETag's shape component instead of the options digest.
    const std::string etag = artifact_etag(
        *entry, engine::RenderService::options_digest(options),
        "tile." + std::to_string(tx) + "." + std::to_string(ty) + "." +
            std::to_string(tzoom));
    if (if_none_match(request, etag)) {
      not_modified_304_.fetch_add(1);
      return not_modified(etag);
    }
    engine::RenderService::Artifact artifact =
        renders_.render_tile(entry, tx, ty, tzoom, std::move(options));
    HttpResponse resp;
    resp.media_type = artifact.media_type;
    resp.headers["ETag"] = etag;
    resp.headers["X-Cache"] = artifact.cache_hit ? "hit" : "miss";
    resp.body = *artifact.bytes;
    wire_bytes_.fetch_add(resp.body.size());
    raw_bytes_.fetch_add(artifact.raw_size);
    identity_responses_.fetch_add(1);
    return resp;
  }

  return text_response(404, "no such resource under /schedules/" + id);
}

Server::Counters Server::counters() const {
  Counters c;
  c.accepted = accepted_.load();
  c.served = served_.load();
  c.rejected_429 = rejected_429_.load();
  c.errors = errors_.load();
  c.wire_bytes = wire_bytes_.load();
  c.raw_bytes = raw_bytes_.load();
  c.gzip_responses = gzip_responses_.load();
  c.identity_responses = identity_responses_.load();
  c.not_modified_304 = not_modified_304_.load();
  return c;
}

std::string Server::stats_json() const {
  const auto store_stats = store_.stats();
  const auto render_stats = renders_.stats();
  const Counters c = counters();

  std::string out = "{";
  out += "\"store\":{";
  out += "\"entries\":" + std::to_string(store_stats.entries);
  out += ",\"tasks\":" + std::to_string(store_stats.tasks);
  out += ",\"puts\":" + std::to_string(store_stats.puts);
  out += ",\"dedup_hits\":" + std::to_string(store_stats.dedup_hits);
  out += ",\"evictions\":" + std::to_string(store_stats.evictions);
  out += ",\"lookups\":" + std::to_string(store_stats.lookups);
  out += ",\"lookup_misses\":" + std::to_string(store_stats.lookup_misses);
  out += ",\"resident_mmap_bytes\":" +
         std::to_string(store_stats.resident_mmap_bytes);
  out += ",\"resident_heap_bytes\":" +
         std::to_string(store_stats.resident_heap_bytes);
  out += ",\"ingest_mapped_bytes\":" +
         std::to_string(store_stats.ingest_mapped_bytes);
  out += "},\"snapshot\":{";
  const io::SnapshotCounters snap = io::snapshot_counters();
  out += "\"saves\":" + std::to_string(snap.saves);
  out += ",\"save_bytes\":" + std::to_string(snap.save_bytes);
  out += ",\"loads\":" + std::to_string(snap.loads);
  out += ",\"load_bytes\":" + std::to_string(snap.load_bytes);
  out += "},\"ingest\":{";
  // Per-format chunked-parse counters (io::record_ingest): cumulative
  // parses, how many took the parallel path, decoded bytes, worker chunks,
  // wall time and the last resolved thread count.
  {
    bool first_fmt = true;
    for (const auto& [fmt, ic] : io::ingest_counters()) {
      if (!first_fmt) out += ',';
      first_fmt = false;
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f", ic.parse_ms);
      out += "\"" + fmt + "\":{";
      out += "\"parses\":" + std::to_string(ic.parses);
      out += ",\"parallel_parses\":" + std::to_string(ic.parallel_parses);
      out += ",\"bytes\":" + std::to_string(ic.bytes);
      out += ",\"chunks\":" + std::to_string(ic.chunks);
      out += ",\"parse_ms\":" + std::string(ms);
      out += ",\"last_threads\":" + std::to_string(ic.last_threads);
      out += "}";
    }
  }
  out += "},\"render\":{";
  out += "\"artifact_hits\":" + std::to_string(render_stats.artifact_hits);
  out += ",\"artifact_misses\":" + std::to_string(render_stats.artifact_misses);
  out +=
      ",\"artifact_evictions\":" + std::to_string(render_stats.artifact_evictions);
  out += ",\"artifact_entries\":" + std::to_string(render_stats.artifact_entries);
  out += ",\"artifact_bytes\":" + std::to_string(render_stats.artifact_bytes);
  out += ",\"edge_renders\":" + std::to_string(render_stats.edge_renders);
  out += ",\"edge_arrows\":" + std::to_string(render_stats.edge_arrows);
  out +=
      ",\"edge_heat_frames\":" + std::to_string(render_stats.edge_heat_frames);
  out += ",\"tile\":{";
  out += "\"hits\":" + std::to_string(render_stats.tile.hits);
  out += ",\"misses\":" + std::to_string(render_stats.tile.misses);
  out += ",\"evictions\":" + std::to_string(render_stats.tile.evictions);
  out += ",\"invalidations\":" + std::to_string(render_stats.tile.invalidations);
  out += "}},\"server\":{";
  out += "\"accepted\":" + std::to_string(c.accepted);
  out += ",\"served\":" + std::to_string(c.served);
  out += ",\"rejected_429\":" + std::to_string(c.rejected_429);
  out += ",\"errors\":" + std::to_string(c.errors);
  out += ",\"queue_depth\":" + std::to_string(pool_ ? pool_->queued() : 0);
  out += ",\"threads\":" + std::to_string(pool_ ? pool_->threads() : 0);
  out += "},\"encoding\":{";
  out += "\"wire_bytes\":" + std::to_string(c.wire_bytes);
  out += ",\"raw_bytes\":" + std::to_string(c.raw_bytes);
  out += ",\"gzip_responses\":" + std::to_string(c.gzip_responses);
  out += ",\"identity_responses\":" + std::to_string(c.identity_responses);
  out += ",\"not_modified_304\":" + std::to_string(c.not_modified_304);
  out += "}}\n";
  return out;
}

}  // namespace jedule::serve
