#pragma once

// serve::Server — the `jedule serve` daemon (DESIGN.md §4f): a long-lived
// HTTP/1.1 frontend over engine::ScheduleStore + engine::RenderService.
//
//   POST   /schedules                       ingest a trace (XML/CSV/SWF,
//                                           gzip-sniffed); dedups by
//                                           content hash
//   GET    /schedules                       list stored schedules
//   GET    /schedules/{id}                  one schedule's metadata
//   DELETE /schedules/{id}                  drop a schedule
//   GET    /schedules/{id}/render.{ext}     export (png/svg/svgz/pdf/ppm/
//                                           ascii); query params = CLI
//                                           flag names. Text-based bodies
//                                           (svg, ascii) are served
//                                           Content-Encoding: gzip when the
//                                           request's Accept-Encoding
//                                           allows it; svgz is always a
//                                           gzip stream
//   GET    /schedules/{id}/tile?x=&y=&zoom= windowed viewport tile (PNG)
//   POST   /schedules/{id}/events           append live-trace events
//                                           (engine/events.hpp line format);
//                                           answers with the *new* entry id
//                                           (entries are immutable — the
//                                           appended schedule is new content)
//   GET    /stats                           store/cache/server counters
//   GET    /healthz                         liveness probe
//
// Render and tile responses carry a strong ETag derived from the entry's
// content hash and the render-option digest; a matching If-None-Match is
// answered 304 without touching the render service.
//
// Concurrency model: one listener thread accepts and hands connections to
// a fixed util::WorkerPool over a bounded queue. A full queue is answered
// 429 + Retry-After by the listener itself (load shedding, never queue
// growth); per-connection socket deadlines bound each request; stop()
// drains in-flight work before returning (graceful SIGTERM).
//
// handle() — the routing/rendering core — is a pure request -> response
// function exposed publicly so tests can drive it without sockets.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "jedule/engine/render_service.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/serve/http.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::serve {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0: ephemeral (read the bound port from port())
    int threads = 4;
    std::size_t queue_capacity = 32;
    int request_timeout_ms = 30000;        // socket read/write deadline
    std::size_t max_body = 256u << 20;     // upload size cap
    engine::ScheduleStore::Options store;
    engine::RenderService::Options render;
  };

  struct Counters {
    std::uint64_t accepted = 0;      // connections handed to the pool
    std::uint64_t served = 0;        // responses written (any status)
    std::uint64_t rejected_429 = 0;  // shed at the listener, queue full
    std::uint64_t errors = 0;        // 5xx responses + dead-peer writes
    // Render/tile delivery accounting: bytes actually sent vs the size of
    // the identity (uncompressed) artifacts they carry, plus how many
    // bodies went out per Content-Encoding.
    std::uint64_t wire_bytes = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t gzip_responses = 0;
    std::uint64_t identity_responses = 0;
    // Conditional requests answered 304 off the ETag, no body rendered.
    std::uint64_t not_modified_304 = 0;
  };

  Server() : Server(Options{}) {}
  explicit Server(Options opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the listener + worker pool. Throws IoError
  /// when the address cannot be bound.
  void start();

  /// The bound TCP port (after start()).
  int port() const { return port_; }

  bool running() const { return listener_.joinable(); }

  /// Graceful drain: stop accepting, finish queued and in-flight
  /// requests, join all threads. Idempotent; safe from a signal-woken
  /// main thread.
  void stop();

  /// Routes one parsed request. Never throws: every failure maps to a
  /// 4xx/5xx response with a text/plain body holding the same error
  /// message the CLI would print.
  HttpResponse handle(const HttpRequest& request);

  Counters counters() const;

  engine::ScheduleStore& store() { return store_; }
  engine::RenderService& renders() { return renders_; }

  /// The /stats JSON document (exposed for tests).
  std::string stats_json() const;

 private:
  void listen_loop();
  void serve_connection(int fd);

  HttpResponse handle_schedules(const HttpRequest& request);
  HttpResponse handle_schedule_resource(const HttpRequest& request,
                                        const std::string& id,
                                        const std::string& tail);

  Options opt_;
  engine::ScheduleStore store_;
  engine::RenderService renders_;
  std::unique_ptr<util::WorkerPool> pool_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_429_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> wire_bytes_{0};
  std::atomic<std::uint64_t> raw_bytes_{0};
  std::atomic<std::uint64_t> gzip_responses_{0};
  std::atomic<std::uint64_t> identity_responses_{0};
  std::atomic<std::uint64_t> not_modified_304_{0};
};

}  // namespace jedule::serve
