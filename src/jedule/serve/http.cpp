#include "jedule/serve/http.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "jedule/util/error.hpp"

namespace jedule::serve {

namespace {

constexpr std::size_t kMaxHeadBytes = 64 * 1024;

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<std::string> HttpRequest::query_value(
    const std::string& key) const {
  auto it = query.find(key);
  if (it == query.end()) return std::nullopt;
  return it->second;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        throw HttpError{400, "malformed percent-escape in request target"};
      }
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else if (c == '%') {
      throw HttpError{400, "truncated percent-escape in request target"};
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::map<std::string, std::string> parse_query(std::string_view s) {
  std::map<std::string, std::string> out;
  while (!s.empty()) {
    const std::size_t amp = s.find('&');
    std::string_view pair = s.substr(0, amp);
    s = amp == std::string_view::npos ? std::string_view{} : s.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out[url_decode(pair)] = "";
    } else {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return out;
}

HttpRequest parse_request_head(std::string_view head) {
  HttpRequest req;

  const std::size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view{}
                              : head.substr(line_end + 2);

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    throw HttpError{400, "malformed request line"};
  }
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(trim(request_line.substr(sp2 + 1)));
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    throw HttpError{400, "malformed request line"};
  }
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    throw HttpError{505, "unsupported HTTP version"};
  }

  const std::size_t qmark = req.target.find('?');
  if (qmark == std::string::npos) {
    req.path = url_decode(req.target);
  } else {
    req.path = url_decode(std::string_view(req.target).substr(0, qmark));
    req.query = parse_query(std::string_view(req.target).substr(qmark + 1));
  }

  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw HttpError{400, "malformed header line"};
    }
    std::string name = to_lower(trim(line.substr(0, colon)));
    req.headers[name] = std::string(trim(line.substr(colon + 1)));
  }
  return req;
}

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += reason_phrase(response.status);
  out += "\r\n";
  if (!response.media_type.empty()) {
    out += "Content-Type: ";
    out += response.media_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpRequest read_request(int fd, std::size_t max_body) {
  std::string buffer;
  std::size_t head_end = std::string::npos;
  char chunk[4096];

  // Read until the blank line that ends the head.
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw HttpError{408, "timed out reading request"};
      }
      throw IoError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (buffer.empty()) throw IoError("peer closed connection");
      throw HttpError{400, "connection closed mid-request"};
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > kMaxHeadBytes) {
      throw HttpError{400, "request head exceeds 64 KiB"};
    }
  }

  HttpRequest req = parse_request_head(
      std::string_view(buffer).substr(0, head_end + 2));

  std::size_t body_len = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    const std::string& v = it->second;
    if (v.empty() ||
        v.find_first_not_of("0123456789") != std::string::npos ||
        v.size() > 12) {
      throw HttpError{400, "malformed Content-Length"};
    }
    body_len = static_cast<std::size_t>(std::stoull(v));
  } else if (req.headers.count("transfer-encoding") != 0) {
    throw HttpError{400, "chunked request bodies are not supported"};
  }
  if (body_len > max_body) {
    throw HttpError{413, "request body exceeds " + std::to_string(max_body) +
                             " bytes"};
  }

  req.body = buffer.substr(head_end + 4);
  if (req.body.size() > body_len) {
    throw HttpError{400, "request body longer than Content-Length"};
  }
  while (req.body.size() < body_len) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw HttpError{408, "timed out reading request body"};
      }
      throw IoError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) throw HttpError{400, "connection closed mid-body"};
    req.body.append(chunk, static_cast<std::size_t>(n));
    if (req.body.size() > body_len) {
      throw HttpError{400, "request body longer than Content-Length"};
    }
  }
  return req;
}

bool write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace jedule::serve
