#pragma once

// Minimal HTTP/1.1 message layer for `jedule serve`. Only what the render
// service needs: request line + headers + Content-Length bodies in,
// responses with explicit lengths out, every connection closed after one
// exchange (`Connection: close` is always sent). Deliberately no external
// dependency — the server must build wherever the CLI builds.
//
// Parsing is exposed over plain strings/fds so the fuzz tests can feed
// malformed bytes directly; every malformed input maps to a 4xx
// HttpError, never to an exception escaping the worker.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace jedule::serve {

/// Malformed or oversized request; `status` is the 4xx to answer with.
struct HttpError {
  int status;
  std::string message;
};

struct HttpRequest {
  std::string method;   // upper-case by convention of the sender
  std::string target;   // raw request target ("/a/b?x=1")
  std::string path;     // decoded path ("/a/b")
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> query;    // decoded key -> value
  std::map<std::string, std::string> headers;  // lower-cased field names
  std::string body;

  std::optional<std::string> query_value(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string media_type = "text/plain; charset=utf-8";
  std::map<std::string, std::string> headers;  // extra headers
  std::string body;
};

/// Percent-decoding with '+' as space (query components).
std::string url_decode(std::string_view s);

/// Parses "k=v&k2=v2" into decoded pairs (flag-style "k" gets value "").
std::map<std::string, std::string> parse_query(std::string_view s);

/// Parses the request head (everything before the body, without the final
/// blank line). Throws HttpError on malformed input.
HttpRequest parse_request_head(std::string_view head);

/// Standard reason phrase ("Not Found"), "Unknown" otherwise.
const char* reason_phrase(int status);

/// Full response bytes, with Content-Length and Connection: close.
std::string serialize_response(const HttpResponse& response);

/// Reads one full request from `fd` (head limited to 64 KiB, body to
/// `max_body`). Throws HttpError on malformed/oversized input and
/// jedule::IoError when the peer hangs up or the socket deadline expires.
HttpRequest read_request(int fd, std::size_t max_body);

/// Writes the whole buffer; returns false on a send error (peer gone).
bool write_all(int fd, std::string_view bytes);

}  // namespace jedule::serve
