#include "jedule/xml/pull.hpp"

#include <array>
#include <cstring>

#include "jedule/util/error.hpp"

namespace jedule::xml {

namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

// 256-entry class table: name scanning is the hottest character loop in the
// parser (every element and attribute name goes through it).
constexpr std::array<bool, 256> make_name_char_table() {
  std::array<bool, 256> t{};
  for (int c = 0; c < 256; ++c) {
    const char ch = static_cast<char>(c);
    t[static_cast<std::size_t>(c)] =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
        (ch >= '0' && ch <= '9') || ch == '_' || ch == ':' || ch == '-' ||
        ch == '.';
  }
  return t;
}
constexpr std::array<bool, 256> kNameChar = make_name_char_table();

bool is_name_char(char c) {
  return kNameChar[static_cast<unsigned char>(c)];
}

}  // namespace

void PullParser::fail(const std::string& msg) const {
  throw ParseError("xml: " + msg, line_);
}

void PullParser::reset(std::string_view input, long line_base) {
  in_ = input;
  pos_ = 0;
  line_ = line_base + 1;
  state_ = State::kProlog;
  decoded_.clear();
  stack_.clear();
  attrs_.clear();
  name_ = {};
  text_ = {};
  elem_line_ = 0;
  pending_end_ = false;
}

char PullParser::get() {
  if (at_end()) fail("unexpected end of input");
  char c = in_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

void PullParser::expect(std::string_view s) {
  if (!looking_at(s)) fail("expected '" + std::string(s) + "'");
  for (std::size_t i = 0; i < s.size(); ++i) get();
}

void PullParser::skip_ws() {
  const char* d = in_.data();
  const std::size_t n = in_.size();
  std::size_t p = pos_;
  while (p < n) {
    const char c = d[p];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++p;
    } else if (c == '\n') {
      ++line_;
      ++p;
    } else {
      break;
    }
  }
  pos_ = p;
}

void PullParser::advance_to(std::size_t end) {
  std::size_t p = pos_;
  while (p < end) {
    const void* nl = std::memchr(in_.data() + p, '\n', end - p);
    if (nl == nullptr) break;
    ++line_;
    p = static_cast<std::size_t>(static_cast<const char*>(nl) -
                                 in_.data()) +
        1;
  }
  pos_ = end;
}

void PullParser::skip_comment() {
  expect("<!--");
  const std::size_t end = in_.find("-->", pos_);
  if (end == std::string_view::npos) {
    advance_to(in_.size());
    fail("unterminated comment");
  }
  advance_to(end);
  pos_ = end + 3;
}

void PullParser::skip_misc() {
  while (true) {
    skip_ws();
    if (looking_at("<!--")) {
      skip_comment();
    } else {
      break;
    }
  }
}

void PullParser::parse_prolog() {
  skip_ws();
  if (looking_at("<?xml")) {
    while (!looking_at("?>")) {
      if (at_end()) fail("unterminated XML declaration");
      get();
    }
    expect("?>");
  }
  skip_misc();
  if (looking_at("<!DOCTYPE")) {
    // Skip a (non-nested-subset) DOCTYPE so files exported by other tools
    // still load; internal subsets are rejected.
    int depth = 0;
    while (true) {
      if (at_end()) fail("unterminated DOCTYPE");
      char c = get();
      if (c == '[') fail("DOCTYPE internal subsets are not supported");
      if (c == '<') ++depth;
      if (c == '>') {
        if (depth == 1) break;
        --depth;
      }
    }
    skip_misc();
  }
}

std::string_view PullParser::parse_name_view() {
  if (!is_name_start(peek())) fail("expected a name");
  const std::size_t start = pos_++;
  while (pos_ < in_.size() && is_name_char(in_[pos_])) ++pos_;
  return in_.substr(start, pos_ - start);
}

void PullParser::encode_utf8(unsigned long cp, std::string& out) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

void PullParser::decode_entity(std::string& out) {
  expect("&");
  std::string ent;
  while (peek() != ';') {
    if (at_end() || ent.size() > 8) fail("malformed entity reference");
    ent += get();
  }
  expect(";");
  if (ent == "amp") {
    out += '&';
    return;
  }
  if (ent == "lt") {
    out += '<';
    return;
  }
  if (ent == "gt") {
    out += '>';
    return;
  }
  if (ent == "quot") {
    out += '"';
    return;
  }
  if (ent == "apos") {
    out += '\'';
    return;
  }
  if (!ent.empty() && ent[0] == '#') {
    long code = 0;
    bool ok = false;
    if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
      for (std::size_t i = 2; i < ent.size(); ++i) {
        char c = ent[i];
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else { ok = false; break; }
        code = code * 16 + d;
        ok = true;
      }
    } else {
      for (std::size_t i = 1; i < ent.size(); ++i) {
        char c = ent[i];
        if (c < '0' || c > '9') { ok = false; break; }
        code = code * 10 + (c - '0');
        ok = true;
      }
    }
    if (!ok || code <= 0 || code > 0x10FFFF) fail("bad character reference");
    encode_utf8(static_cast<unsigned long>(code), out);
    return;
  }
  fail("unknown entity '&" + ent + ";'");
}

std::string_view PullParser::parse_attr_value_view() {
  if (at_end()) fail("unexpected end of input");
  const char quote = in_[pos_++];  // quotes are never newlines
  if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
  // One fused scan to the first quote / '&' / '<', counting newlines as it
  // goes; line_/pos_ are only committed on the paths that consumed the span.
  const char* d = in_.data();
  const std::size_t n = in_.size();
  const std::size_t start = pos_;
  std::size_t p = start;
  long nl = 0;
  char c = '\0';
  while (p < n) {
    c = d[p];
    if (c == quote || c == '&' || c == '<') break;
    nl += (c == '\n');
    ++p;
  }
  if (p >= n) {
    line_ += nl;
    pos_ = p;
    fail("unterminated attribute value");
  }
  if (c == '<') {
    line_ += nl;
    pos_ = p;
    fail("'<' in attribute value");
  }
  if (c == quote) {
    line_ += nl;
    pos_ = p + 1;  // past the closing quote (never a newline)
    return in_.substr(start, p - start);
  }
  // Slow path: the value contains an entity — decode char by char, exactly
  // like the baseline parser (a malformed entity may swallow the quote).
  decode_buf_.clear();
  while (true) {
    if (peek() == quote) {
      ++pos_;
      break;
    }
    if (at_end()) fail("unterminated attribute value");
    if (peek() == '&') {
      decode_entity(decode_buf_);
    } else if (peek() == '<') {
      fail("'<' in attribute value");
    } else {
      decode_buf_ += get();
    }
  }
  return decoded_.store(decode_buf_);
}

bool PullParser::parse_text_run() {
  // One fused scan to the first '<' or '&', counting newlines as it goes;
  // most runs are short whitespace between tags, so a single pass beats
  // separate memchr sweeps. line_/pos_ commit only on the entity-free path.
  const char* d = in_.data();
  const std::size_t n = in_.size();
  const std::size_t start = pos_;
  std::size_t p = start;
  long nl = 0;
  char c = '\0';
  while (p < n) {
    c = d[p];
    if (c == '<' || c == '&') break;
    nl += (c == '\n');
    ++p;
  }
  if (p >= n || c == '<') {
    line_ += nl;
    pos_ = p;
    text_ = in_.substr(start, p - start);
    return p > start;
  }
  // Slow path: at least one entity in the run — decode char by char (a
  // malformed entity may swallow a '<', exactly like the baseline parser).
  decode_buf_.clear();
  while (!at_end() && peek() != '<') {
    if (peek() == '&') {
      decode_entity(decode_buf_);
    } else {
      decode_buf_ += get();
    }
  }
  text_ = decoded_.store(decode_buf_);
  return !decode_buf_.empty();
}

bool PullParser::parse_cdata() {
  expect("<![CDATA[");
  const std::size_t start = pos_;
  const std::size_t end = in_.find("]]>", pos_);
  if (end == std::string_view::npos) {
    advance_to(in_.size());
    fail("unterminated CDATA section");
  }
  advance_to(end);
  pos_ = end + 3;
  text_ = in_.substr(start, end - start);
  return end > start;
}

PullParser::Event PullParser::parse_start_tag() {
  if (at_end() || in_[pos_] != '<') fail("expected '<'");
  ++pos_;  // '<' is never a newline
  const long start_line = line_;
  name_ = parse_name_view();
  elem_line_ = start_line;
  attrs_.clear();
  while (true) {
    skip_ws();
    if (looking_at("/>")) {
      pos_ += 2;
      stack_.push_back({name_, start_line});
      pending_end_ = true;
      return Event::kStartElement;
    }
    if (peek() == '>') {
      ++pos_;
      stack_.push_back({name_, start_line});
      return Event::kStartElement;
    }
    std::string_view attr_name = parse_name_view();
    skip_ws();
    if (at_end() || in_[pos_] != '=') fail("expected '='");
    ++pos_;
    skip_ws();
    if (attr(attr_name)) {
      fail("duplicate attribute '" + std::string(attr_name) + "'");
    }
    attrs_.push_back({attr_name, parse_attr_value_view()});
  }
}

PullParser::Event PullParser::parse_end_tag() {
  pos_ += 2;  // the caller saw "</"
  const std::string_view close = parse_name_view();
  if (close != stack_.back().name) {
    fail("mismatched closing tag </" + std::string(close) + "> for <" +
         std::string(stack_.back().name) + ">");
  }
  skip_ws();
  if (at_end() || in_[pos_] != '>') fail("expected '>'");
  ++pos_;
  return emit_end();
}

PullParser::Event PullParser::emit_end() {
  const Open top = stack_.back();
  stack_.pop_back();
  name_ = top.name;
  elem_line_ = top.line;
  if (stack_.empty()) {
    // The root element closed: validate the epilog now so the error
    // surfaces no matter how far the consumer drives the parser.
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    state_ = State::kEpilog;
  }
  return Event::kEndElement;
}

PullParser::Event PullParser::next() {
  decoded_.clear();
  if (pending_end_) {
    pending_end_ = false;
    return emit_end();
  }
  if (state_ == State::kProlog) {
    parse_prolog();
    state_ = State::kContent;
    return parse_start_tag();
  }
  if (state_ == State::kEpilog) return Event::kEndDocument;
  while (true) {
    if (at_end()) {
      fail("unterminated element <" + std::string(stack_.back().name) + ">");
    }
    if (in_[pos_] == '<') {
      // Dispatch on the character after '<' instead of re-running prefix
      // comparisons per tag; anything unexpected falls into parse_start_tag
      // which reports the same "expected a name" the prefix path did.
      const char nxt = pos_ + 1 < in_.size() ? in_[pos_ + 1] : '\0';
      if (nxt == '/') return parse_end_tag();
      if (nxt == '!') {
        if (looking_at("<!--")) {
          skip_comment();
          continue;
        }
        if (looking_at("<![CDATA[")) {
          if (parse_cdata()) return Event::kText;
          continue;
        }
      }
      return parse_start_tag();
    }
    if (parse_text_run()) return Event::kText;
  }
}

std::optional<std::string_view> PullParser::attr(std::string_view name) const {
  for (const auto& a : attrs_) {
    if (a.name == name) return a.value;
  }
  return std::nullopt;
}

std::string_view PullParser::require_attr(std::string_view name) const {
  auto v = attr(name);
  if (!v) {
    throw ParseError("element <" + std::string(name_) +
                         "> is missing attribute '" + std::string(name) + "'",
                     elem_line_);
  }
  return *v;
}

void PullParser::skip_element() {
  JED_ASSERT(!stack_.empty());
  const std::size_t depth = stack_.size();
  while (stack_.size() >= depth) next();
}

}  // namespace jedule::xml
