#pragma once

// Small from-scratch XML DOM, sufficient for the Jedule schedule and colormap
// formats (Figs. 1 and 2 of the paper) and general enough for user-supplied
// variants: elements, attributes, text, comments, CDATA, the five predefined
// entities, numeric character references, and an XML declaration.
//
// Deliberately out of scope (not needed by any schedule format): DTDs,
// namespaces-aware processing (prefixes are kept verbatim in names),
// processing instructions other than the declaration, and non-UTF-8
// encodings.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jedule::xml {

struct Attribute {
  std::string name;
  std::string value;
};

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// One element node. Child *text* is stored merged in `text` (the formats we
/// parse never interleave meaningful text with child elements); child
/// elements are stored in document order.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Concatenated character data directly inside this element (whitespace
  /// around child elements is dropped; text is entity-decoded).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Value of attribute `name`, or nullopt if absent.
  std::optional<std::string_view> attr(std::string_view name) const;

  /// Value of attribute `name`; throws ParseError if absent.
  std::string_view require_attr(std::string_view name) const;

  /// Sets (or replaces) an attribute.
  void set_attr(std::string name, std::string value);

  const std::vector<ElementPtr>& children() const { return children_; }

  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  void add_child(ElementPtr child);

  /// First child with the given element name, or nullptr.
  const Element* first_child(std::string_view name) const;

  /// All children with the given element name, in document order.
  std::vector<const Element*> children_named(std::string_view name) const;

  /// 1-based source line where this element started (0 if built in memory).
  long source_line() const { return source_line_; }
  void set_source_line(long line) { source_line_ = line; }

 private:
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<ElementPtr> children_;
  long source_line_ = 0;
};

struct Document {
  ElementPtr root;
};

/// Parses a complete XML document; throws jedule::ParseError (with line
/// numbers) on malformed input. Built on xml::PullParser (pull.hpp); for
/// the jedule/colormap formats prefer the streaming io readers, which skip
/// the DOM entirely.
Document parse(std::string_view input);

/// Reference implementation: the original recursive DOM parser, retained
/// so the fuzz suite can assert tree-for-tree (and error-for-error)
/// equivalence with the pull-based parse, and as the pre-optimization
/// baseline in bench_scale. Accepts exactly the same documents as parse().
Document baseline_parse(std::string_view input);

/// Parses the file at `path`; throws jedule::IoError / jedule::ParseError.
Document parse_file(const std::string& path);

/// Serializes with 2-space indentation and an XML declaration.
std::string serialize(const Document& doc);
std::string serialize(const Element& root);

}  // namespace jedule::xml
