#pragma once

// Zero-copy XML pull parser: the streaming core under xml::parse and the
// io readers. Lexes in situ over the caller's buffer — element names,
// attribute names/values and text runs are handed out as string_views into
// the input (stable for the input buffer's lifetime); decoded strings are
// only materialized (into an arena that is recycled per event) when an
// entity or character reference actually appears.
//
// The grammar accepted (and every error message, down to line numbers) is
// identical to the recursive DOM parser this replaces, which is retained
// as xml::baseline_parse for differential testing.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "jedule/util/interner.hpp"

namespace jedule::xml {

class PullParser {
 public:
  enum class Event {
    kStartElement,  // name() + attributes() are valid
    kEndElement,    // name() is the element being closed
    kText,          // text() is one decoded character-data run
    kEndDocument,   // the root element closed and the epilog was clean
  };

  struct Attr {
    std::string_view name;   // view into the input: stable for its lifetime
    std::string_view value;  // valid until the next next() call
  };

  /// The input buffer must outlive the parser; views point into it.
  explicit PullParser(std::string_view input) : in_(input) {}

  /// Rewinds onto a fresh input buffer, keeping the decoded-string arena's
  /// and the scratch vectors' capacity. The chunked ingest workers parse
  /// thousands of record slices through one parser this way instead of
  /// paying construction per record. `line_base` offsets every reported
  /// line number, so a slice at line N of the real document keeps its
  /// document-relative diagnostics.
  void reset(std::string_view input, long line_base = 0);

  /// Advances to the next event; throws jedule::ParseError on malformed
  /// input. After kEndDocument, keeps returning kEndDocument.
  Event next();

  /// Element name of the current kStartElement / kEndElement. A view into
  /// the input buffer: stays valid for the input's lifetime.
  std::string_view name() const { return name_; }

  /// 1-based line where the current element's start tag began.
  long line() const { return elem_line_; }

  /// Attributes of the current kStartElement, in document order. Values
  /// are valid until the next next() call.
  const std::vector<Attr>& attributes() const { return attrs_; }

  /// Value of attribute `name` on the current kStartElement, or nullopt.
  std::optional<std::string_view> attr(std::string_view name) const;

  /// Like attr(), but throws the same ParseError as Element::require_attr
  /// (message and line included) when the attribute is absent.
  std::string_view require_attr(std::string_view name) const;

  /// One character-data run for the current kText event (text between two
  /// pieces of markup; consecutive runs of one element may be split by
  /// comments, CDATA sections or child elements). Valid until next().
  std::string_view text() const { return text_; }

  /// After a kStartElement: consumes events through the matching
  /// kEndElement, validating (but otherwise ignoring) the whole subtree.
  void skip_element();

  /// Current 1-based line of the lexer (for document-level errors).
  long input_line() const { return line_; }

 private:
  enum class State { kProlog, kContent, kEpilog };

  struct Open {
    std::string_view name;
    long line;
  };

  [[noreturn]] void fail(const std::string& msg) const;
  bool at_end() const { return pos_ >= in_.size(); }
  char peek() const { return at_end() ? '\0' : in_[pos_]; }
  char get();
  bool looking_at(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void expect(std::string_view s);
  void skip_ws();
  void skip_comment();
  void skip_misc();
  void parse_prolog();
  Event parse_start_tag();
  Event parse_end_tag();
  Event emit_end();
  bool parse_cdata();
  bool parse_text_run();
  std::string_view parse_name_view();
  std::string_view parse_attr_value_view();
  void decode_entity(std::string& out);
  static void encode_utf8(unsigned long cp, std::string& out);
  /// Advances pos_ to `end`, counting newlines in the skipped span.
  void advance_to(std::size_t end);

  std::string_view in_;
  std::size_t pos_ = 0;
  long line_ = 1;
  State state_ = State::kProlog;

  util::Arena decoded_;     // per-event storage for entity-decoded strings
  std::string decode_buf_;  // reused scratch for the slow (entity) paths

  std::vector<Open> stack_;
  std::vector<Attr> attrs_;
  std::string_view name_;
  std::string_view text_;
  long elem_line_ = 0;
  bool pending_end_ = false;  // a self-closing tag owes its kEndElement
};

}  // namespace jedule::xml
