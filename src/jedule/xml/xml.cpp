#include "jedule/xml/xml.hpp"

#include <fstream>
#include <sstream>

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/xml/pull.hpp"

namespace jedule::xml {

std::optional<std::string_view> Element::attr(std::string_view name) const {
  for (const auto& a : attributes_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::string_view Element::require_attr(std::string_view name) const {
  auto v = attr(name);
  if (!v) {
    throw ParseError("element <" + name_ + "> is missing attribute '" +
                         std::string(name) + "'",
                     source_line_);
  }
  return *v;
}

void Element::set_attr(std::string name, std::string value) {
  for (auto& a : attributes_) {
    if (a.name == name) {
      a.value = std::move(value);
      return;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

void Element::add_child(ElementPtr child) {
  children_.push_back(std::move(child));
}

const Element* Element::first_child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

namespace {

/// The original recursive descent parser, kept verbatim as the reference
/// implementation behind xml::baseline_parse: the fuzz suite runs it
/// side-by-side with the pull-based build and the scale bench uses it as
/// the pre-optimization DOM baseline.
class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  Document parse_document() {
    skip_prolog();
    Document doc;
    doc.root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return doc;
  }

 private:
  std::string_view in_;
  size_t pos_ = 0;
  long line_ = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("xml: " + msg, line_);
  }

  bool at_end() const { return pos_ >= in_.size(); }

  char peek() const { return at_end() ? '\0' : in_[pos_]; }

  char get() {
    if (at_end()) fail("unexpected end of input");
    char c = in_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool looking_at(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    if (!looking_at(s)) fail("expected '" + std::string(s) + "'");
    for (size_t i = 0; i < s.size(); ++i) get();
  }

  void skip_ws() {
    while (!at_end()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        get();
      } else {
        break;
      }
    }
  }

  static bool is_name_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  }
  static bool is_name_char(char c) {
    return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  std::string parse_name() {
    if (!is_name_start(peek())) fail("expected a name");
    std::string name;
    name += get();
    while (!at_end() && is_name_char(peek())) name += get();
    return name;
  }

  void skip_comment() {
    expect("<!--");
    while (!looking_at("-->")) {
      if (at_end()) fail("unterminated comment");
      get();
    }
    expect("-->");
  }

  void skip_prolog() {
    skip_ws();
    if (looking_at("<?xml")) {
      while (!looking_at("?>")) {
        if (at_end()) fail("unterminated XML declaration");
        get();
      }
      expect("?>");
    }
    skip_misc();
    if (looking_at("<!DOCTYPE")) {
      // Skip a (non-nested-subset) DOCTYPE so files exported by other tools
      // still load; internal subsets are rejected.
      int depth = 0;
      while (true) {
        if (at_end()) fail("unterminated DOCTYPE");
        char c = get();
        if (c == '[') fail("DOCTYPE internal subsets are not supported");
        if (c == '<') ++depth;
        if (c == '>') {
          if (depth == 1) break;
          --depth;
        }
      }
      skip_misc();
    }
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (looking_at("<!--")) {
        skip_comment();
      } else {
        break;
      }
    }
  }

  std::string decode_entity() {
    expect("&");
    std::string ent;
    while (peek() != ';') {
      if (at_end() || ent.size() > 8) fail("malformed entity reference");
      ent += get();
    }
    expect(";");
    if (ent == "amp") return "&";
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      bool ok = false;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t i = 2; i < ent.size(); ++i) {
          char c = ent[i];
          int d;
          if (c >= '0' && c <= '9') d = c - '0';
          else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
          else { ok = false; break; }
          code = code * 16 + d;
          ok = true;
        }
      } else {
        for (size_t i = 1; i < ent.size(); ++i) {
          char c = ent[i];
          if (c < '0' || c > '9') { ok = false; break; }
          code = code * 10 + (c - '0');
          ok = true;
        }
      }
      if (!ok || code <= 0 || code > 0x10FFFF) fail("bad character reference");
      return encode_utf8(static_cast<unsigned long>(code));
    }
    fail("unknown entity '&" + ent + ";'");
  }

  static std::string encode_utf8(unsigned long cp) {
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  std::string parse_attr_value() {
    char quote = get();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    std::string value;
    while (peek() != quote) {
      if (at_end()) fail("unterminated attribute value");
      if (peek() == '&') {
        value += decode_entity();
      } else if (peek() == '<') {
        fail("'<' in attribute value");
      } else {
        value += get();
      }
    }
    get();  // closing quote
    return value;
  }

  ElementPtr parse_element() {
    expect("<");
    long start_line = line_;
    auto elem = std::make_unique<Element>(parse_name());
    elem->set_source_line(start_line);
    // Attributes.
    while (true) {
      skip_ws();
      if (looking_at("/>")) {
        expect("/>");
        return elem;
      }
      if (peek() == '>') {
        get();
        break;
      }
      std::string attr_name = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      if (elem->attr(attr_name)) {
        fail("duplicate attribute '" + attr_name + "'");
      }
      elem->set_attr(std::move(attr_name), parse_attr_value());
    }
    // Content.
    std::string text;
    while (true) {
      if (at_end()) fail("unterminated element <" + elem->name() + ">");
      if (looking_at("</")) {
        expect("</");
        std::string close = parse_name();
        if (close != elem->name()) {
          fail("mismatched closing tag </" + close + "> for <" +
               elem->name() + ">");
        }
        skip_ws();
        expect(">");
        break;
      }
      if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<![CDATA[")) {
        expect("<![CDATA[");
        while (!looking_at("]]>")) {
          if (at_end()) fail("unterminated CDATA section");
          text += get();
        }
        expect("]]>");
      } else if (peek() == '<') {
        elem->add_child(parse_element());
      } else if (peek() == '&') {
        text += decode_entity();
      } else {
        text += get();
      }
    }
    elem->set_text(std::string(util::trim(text)));
    return elem;
  }
};

void serialize_element(const Element& e, int indent, std::string& out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out += pad;
  out += '<';
  out += e.name();
  for (const auto& a : e.attributes()) {
    out += ' ';
    out += a.name;
    out += "=\"";
    out += util::xml_escape(a.value);
    out += '"';
  }
  const bool has_children = !e.children().empty();
  const bool has_text = !e.text().empty();
  if (!has_children && !has_text) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (has_text) out += util::xml_escape(e.text());
  if (has_children) {
    out += '\n';
    for (const auto& c : e.children()) serialize_element(*c, indent + 1, out);
    out += pad;
  }
  out += "</";
  out += e.name();
  out += ">\n";
}

}  // namespace

Document parse(std::string_view input) {
  // DOM build over the zero-copy pull parser: one PullParser drives the
  // lexing; nodes copy out of its views into their own storage.
  PullParser p(input);
  const PullParser::Event first = p.next();
  JED_ASSERT(first == PullParser::Event::kStartElement);
  std::vector<ElementPtr> open;
  std::vector<std::string> texts;
  const auto start_element = [&] {
    auto e = std::make_unique<Element>(std::string(p.name()));
    e->set_source_line(p.line());
    for (const auto& a : p.attributes()) {
      e->set_attr(std::string(a.name), std::string(a.value));
    }
    open.push_back(std::move(e));
    texts.emplace_back();
  };
  start_element();
  Document doc;
  while (!open.empty()) {
    switch (p.next()) {
      case PullParser::Event::kStartElement:
        start_element();
        break;
      case PullParser::Event::kText:
        texts.back() += p.text();
        break;
      case PullParser::Event::kEndElement: {
        ElementPtr done = std::move(open.back());
        open.pop_back();
        done->set_text(std::string(util::trim(texts.back())));
        texts.pop_back();
        if (open.empty()) {
          doc.root = std::move(done);
        } else {
          open.back()->add_child(std::move(done));
        }
        break;
      }
      case PullParser::Event::kEndDocument:
        break;  // unreachable: open is non-empty until the root closes
    }
  }
  return doc;
}

Document baseline_parse(std::string_view input) {
  return Parser(input).parse_document();
}

Document parse_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot open file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) throw IoError("error while reading '" + path + "'");
  return parse(buf.str());
}

std::string serialize(const Element& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serialize_element(root, 0, out);
  return out;
}

std::string serialize(const Document& doc) {
  JED_ASSERT(doc.root != nullptr);
  return serialize(*doc.root);
}

}  // namespace jedule::xml
