#pragma once

// Umbrella header: the public API of the jedule schedule-visualization
// library and its substrates. Include selectively in production code; this
// header is a convenience for examples and quick starts.

// Core data model.
#include "jedule/model/builder.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/stats.hpp"

// Colors and colormaps.
#include "jedule/color/color.hpp"
#include "jedule/color/colormap.hpp"

// Input/output formats.
#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/csv.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/io/swf.hpp"

// Rendering and export.
#include "jedule/render/ascii.hpp"
#include "jedule/render/export.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/options.hpp"
#include "jedule/render/profile.hpp"

// Interactive mode.
#include "jedule/interactive/session.hpp"

// Schedule-producing substrates (case studies).
#include "jedule/dag/dag.hpp"
#include "jedule/dag/dot.hpp"
#include "jedule/dag/generators.hpp"
#include "jedule/dag/montage.hpp"
#include "jedule/platform/platform.hpp"
#include "jedule/sched/cra.hpp"
#include "jedule/sched/heft.hpp"
#include "jedule/sched/mtask.hpp"
#include "jedule/sim/dag_execution.hpp"
#include "jedule/taskpool/log_schedule.hpp"
#include "jedule/taskpool/quicksort.hpp"
#include "jedule/workload/thunder.hpp"
#include "jedule/workload/trace_schedule.hpp"
