#include "jedule/engine/render_service.hpp"

#include <cstring>
#include <utility>

#include "jedule/render/deflate.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/render/png.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv {
  std::uint64_t h = kFnvOffset;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void color(const color::Color& c) {
    bytes(&c.r, 1);
    bytes(&c.g, 1);
    bytes(&c.b, 1);
    bytes(&c.a, 1);
  }
};

void hash_style(Fnv& f, const render::GanttStyle& s) {
  f.i32(s.width);
  f.i32(s.height);
  f.i32(static_cast<int>(s.view_mode));
  f.i32(s.show_composites << 0 | s.show_labels << 1 | s.show_grid << 2 |
        s.show_meta << 3 | s.hatch_composites << 4);
  f.i32(s.time_window.has_value());
  if (s.time_window) {
    f.f64(s.time_window->begin);
    f.f64(s.time_window->end);
  }
  f.u64(s.cluster_filter.size());
  for (int id : s.cluster_filter) f.i32(id);
  f.u64(s.type_filter.size());
  for (const auto& t : s.type_filter) f.str(t);
  f.str(s.highlight_key);
  f.str(s.highlight_value);
  f.color(s.highlight_bg);
  f.i32(s.time_ticks);
  f.i32(static_cast<int>(s.lod));
  f.i32(s.lod_density);
  f.i32(static_cast<int>(s.edges));
  f.i32(s.edge_density);
}

void hash_colormap(Fnv& f, const color::ColorMap& m) {
  f.str(m.name());
  f.u64(m.config().size());
  for (const auto& [k, v] : m.config()) {
    f.str(k);
    f.str(v);
  }
  f.u64(m.styles().size());
  for (const auto& [type, style] : m.styles()) {
    f.str(type);
    f.color(style.foreground);
    f.color(style.background);
  }
  f.u64(m.composite_rules().size());
  for (const auto& rule : m.composite_rules()) {
    f.u64(rule.members.size());
    for (const auto& member : rule.members) f.str(member);
    f.color(rule.style.foreground);
    f.color(rule.style.background);
  }
}

std::uint64_t colormap_epoch(const color::ColorMap& m) {
  Fnv f;
  hash_colormap(f, m);
  return f.h;
}

}  // namespace

RenderService::RenderService(Options opt) : opt_(opt), tiles_(opt.tile) {}

std::uint64_t RenderService::options_digest(
    const render::RenderOptions& options) {
  Fnv f;
  hash_style(f, options.style);
  hash_colormap(f, options.colormap);
  return f.h;
}

std::string RenderService::media_type_for(const std::string& format) {
  if (format == "png") return "image/png";
  if (format == "ppm") return "image/x-portable-pixmap";
  if (format == "svg") return "image/svg+xml";
  if (format == "svgz") return "image/svg+xml";  // served Content-Encoding: gzip
  if (format == "pdf") return "application/pdf";
  if (format == "ascii") return "text/plain; charset=utf-8";
  return "application/octet-stream";
}

RenderService::Artifact RenderService::render(const EntryPtr& entry,
                                              render::RenderOptions options,
                                              const std::string& format,
                                              Encoding encoding) {
  JED_ASSERT(entry != nullptr);
  if (render::ExporterRegistry::instance().find(format) == nullptr) {
    throw ArgumentError("no exporter registered for format '" + format + "'");
  }
  if (options.threads <= 0) options.threads = opt_.threads;

  if (encoding == Encoding::gzip) {
    Fnv req;
    req.str("gzip+" + format);
    req.u64(options_digest(options));
    const Key key{entry->content_hash, req.h};
    return cached(key, media_type_for(format), Encoding::gzip, [&] {
      // The identity render goes through its own cache slot (make() runs
      // outside the lock, so the nested lookup cannot deadlock): the
      // uncompressed artifact renders once and the gzip stream of it is
      // stored once, no matter how many clients negotiate compression.
      const Artifact identity =
          render(entry, options, format, Encoding::identity);
      const auto z = render::gzip_compress(
          reinterpret_cast<const std::uint8_t*>(identity.bytes->data()),
          identity.bytes->size(), render::DeflateStrategy::dynamic,
          util::resolve_threads(options.threads));
      return Made{std::string(reinterpret_cast<const char*>(z.data()),
                              z.size()),
                  identity.bytes->size()};
    });
  }

  Fnv req;
  req.str(format);
  req.u64(options_digest(options));
  const Key key{entry->content_hash, req.h};
  return cached(key, media_type_for(format), Encoding::identity, [&] {
    // The entry's index makes windowed renders O(visible), the edge
    // index makes dependency layout O(log n + visible), and the entry's
    // cached composite list replaces the per-render overlap sweep; bytes
    // are identical with or without any of them, so all stay out of the
    // cache key.
    options.task_index = &entry->index;
    options.edge_index = &entry->edges;
    options.assume_validated = true;  // entries validate at ingest
    if (!entry->edges.empty() &&
        options.style.edges != render::EdgeMode::kOff) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.edge_renders;
    }
    std::shared_ptr<const std::vector<model::Composite>> composites;
    if (options.style.show_composites && options.style.type_filter.empty() &&
        !options.style.time_window) {
      composites = entry->composites(util::resolve_threads(options.threads));
      options.composites = composites.get();
    }
    std::string bytes = render::render_to_bytes(entry->schedule(), options,
                                                format);
    const std::size_t raw = bytes.size();
    return Made{std::move(bytes), raw};
  });
}

RenderService::Artifact RenderService::render_tile(
    const EntryPtr& entry, long long x, long long y, int zoom,
    render::RenderOptions options) {
  JED_ASSERT(entry != nullptr);
  if (zoom < 0 || zoom > 30) {
    throw ArgumentError("zoom must be in [0, 30] (got " +
                        std::to_string(zoom) + ")");
  }
  const long long tiles = 1ll << zoom;
  if (x < 0 || x >= tiles) {
    throw ArgumentError("tile x must be in [0, 2^zoom) (got " +
                        std::to_string(x) + " at zoom " +
                        std::to_string(zoom) + ")");
  }
  const auto& clusters = entry->schedule().clusters();
  if (y >= static_cast<long long>(clusters.size())) {
    throw ArgumentError("tile y must be a cluster row in [0, " +
                        std::to_string(clusters.size()) + ") or omitted");
  }
  if (options.threads <= 0) options.threads = opt_.threads;

  const model::TimeRange full = entry->full_range;
  const double step = full.length() / static_cast<double>(tiles);
  options.style.time_window = model::TimeRange{
      full.begin + step * static_cast<double>(x),
      x + 1 == tiles ? full.end : full.begin + step * static_cast<double>(x + 1)};
  if (y >= 0) {
    options.style.cluster_filter = {clusters[static_cast<std::size_t>(y)].id};
  }

  Fnv req;
  req.str("tile.png");
  req.u64(options_digest(options));
  const Key key{entry->content_hash, req.h};
  return cached(key, media_type_for("png"), Encoding::identity, [&] {
    render::TileCache::Request tile_req;
    tile_req.schedule = &entry->schedule();
    tile_req.colormap = &options.colormap;
    tile_req.style = options.style;
    tile_req.index = &entry->index;
    tile_req.edge_index = &entry->edges;
    tile_req.colormap_epoch = colormap_epoch(options.colormap);
    tile_req.validated = true;
    std::lock_guard<std::mutex> lock(tile_mu_);
    const render::Framebuffer fb = tiles_.render_frame(tile_req);
    const auto& frame = tiles_.last_frame();
    if (frame.edges_considered > 0 || frame.edge_heat_panels > 0) {
      std::lock_guard<std::mutex> stats_lock(mu_);
      ++stats_.edge_renders;
      stats_.edge_arrows += frame.edge_arrows;
      stats_.edge_heat_frames += frame.edge_heat_panels > 0 ? 1 : 0;
    }
    std::string bytes =
        render::encode_png(fb, util::resolve_threads(options.threads));
    const std::size_t raw = bytes.size();
    return Made{std::move(bytes), raw};
  });
}

RenderService::Artifact RenderService::cached(
    const Key& key, const std::string& media_type, Encoding encoding,
    const std::function<Made()>& make) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = cache_.find(key);
      if (it == cache_.end()) break;  // we render it
      if (it->second.bytes != nullptr) {
        ++stats_.artifact_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        return {it->second.bytes, it->second.media_type, true,
                it->second.raw_size, encoding};
      }
      // Another thread is rendering this key: wait for it instead of
      // duplicating the work (single-flight). If the renderer fails, its
      // slot disappears and the loop retries — possibly becoming the
      // renderer itself.
      slot_ready_.wait(lock);
    }
    ++stats_.artifact_misses;
    cache_.emplace(key, Slot{nullptr, media_type, 0, lru_.end()});
  }

  std::shared_ptr<const std::string> bytes;
  std::size_t raw_size = 0;
  try {
    Made made = make();
    raw_size = made.raw_size;
    bytes = std::make_shared<const std::string>(std::move(made.bytes));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cache_.erase(key);
    }
    slot_ready_.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    JED_ASSERT(it != cache_.end() && it->second.bytes == nullptr);
    it->second.bytes = bytes;
    it->second.raw_size = raw_size;
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    cached_bytes_ += bytes->size();
    evict_over_budget_locked();
  }
  slot_ready_.notify_all();
  return {std::move(bytes), media_type, false, raw_size, encoding};
}

void RenderService::evict_over_budget_locked() {
  auto over = [this] {
    return (opt_.artifact_entries != 0 && lru_.size() > opt_.artifact_entries) ||
           (opt_.artifact_bytes != 0 && cached_bytes_ > opt_.artifact_bytes);
  };
  // Only completed slots live in lru_, so pending renders are never
  // evicted; the newest artifact always survives its own insertion.
  while (lru_.size() > 1 && over()) {
    const Key victim = lru_.back();
    auto it = cache_.find(victim);
    JED_ASSERT(it != cache_.end() && it->second.bytes != nullptr);
    cached_bytes_ -= it->second.bytes->size();
    cache_.erase(it);
    lru_.pop_back();
    ++stats_.artifact_evictions;
  }
}

RenderService::Stats RenderService::stats() const {
  RenderService::Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    s.artifact_entries = lru_.size();
    s.artifact_bytes = cached_bytes_;
  }
  {
    std::lock_guard<std::mutex> lock(tile_mu_);
    s.tile = tiles_.stats();
  }
  return s;
}

}  // namespace jedule::engine
