#pragma once

// engine::SessionState — one interactive view over a store entry.
//
// This is the stateful half of what used to be interactive::Session: the
// current window/zoom/selection, the active colormap, the lazily
// recomputed layout, and the per-view TileCache with its frame log. The
// schedule itself is NOT owned here — SessionState holds a
// shared_ptr<const ScheduleEntry>, so many sessions (and the serve
// frontends) can view one ingested schedule without copies, and the view
// survives the store evicting the entry. interactive::Session is now a
// thin script/REPL frontend over this class.
//
// View operations clamp degenerate input (zero/denormal zoom spans, pans
// past the schedule bounds) instead of producing NaN geometry; see the
// per-method comments.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/render/frame_profile.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/tile_cache.hpp"

namespace jedule::engine {

class SessionState {
 public:
  SessionState(EntryPtr entry, color::ColorMap colormap,
               render::GanttStyle style);

  const EntryPtr& entry() const { return entry_; }
  const model::Schedule& schedule() const { return entry_->schedule(); }
  const model::TaskIndex& index() const { return entry_->index; }
  const render::GanttStyle& style() const { return style_; }
  const color::ColorMap& colormap() const { return colormap_; }

  /// Swaps in new content (reread) while keeping the current view.
  void reset_entry(EntryPtr entry);

  /// Current layout (recomputed lazily after every view change).
  const render::GanttLayout& layout();

  model::TimeRange current_window() const;

  // -- view operations ------------------------------------------------

  /// Wheel zoom: shrink (factor > 1) or grow (factor < 1) the time window
  /// by `factor`, keeping the time at `center_frac` (0..1 across the panel
  /// width) fixed. Throws ArgumentError on factor <= 0 or NaN; the
  /// resulting span is clamped to sane bounds otherwise.
  void zoom(double factor, double center_frac = 0.5);

  /// Rectangle-selection zoom: window = the time span between two pixel
  /// x-coordinates. Pixels outside panels clamp to the panel edges;
  /// reversed or empty selections clamp to a minimal span (never throw).
  void zoom_to_pixels(double x0, double x1);

  /// Explicit window in schedule time units. Reversed bounds swap, empty
  /// windows expand to a minimal span; non-finite bounds throw.
  void zoom_to_time(double t0, double t1);

  /// Drag: shift the current window by `dt` time units (positive = later).
  /// Clamped so the window always touches the schedule's time range.
  void pan(double dt);

  /// Drop zoom and cluster selection.
  void reset_view();

  void select_clusters(std::vector<int> cluster_ids);
  void select_all_clusters();
  void set_type_filter(std::vector<std::string> types);

  void set_view_mode(model::ViewMode mode);
  void set_colormap(color::ColorMap colormap);
  void set_grayscale(bool on);
  void set_lod(render::LodMode mode);
  void set_edges(render::EdgeMode mode);
  /// Arrow budget per pixel column before the view switches to heat
  /// lanes; throws ArgumentError unless strictly positive.
  void set_edge_density(int per_column);

  // -- frames -----------------------------------------------------------

  /// Renders the current view through the tile cache and returns the
  /// frame; a pan after a rendered frame re-rasterizes only the exposed
  /// strip. Per-frame timings land in frame_log().
  const render::Framebuffer& frame();

  const render::profile::FrameLog& frame_log() const { return frame_log_; }

 private:
  void invalidate() { layout_.reset(); }
  /// Clamps (length, then position) and installs a time window.
  void set_window(double t0, double t1);

  EntryPtr entry_;
  color::ColorMap colormap_;
  color::ColorMap original_colormap_;
  bool grayscale_ = false;
  render::GanttStyle style_;
  std::optional<render::GanttLayout> layout_;

  render::TileCache cache_;
  std::optional<render::Framebuffer> frame_;
  render::profile::FrameLog frame_log_;
  std::uint64_t colormap_epoch_ = 0;
};

}  // namespace jedule::engine
