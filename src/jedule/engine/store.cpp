#include "jedule/engine/store.hpp"

#include <utility>

#include "jedule/io/file.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/util/error.hpp"

namespace jedule::engine {

namespace {

model::Schedule validated(model::Schedule schedule) {
  schedule.validate();
  return schedule;
}

std::string hex_id(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[static_cast<std::size_t>(i)] = kDigits[hash & 0xf];
    hash >>= 4;
  }
  return id;
}

}  // namespace

ScheduleEntry::ScheduleEntry(model::Schedule schedule_in,
                             std::string source_in)
    : source(std::move(source_in)), schedule(validated(std::move(schedule_in))),
      index(schedule) {
  content_hash = index.content_hash();
  id = hex_id(content_hash);
  if (const auto range = index.time_range()) full_range = *range;
}

EntryPtr make_entry(model::Schedule schedule, std::string source) {
  return std::make_shared<const ScheduleEntry>(std::move(schedule),
                                               std::move(source));
}

EntryPtr parse_entry(std::string content, const std::string& name_hint,
                     const std::string& format) {
  return make_entry(io::parse_schedule(std::move(content), name_hint, format),
                    name_hint);
}

EntryPtr load_entry(const std::string& path, const std::string& format) {
  return make_entry(io::load_schedule(path, format), path);
}

ScheduleStore::PutResult ScheduleStore::put(EntryPtr entry) {
  JED_ASSERT(entry != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  if (auto it = entries_.find(entry->id); it != entries_.end()) {
    ++stats_.dedup_hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return {it->second.entry, true};
  }
  lru_.push_front(entry->id);
  tasks_ += entry->schedule.tasks().size();
  entries_.emplace(entry->id, Slot{entry, lru_.begin()});
  evict_over_budget_locked();
  return {std::move(entry), false};
}

EntryPtr ScheduleStore::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.lookup_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.entry;
}

bool ScheduleStore::erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  tasks_ -= it->second.entry->schedule.tasks().size();
  lru_.erase(it->second.lru);
  entries_.erase(it);
  return true;
}

std::vector<EntryPtr> ScheduleStore::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryPtr> out;
  out.reserve(entries_.size());
  for (const auto& id : lru_) out.push_back(entries_.at(id).entry);
  return out;
}

ScheduleStore::Stats ScheduleStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  s.tasks = tasks_;
  return s;
}

void ScheduleStore::evict_over_budget_locked() {
  auto over = [this] {
    return (opt_.max_entries != 0 && entries_.size() > opt_.max_entries) ||
           (opt_.max_tasks != 0 && tasks_ > opt_.max_tasks);
  };
  // Never evict the most recent entry: the one just put() must survive its
  // own admission even when it alone exceeds the task budget.
  while (entries_.size() > 1 && over()) {
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    tasks_ -= it->second.entry->schedule.tasks().size();
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace jedule::engine
