#include "jedule/engine/store.hpp"

#include <algorithm>
#include <utility>

#include "jedule/io/file.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/fnv.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::engine {

namespace {

model::Schedule validated(model::Schedule schedule) {
  schedule.validate();
  return schedule;
}

std::string hex_id(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[static_cast<std::size_t>(i)] = kDigits[hash & 0xf];
    hash >>= 4;
  }
  return id;
}

// Rough resident footprint of a materialized AoS schedule; exact
// accounting would walk every string's capacity, which isn't worth it for
// a /stats gauge. Computed once when the materialization happens.
std::size_t estimate_schedule_bytes(const model::Schedule& s) {
  std::size_t n = s.tasks().capacity() * sizeof(model::Task);
  for (const auto& t : s.tasks()) {
    n += t.id().size();
    for (const auto& cfg : t.configurations()) {
      n += sizeof(model::Configuration) +
           cfg.hosts.size() * sizeof(model::HostRange);
    }
    for (const auto& [k, v] : t.properties()) n += k.size() + v.size();
  }
  return n;
}

// The entry's identity hash: the task hash folded with the edge hash when
// edges exist — the same fold as ScheduleArena::combined_hash, so AoS,
// snapshot and append ingest all agree on the id of identical content.
std::uint64_t combined_hash_of(std::uint64_t tasks_hash,
                               const model::EdgeIndex& edges) {
  if (edges.empty()) return tasks_hash;
  std::uint64_t h = tasks_hash;
  model::detail::fnv_u64(&h, edges.edges_hash());
  model::detail::fnv_u64(&h, edges.edge_count());
  return h;
}

}  // namespace

ScheduleEntry::ScheduleEntry(model::Schedule schedule_in,
                             std::string source_in, io::IngestStats ingest_in)
    : source(std::move(source_in)), ingest(std::move(ingest_in)) {
  schedule_ = std::make_shared<const model::Schedule>(
      validated(std::move(schedule_in)));
  // The parse's worker count also sizes the index build: per-cluster
  // segments sort concurrently, output identical at any thread count.
  index = model::TaskIndex(*schedule_, std::max(1, ingest.threads));
  if (!schedule_->dependencies().empty()) {
    edges = model::EdgeIndex(*schedule_, std::max(1, ingest.threads));
  }
  content_hash = combined_hash_of(index.content_hash(), edges);
  id = hex_id(content_hash);
  if (const auto range = index.time_range()) full_range = *range;
  aos_bytes_ = estimate_schedule_bytes(*schedule_);
  first_new_ = task_count();
}

ScheduleEntry::ScheduleEntry(io::Snapshot snapshot, std::string source_in)
    : source(std::move(source_in)),
      index(std::move(snapshot.index)),
      edges(std::move(snapshot.edges)) {
  auto arena =
      std::make_shared<model::ScheduleArena>(std::move(snapshot.arena));
  // parse_snapshot checked structure and hashes; the numeric invariants
  // (time sanity, overlaps, host bounds) still run as column sweeps.
  // Duplicate-id certification happened at save time and is re-seeded
  // lazily by the first append, so reopening a million-task snapshot
  // never hashes a million id strings.
  arena->validate_columns();
  arena_ = std::move(arena);
  content_hash = combined_hash_of(index.content_hash(), edges);
  id = hex_id(content_hash);
  if (const auto range = index.time_range()) full_range = *range;
  first_new_ = task_count();
}

ScheduleEntry::ScheduleEntry(
    const ScheduleEntry& base,
    const std::vector<model::ScheduleArena::Event>& events)
    : source(base.source) {
  auto arena = std::make_shared<model::ScheduleArena>(base.arena());
  const std::size_t first = arena->task_count();
  arena->append(events);  // throws ValidationError, base untouched
  arena_ = std::move(arena);
  index = model::TaskIndex(base.index, *arena_, first);
  if (arena_->dep_count() > 0) {
    // Built entries have a non-empty edge index exactly when edges exist,
    // so a non-empty base extends in O(delta); the rare first-ever edge
    // arriving via append pays one full build.
    edges = base.edges.empty()
                ? model::EdgeIndex(*arena_)
                : model::EdgeIndex(base.edges, *arena_, first);
  }
  content_hash = combined_hash_of(index.content_hash(), edges);
  id = hex_id(content_hash);
  if (const auto range = index.time_range()) full_range = *range;
  first_new_ = first;
  {
    // Only adopt a composite list the base actually computed — never
    // force one into existence just to extend it.
    std::lock_guard<std::mutex> lock(base.lazy_mu_);
    base_composites_ = base.composites_;
  }
}

std::size_t ScheduleEntry::cluster_count() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  return arena_ ? arena_->clusters().size() : schedule_->clusters().size();
}

const model::Schedule& ScheduleEntry::schedule_locked() const {
  if (!schedule_) {
    schedule_ =
        std::make_shared<const model::Schedule>(arena_->to_schedule());
    aos_bytes_ = estimate_schedule_bytes(*schedule_);
  }
  return *schedule_;
}

const model::Schedule& ScheduleEntry::schedule() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  return schedule_locked();
}

const model::ScheduleArena& ScheduleEntry::arena() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (!arena_) {
    arena_ = std::make_shared<const model::ScheduleArena>(*schedule_);
  }
  return *arena_;
}

std::shared_ptr<const std::vector<model::Composite>> ScheduleEntry::composites(
    int threads) const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (composites_) return composites_;
  const model::Schedule& s = schedule_locked();
  std::vector<model::Composite> list;
  if (base_composites_ != nullptr) {
    list = model::append_composites(s, index, *base_composites_, first_new_,
                                    nullptr, threads);
  } else {
    list = model::synthesize_composites(s, nullptr, threads);
  }
  composites_ =
      std::make_shared<const std::vector<model::Composite>>(std::move(list));
  base_composites_.reset();
  return composites_;
}

ScheduleEntry::Resident ScheduleEntry::resident() const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  Resident r;
  if (arena_) {
    r.mmap_bytes = arena_->mmap_bytes();
    r.heap_bytes = arena_->heap_bytes();
  }
  if (schedule_) r.heap_bytes += aos_bytes_;
  if (composites_) {
    r.heap_bytes += composites_->size() * sizeof(model::Composite);
  }
  r.heap_bytes += edges.heap_bytes();
  return r;
}

EntryPtr make_entry(model::Schedule schedule, std::string source,
                    io::IngestStats ingest) {
  return std::make_shared<const ScheduleEntry>(
      std::move(schedule), std::move(source), std::move(ingest));
}

EntryPtr parse_entry(std::string content, const std::string& name_hint,
                     const std::string& format, const io::IngestOptions& opt) {
  io::IngestStats stats;
  model::Schedule schedule =
      io::parse_schedule(std::move(content), name_hint, format, opt, &stats);
  return make_entry(std::move(schedule), name_hint, std::move(stats));
}

EntryPtr load_entry(const std::string& path, const std::string& format,
                    const io::IngestOptions& opt) {
  if ((format.empty() && util::ends_with(path, ".jbin")) ||
      format == "jbin") {
    return std::make_shared<const ScheduleEntry>(io::load_snapshot(path),
                                                 path);
  }
  io::IngestStats stats;
  model::Schedule schedule = io::load_schedule(path, format, opt, &stats);
  return make_entry(std::move(schedule), path, std::move(stats));
}

EntryPtr append_entry(const EntryPtr& base,
                      const std::vector<model::ScheduleArena::Event>& events) {
  JED_ASSERT(base != nullptr);
  return std::make_shared<const ScheduleEntry>(*base, events);
}

ScheduleStore::PutResult ScheduleStore::put(EntryPtr entry) {
  JED_ASSERT(entry != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  if (auto it = entries_.find(entry->id); it != entries_.end()) {
    ++stats_.dedup_hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return {it->second.entry, true};
  }
  lru_.push_front(entry->id);
  tasks_ += entry->task_count();
  entries_.emplace(entry->id, Slot{entry, lru_.begin()});
  evict_over_budget_locked();
  return {std::move(entry), false};
}

EntryPtr ScheduleStore::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.lookup_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return it->second.entry;
}

bool ScheduleStore::erase(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  tasks_ -= it->second.entry->task_count();
  lru_.erase(it->second.lru);
  entries_.erase(it);
  return true;
}

std::vector<EntryPtr> ScheduleStore::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EntryPtr> out;
  out.reserve(entries_.size());
  for (const auto& id : lru_) out.push_back(entries_.at(id).entry);
  return out;
}

ScheduleStore::Stats ScheduleStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  s.tasks = tasks_;
  for (const auto& [id, slot] : entries_) {
    const ScheduleEntry::Resident r = slot.entry->resident();
    s.resident_mmap_bytes += r.mmap_bytes;
    s.resident_heap_bytes += r.heap_bytes;
    s.ingest_mapped_bytes += slot.entry->ingest.mapped_bytes;
  }
  return s;
}

void ScheduleStore::evict_over_budget_locked() {
  auto over = [this] {
    return (opt_.max_entries != 0 && entries_.size() > opt_.max_entries) ||
           (opt_.max_tasks != 0 && tasks_ > opt_.max_tasks);
  };
  // Never evict the most recent entry: the one just put() must survive its
  // own admission even when it alone exceeds the task budget.
  while (entries_.size() > 1 && over()) {
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    tasks_ -= it->second.entry->task_count();
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace jedule::engine
