#pragma once

// One render-option parser for every frontend. The CLI used to build
// RenderOptions in cli/main.cpp, the view loop re-parsed `lod`/`window`
// arguments in Session::execute, and `jedule serve` would have added a
// third copy for HTTP query parameters. Instead, every frontend adapts its
// key/value source (flag map, script words, query string) to an
// OptionLookup and gets the same validation and the same error messages.
//
// Option names are the CLI flag names without dashes: width, height,
// aligned, window, clusters, types, highlight, lod, edges, edge-density,
// grayscale, cmap, no-composites, no-labels, hatch-composites, threads.

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/options.hpp"

namespace jedule::engine {

/// Returns the raw value set for an option name, or nullopt when the
/// caller did not set it. Boolean options may map to an empty string
/// (a bare CLI flag counts as true).
using OptionLookup =
    std::function<std::optional<std::string>(const std::string&)>;

// -- scalar parsers (shared error messages) ----------------------------

/// "auto" | "off" | "force"; throws ArgumentError otherwise.
render::LodMode parse_lod_mode(std::string_view value);

/// "auto" | "off" | "force" for dependency-edge rendering; throws
/// ArgumentError otherwise.
render::EdgeMode parse_edge_mode(std::string_view value);

/// "T0:T1" with finite T1 > T0; throws ArgumentError otherwise.
model::TimeRange parse_time_window(std::string_view value);

/// Comma-separated integer cluster ids; throws ArgumentError otherwise.
std::vector<int> parse_cluster_ids(std::string_view value);

/// Strictly positive integer; `name` labels the error message.
int parse_positive_int(std::string_view value, const std::string& name);

/// Boolean option value: unset -> false; "", "1", "true", "on", "yes" ->
/// true; "0", "false", "off", "no" -> false; anything else throws.
bool parse_bool(const std::optional<std::string>& value,
                const std::string& name);

// -- aggregate builders ------------------------------------------------

/// Style from the options listed above (everything except cmap/grayscale
/// and threads). Unset options keep the GanttStyle defaults.
render::GanttStyle style_from_options(const OptionLookup& get);

/// Colormap from "cmap" (a colormap-XML path; falls back to the built-in
/// standard map) and "grayscale".
color::ColorMap colormap_from_options(const OptionLookup& get);

/// Complete RenderOptions: style + colormap + "threads". When
/// `allow_cmap_file` is false the "cmap" option is rejected instead of
/// read — the HTTP frontend must not turn a query parameter into a
/// server-side file read.
render::RenderOptions render_options_from(const OptionLookup& get,
                                          bool allow_cmap_file = true);

}  // namespace jedule::engine
