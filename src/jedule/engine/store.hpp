#pragma once

// jedule::engine — the frontend-neutral core the CLI, the interactive view
// loop and `jedule serve` all sit on (DESIGN.md §4f). This header owns the
// schedule side: an ingested schedule becomes one immutable, shareable
// ScheduleEntry (validated schedule + spatial index + content hash), and
// ScheduleStore keeps entries addressable by content hash so identical
// uploads deduplicate and every frontend views the same object.
//
// Ownership model: entries are immutable after construction and handed out
// as shared_ptr<const ScheduleEntry>. The store's LRU eviction only drops
// its own reference — a Session viewing the entry or a render in flight
// keeps it alive, so eviction can never invalidate an ongoing request.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"

namespace jedule::engine {

/// One ingested schedule: validated once, indexed once, hashed once.
/// Everything downstream (layout culling, tile caching, artifact caching,
/// dedup) keys off `content_hash`; `id` is its 16-digit hex spelling and
/// doubles as the HTTP resource name.
struct ScheduleEntry {
  ScheduleEntry(model::Schedule schedule_in, std::string source_in);

  std::string id;
  std::uint64_t content_hash = 0;
  std::string source;  // originating path / upload name hint (may be empty)
  model::Schedule schedule;
  model::TaskIndex index;
  model::TimeRange full_range{0, 1};  // {0, 1} for an empty schedule
};

using EntryPtr = std::shared_ptr<const ScheduleEntry>;

/// Wraps an in-memory schedule: validates, builds the index, hashes.
/// Throws ValidationError on an invalid schedule.
EntryPtr make_entry(model::Schedule schedule, std::string source = "");

/// Parses in-memory trace bytes (gzip-sniffed, io::parse_schedule) into an
/// entry — the `jedule serve` upload path.
EntryPtr parse_entry(std::string content, const std::string& name_hint = "",
                     const std::string& format = "");

/// Loads a schedule file into an entry — the CLI / Session path.
EntryPtr load_entry(const std::string& path, const std::string& format = "");

/// Content-hash-addressed in-memory schedule store. put() deduplicates by
/// hash (re-uploading a trace is a cheap no-op returning the existing
/// entry); capacity overruns evict least-recently-used entries. All
/// methods are thread-safe.
class ScheduleStore {
 public:
  struct Options {
    /// Entry-count ceiling; 0 disables the limit.
    std::size_t max_entries = 64;
    /// Total-task ceiling across entries (the store's real memory driver);
    /// 0 disables the limit. A single over-budget entry is still admitted
    /// (the alternative — refusing it — would make the limit a correctness
    /// knob instead of a memory knob).
    std::size_t max_tasks = 8000000;
  };

  struct PutResult {
    EntryPtr entry;           // the stored entry (the existing one on dedup)
    bool deduplicated = false;
  };

  struct Stats {
    std::size_t entries = 0;
    std::size_t tasks = 0;
    std::uint64_t puts = 0;
    std::uint64_t dedup_hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lookups = 0;
    std::uint64_t lookup_misses = 0;
  };

  ScheduleStore() = default;
  explicit ScheduleStore(Options opt) : opt_(opt) {}

  /// Admits `entry`, deduplicating against its content hash, then evicts
  /// LRU entries until the store is back under its limits.
  PutResult put(EntryPtr entry);

  /// Entry by id (hex content hash), or nullptr; a hit refreshes LRU.
  EntryPtr find(const std::string& id) const;

  /// Removes the entry; returns whether it existed.
  bool erase(const std::string& id);

  /// Every stored entry, most recently used first.
  std::vector<EntryPtr> list() const;

  Stats stats() const;

 private:
  void evict_over_budget_locked();

  Options opt_;
  mutable std::mutex mu_;
  // Keyed by entry id; the list orders ids most-recently-used first.
  mutable std::list<std::string> lru_;
  struct Slot {
    EntryPtr entry;
    std::list<std::string>::iterator lru;
  };
  mutable std::map<std::string, Slot> entries_;
  mutable Stats stats_;
  std::size_t tasks_ = 0;
};

}  // namespace jedule::engine
