#pragma once

// jedule::engine — the frontend-neutral core the CLI, the interactive view
// loop and `jedule serve` all sit on (DESIGN.md §4f). This header owns the
// schedule side: an ingested schedule becomes one immutable, shareable
// ScheduleEntry (validated schedule + spatial index + content hash), and
// ScheduleStore keeps entries addressable by content hash so identical
// uploads deduplicate and every frontend views the same object.
//
// Ownership model: entries are immutable after construction and handed out
// as shared_ptr<const ScheduleEntry>. The store's LRU eviction only drops
// its own reference — a Session viewing the entry or a render in flight
// keeps it alive, so eviction can never invalidate an ongoing request.

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "jedule/io/ingest.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/model/arena.hpp"
#include "jedule/model/composite.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"

namespace jedule::engine {

/// One ingested schedule: validated once, indexed once, hashed once.
/// Everything downstream (layout culling, tile caching, artifact caching,
/// dedup) keys off `content_hash`; `id` is its 16-digit hex spelling and
/// doubles as the HTTP resource name.
///
/// An entry carries up to two representations of the task table: the AoS
/// model::Schedule (what layout and the exporters consume) and the
/// columnar model::ScheduleArena (what snapshots and the live-append path
/// produce). Each materializes lazily from the other on first use, so a
/// `.jbin` load stays a zero-copy validation pass over the mapping until
/// someone actually renders, and an appended entry defers the O(n) AoS
/// rebuild the same way. The identity surface (id, content_hash, index,
/// full_range) is always eager.
struct ScheduleEntry {
  /// AoS ingest (parser output): validates, indexes, hashes. `ingest_in`
  /// records what the parse did (threads, chunks, gzip, mapped input);
  /// its thread count also drives the parallel TaskIndex build.
  ScheduleEntry(model::Schedule schedule_in, std::string source_in,
                io::IngestStats ingest_in = {});

  /// Snapshot ingest: adopts the loaded (possibly mmapped) columns and
  /// prebuilt index; runs the columnar semantic validation, never the
  /// AoS materialization.
  ScheduleEntry(io::Snapshot snapshot, std::string source_in);

  /// O(delta) append: flat-copies the base's columns, appends and
  /// validates only `events`, and extends index/hash incrementally.
  /// Throws ValidationError (base unchanged) on invalid events.
  ScheduleEntry(const ScheduleEntry& base,
                const std::vector<model::ScheduleArena::Event>& events);

  std::string id;
  /// Identity of the entry's full content: the task-column hash folded
  /// with the dependency-edge hash when edges exist (equal to the task
  /// hash otherwise, so edge-free ids match pre-edge builds). Everything
  /// keyed off it — artifact caches, tile caches, ETags — invalidates
  /// when either tasks or edges change.
  std::uint64_t content_hash = 0;
  std::string source;  // originating path / upload name hint (may be empty)
  /// How this entry was ingested (io::IngestStats; default-empty for
  /// snapshot and append entries, which never ran a text parse).
  io::IngestStats ingest;
  model::TaskIndex index;
  /// Dependency-edge index; empty when the schedule carries no edges
  /// (built only when dependencies exist, so edge-free ingest pays
  /// nothing).
  model::EdgeIndex edges;
  model::TimeRange full_range{0, 1};  // {0, 1} for an empty schedule

  std::size_t task_count() const { return index.task_count(); }

  /// Cluster count without forcing a representation into existence.
  std::size_t cluster_count() const;

  /// The AoS schedule, materialized from the columns on first use.
  const model::Schedule& schedule() const;

  /// The columnar arena, built from the AoS schedule on first use.
  const model::ScheduleArena& arena() const;

  /// The unfiltered composite list (synthesized on first use; append
  /// entries extend their base's already-computed list in O(tail) via
  /// model::append_composites instead of resweeping).
  std::shared_ptr<const std::vector<model::Composite>> composites(
      int threads = 1) const;

  /// Resident-memory accounting for /stats: bytes still served straight
  /// off a snapshot mapping vs heap bytes (columns + index-visible copies
  /// + the AoS/composite materializations once they exist).
  struct Resident {
    std::size_t mmap_bytes = 0;
    std::size_t heap_bytes = 0;
  };
  Resident resident() const;

 private:
  const model::Schedule& schedule_locked() const;

  mutable std::mutex lazy_mu_;
  mutable std::shared_ptr<const model::Schedule> schedule_;
  mutable std::shared_ptr<const model::ScheduleArena> arena_;
  mutable std::shared_ptr<const std::vector<model::Composite>> composites_;
  mutable std::size_t aos_bytes_ = 0;  // estimate, set at materialization
  // Append provenance: the base's composite list (when it was already
  // computed) and the first appended task index, so composites() can
  // extend instead of resynthesize.
  mutable std::shared_ptr<const std::vector<model::Composite>>
      base_composites_;
  std::size_t first_new_ = 0;
};

using EntryPtr = std::shared_ptr<const ScheduleEntry>;

/// Wraps an in-memory schedule: validates, builds the index, hashes.
/// Throws ValidationError on an invalid schedule.
EntryPtr make_entry(model::Schedule schedule, std::string source = "",
                    io::IngestStats ingest = {});

/// Parses in-memory trace bytes (gzip-sniffed, io::parse_schedule) into an
/// entry — the `jedule serve` upload path. `opt` drives the chunked
/// parallel parse (0 threads = JEDULE_THREADS / hardware); the entry is
/// bit-identical at any thread count.
EntryPtr parse_entry(std::string content, const std::string& name_hint = "",
                     const std::string& format = "",
                     const io::IngestOptions& opt = {});

/// Loads a schedule file into an entry — the CLI / Session path. `.jbin`
/// snapshots take the zero-copy route: the file is mmapped and admitted
/// as columns + prebuilt index with no parse and no AoS materialization.
/// Text formats memory-map the input and parse chunked per `opt`.
EntryPtr load_entry(const std::string& path, const std::string& format = "",
                    const io::IngestOptions& opt = {});

/// Appends live-trace events to an existing entry, producing a new entry
/// (entries are immutable; the new id reflects the new content hash).
/// O(delta) except for one flat column copy.
EntryPtr append_entry(const EntryPtr& base,
                      const std::vector<model::ScheduleArena::Event>& events);

/// Content-hash-addressed in-memory schedule store. put() deduplicates by
/// hash (re-uploading a trace is a cheap no-op returning the existing
/// entry); capacity overruns evict least-recently-used entries. All
/// methods are thread-safe.
class ScheduleStore {
 public:
  struct Options {
    /// Entry-count ceiling; 0 disables the limit.
    std::size_t max_entries = 64;
    /// Total-task ceiling across entries (the store's real memory driver);
    /// 0 disables the limit. A single over-budget entry is still admitted
    /// (the alternative — refusing it — would make the limit a correctness
    /// knob instead of a memory knob).
    std::size_t max_tasks = 8000000;
  };

  struct PutResult {
    EntryPtr entry;           // the stored entry (the existing one on dedup)
    bool deduplicated = false;
  };

  struct Stats {
    std::size_t entries = 0;
    std::size_t tasks = 0;
    /// Resident bytes across entries, split by backing: bytes still
    /// served off snapshot mappings vs heap allocations (see
    /// ScheduleEntry::resident).
    std::size_t resident_mmap_bytes = 0;
    std::size_t resident_heap_bytes = 0;
    /// Bytes of memory-mapped *input files* across stored entries (the
    /// ingest-time mapping; freed once parsing finished, reported for
    /// observability of the mmap ingest path).
    std::size_t ingest_mapped_bytes = 0;
    std::uint64_t puts = 0;
    std::uint64_t dedup_hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t lookups = 0;
    std::uint64_t lookup_misses = 0;
  };

  ScheduleStore() = default;
  explicit ScheduleStore(Options opt) : opt_(opt) {}

  /// Admits `entry`, deduplicating against its content hash, then evicts
  /// LRU entries until the store is back under its limits.
  PutResult put(EntryPtr entry);

  /// Entry by id (hex content hash), or nullptr; a hit refreshes LRU.
  EntryPtr find(const std::string& id) const;

  /// Removes the entry; returns whether it existed.
  bool erase(const std::string& id);

  /// Every stored entry, most recently used first.
  std::vector<EntryPtr> list() const;

  Stats stats() const;

 private:
  void evict_over_budget_locked();

  Options opt_;
  mutable std::mutex mu_;
  // Keyed by entry id; the list orders ids most-recently-used first.
  mutable std::list<std::string> lru_;
  struct Slot {
    EntryPtr entry;
    std::list<std::string>::iterator lru;
  };
  mutable std::map<std::string, Slot> entries_;
  mutable Stats stats_;
  std::size_t tasks_ = 0;
};

}  // namespace jedule::engine
