#include "jedule/engine/session_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"

namespace jedule::engine {

using model::TimeRange;

namespace {

render::TileCache::Options cache_options() {
  render::TileCache::Options opt;
  opt.threads = util::resolve_threads(0);
  return opt;
}

}  // namespace

SessionState::SessionState(EntryPtr entry, color::ColorMap colormap,
                           render::GanttStyle style)
    : entry_(std::move(entry)),
      colormap_(colormap),
      original_colormap_(std::move(colormap)),
      style_(std::move(style)),
      cache_(cache_options()) {
  JED_ASSERT(entry_ != nullptr);
}

void SessionState::reset_entry(EntryPtr entry) {
  JED_ASSERT(entry != nullptr);
  entry_ = std::move(entry);
  // The tile cache keys on the content hash, so identical content keeps
  // its tiles; changed content re-rasterizes. Reset the grid anyway: the
  // old anchor was chosen for the old content's bounds.
  cache_.invalidate();
  invalidate();
}

const render::GanttLayout& SessionState::layout() {
  if (!layout_) {
    render::LayoutHints hints;
    hints.index = &entry_->index;
    hints.edge_index = &entry_->edges;
    hints.assume_validated = true;  // entries validate at ingest
    hints.interactive = true;
    layout_ = render::layout_gantt(schedule(), colormap_, style_,
                                   /*threads=*/1, hints);
  }
  return *layout_;
}

TimeRange SessionState::current_window() const {
  if (style_.time_window) return *style_.time_window;
  return entry_->full_range;
}

void SessionState::set_window(double t0, double t1) {
  if (!std::isfinite(t0) || !std::isfinite(t1)) {
    throw ArgumentError("window bounds must be finite");
  }
  if (t1 < t0) std::swap(t0, t1);

  const TimeRange full_range = entry_->full_range;
  // Length clamp: never below ~1e-12 of the schedule span (zero or
  // denormal zoom spans would collapse the pixel mapping to NaN/inf) and
  // never above 16x of it (runaway zoom-out).
  const double span = full_range.length() > 0 ? full_range.length() : 1.0;
  const double min_len = span * 1e-12;
  const double max_len = span * 16.0;
  double len = t1 - t0;
  if (!(len >= min_len)) {
    const double c = 0.5 * (t0 + t1);
    t0 = c - min_len / 2;
    t1 = c + min_len / 2;
    if (!(t1 > t0)) {  // c so large that c +/- min_len/2 rounds back to c
      t1 = std::nextafter(t0, std::numeric_limits<double>::max());
    }
  } else if (len > max_len) {
    const double c = 0.5 * (t0 + t1);
    t0 = c - max_len / 2;
    t1 = c + max_len / 2;
  }

  // Position clamp: the window must touch [begin, end] of the schedule
  // (panning past the ends slides along the boundary instead of showing
  // arbitrary empty space).
  if (t0 > full_range.end) {
    const double d = t0 - full_range.end;
    t0 -= d;
    t1 -= d;
  } else if (t1 < full_range.begin) {
    const double d = full_range.begin - t1;
    t0 += d;
    t1 += d;
  }

  style_.time_window = TimeRange{t0, t1};
  invalidate();
}

void SessionState::zoom(double factor, double center_frac) {
  if (!(factor > 0)) throw ArgumentError("zoom factor must be positive");
  if (!std::isfinite(center_frac)) center_frac = 0.5;
  center_frac = std::clamp(center_frac, 0.0, 1.0);
  const TimeRange window = current_window();
  const double center = window.begin + window.length() * center_frac;
  const double full = entry_->full_range.length();
  const double span = full > 0 ? full : 1.0;
  const double new_len =
      std::clamp(window.length() / factor, span * 1e-12, span * 16.0);
  set_window(center - new_len * center_frac,
             center + new_len * (1.0 - center_frac));
}

void SessionState::zoom_to_pixels(double x0, double x1) {
  if (!std::isfinite(x0) || !std::isfinite(x1)) {
    throw ArgumentError("zoom rectangle coordinates must be finite");
  }
  if (x1 < x0) std::swap(x0, x1);
  const auto& lay = layout();
  if (lay.panels.empty()) return;
  // Rectangle zoom uses the time axis of the first panel; in aligned mode
  // all panels agree, in scaled mode this matches zooming "in" that panel.
  const auto& panel = lay.panels.front();
  auto time_of_x = [&](double x) {
    const double frac = std::clamp((x - panel.x) / panel.w, 0.0, 1.0);
    return panel.time_range.begin + frac * panel.time_range.length();
  };
  // A degenerate selection (both pixels in one column, or off the panel on
  // the same side) clamps to a minimal span in set_window.
  set_window(time_of_x(x0), time_of_x(x1));
}

void SessionState::zoom_to_time(double t0, double t1) { set_window(t0, t1); }

void SessionState::pan(double dt) {
  if (!std::isfinite(dt)) throw ArgumentError("pan offset must be finite");
  const TimeRange window = current_window();
  // An astronomically large dt can overflow begin+dt to infinity; clamp
  // the target into the finite range and let set_window slide it back to
  // the schedule bounds.
  constexpr double kLim = 1e300;
  set_window(std::clamp(window.begin + dt, -kLim, kLim),
             std::clamp(window.end + dt, -kLim, kLim));
}

void SessionState::reset_view() {
  style_.time_window.reset();
  style_.cluster_filter.clear();
  invalidate();
}

void SessionState::select_clusters(std::vector<int> cluster_ids) {
  for (int id : cluster_ids) {
    if (!schedule().has_cluster(id)) {
      throw ArgumentError("unknown cluster id " + std::to_string(id));
    }
  }
  style_.cluster_filter = std::move(cluster_ids);
  invalidate();
}

void SessionState::select_all_clusters() {
  style_.cluster_filter.clear();
  invalidate();
}

void SessionState::set_type_filter(std::vector<std::string> types) {
  style_.type_filter = std::move(types);
  invalidate();
}

void SessionState::set_view_mode(model::ViewMode mode) {
  style_.view_mode = mode;
  invalidate();
}

void SessionState::set_colormap(color::ColorMap colormap) {
  original_colormap_ = std::move(colormap);
  colormap_ = grayscale_ ? original_colormap_.grayscale() : original_colormap_;
  ++colormap_epoch_;
  invalidate();
}

void SessionState::set_grayscale(bool on) {
  grayscale_ = on;
  colormap_ = on ? original_colormap_.grayscale() : original_colormap_;
  ++colormap_epoch_;
  invalidate();
}

void SessionState::set_lod(render::LodMode mode) {
  style_.lod = mode;
  invalidate();
}

void SessionState::set_edges(render::EdgeMode mode) {
  style_.edges = mode;
  invalidate();
}

void SessionState::set_edge_density(int per_column) {
  if (per_column <= 0) {
    throw ArgumentError("edge-density must be a positive integer");
  }
  style_.edge_density = per_column;
  invalidate();
}

const render::Framebuffer& SessionState::frame() {
  render::TileCache::Request req;
  req.schedule = &schedule();
  req.colormap = &colormap_;
  req.style = style_;
  req.style.time_window = current_window();
  req.index = &entry_->index;
  req.edge_index = &entry_->edges;
  req.colormap_epoch = colormap_epoch_;
  req.validated = true;
  frame_ = cache_.render_frame(req);
  frame_log_.record(cache_.last_frame());
  return *frame_;
}

}  // namespace jedule::engine
