#include "jedule/engine/events.hpp"

#include <utility>

#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::engine {

namespace {

using model::ScheduleArena;

// `<cluster>:<host>` or `<cluster>:<a>-<b>` — the single-range subset of
// the CSV alloc grammar.
void parse_alloc(std::string_view spec, long line, ScheduleArena::Event* e) {
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) {
    throw ParseError("event alloc '" + std::string(spec) +
                         "' lacks the '<cluster>:' prefix",
                     line);
  }
  const auto cluster = util::parse_int(spec.substr(0, colon));
  if (!cluster) {
    throw ParseError("bad cluster id in event alloc '" + std::string(spec) +
                         "'",
                     line);
  }
  e->cluster_id = static_cast<int>(*cluster);
  const std::string_view hosts = spec.substr(colon + 1);
  const auto dash = hosts.find('-');
  if (dash == std::string_view::npos) {
    const auto h = util::parse_int(hosts);
    if (!h) {
      throw ParseError("bad host '" + std::string(hosts) + "'", line);
    }
    e->host_start = static_cast<int>(*h);
    e->host_nb = 1;
  } else {
    const auto lo = util::parse_int(hosts.substr(0, dash));
    const auto hi = util::parse_int(hosts.substr(dash + 1));
    if (!lo || !hi || *hi < *lo) {
      throw ParseError("bad host range '" + std::string(hosts) + "'", line);
    }
    e->host_start = static_cast<int>(*lo);
    e->host_nb = static_cast<int>(*hi - *lo + 1);
  }
}

}  // namespace

std::vector<ScheduleArena::Event> parse_event_lines(const std::string& text) {
  std::vector<ScheduleArena::Event> events;
  long line_no = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == '!') continue;
    const auto fields = util::split(line, ',');
    if (fields[0] == "task_id") continue;  // CSV header row
    if (fields.size() != 5 && fields.size() != 6) {
      throw ParseError(
          "expected 'id,type,start,end,cluster:hosts[,deps]', got " +
              std::to_string(fields.size()) + " fields",
          line_no);
    }
    const auto start = util::parse_double(fields[2]);
    const auto end = util::parse_double(fields[3]);
    if (!start || !end) throw ParseError("bad start/end time", line_no);
    ScheduleArena::Event e;
    e.id = fields[0];
    e.type = fields[1];
    e.start = *start;
    e.end = *end;
    parse_alloc(fields[4], line_no, &e);
    if (fields.size() == 6) {
      for (const auto& token : util::split(fields[5], ';')) {
        if (token.empty()) continue;
        const util::DepToken dep = util::parse_dep_token(token);
        e.deps.emplace_back(std::string(dep.id), dep.data);
      }
    }
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<ScheduleArena::Event> events_from_tasks(
    const model::Schedule& schedule, std::size_t first_new) {
  const auto& tasks = schedule.tasks();
  std::vector<ScheduleArena::Event> out;
  if (first_new >= tasks.size()) return out;
  out.reserve(tasks.size() - first_new);
  for (std::size_t i = first_new; i < tasks.size(); ++i) {
    const model::Task& t = tasks[i];
    if (t.configurations().size() != 1 ||
        t.configurations().front().hosts.size() != 1) {
      throw ArgumentError("task '" + t.id() +
                          "' is not a single contiguous allocation");
    }
    const auto& cfg = t.configurations().front();
    ScheduleArena::Event e;
    e.id = t.id();
    e.type = t.type();
    e.start = t.start_time();
    e.end = t.end_time();
    e.cluster_id = cfg.cluster_id;
    e.host_start = cfg.hosts.front().start;
    e.host_nb = cfg.hosts.front().nb;
    out.push_back(std::move(e));
  }
  // Attach the dependencies entering the new tasks, by source id (the
  // event grammar references tasks by id). One pass over the dependency
  // vector keeps each destination's per-edge order, so the appended
  // arena hashes its edges exactly like a full rebuild would.
  for (const auto& d : schedule.dependencies()) {
    if (d.dst < first_new) continue;
    out[d.dst - first_new].deps.emplace_back(tasks[d.src].id(), d.data);
  }
  return out;
}

}  // namespace jedule::engine
