#pragma once

// Live-trace event ingestion (DESIGN.md §4h): the textual event-line
// format shared by `POST /schedules/{id}/events` and the CLI's
// `view --follow` tail mode. One event per line, mirroring the CSV task
// row so a growing .csv trace can be tailed verbatim:
//
//   <task_id>,<type>,<start>,<end>,<cluster>:<host>        single host
//   <task_id>,<type>,<start>,<end>,<cluster>:<a>-<b>       host range
//
// An optional sixth field carries the task's dependencies, mirroring the
// CSV `deps` column: `;`-separated `<src_id>` or `<src_id>:<data>`
// references to already-ingested tasks (the volume splits at the last
// ':' so ids containing ':' keep working unless their tail parses as a
// number).
//
// Blank lines, '#' comments and the CSV header row are skipped, so the
// tail of a well-formed CSV schedule file parses directly. Events are the
// single-configuration, single-contiguous-range shape live traces
// produce; richer tasks still enter through the full parsers.

#include <cstddef>
#include <string>
#include <vector>

#include "jedule/model/arena.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::engine {

/// Parses event lines (format above). Throws ParseError with the
/// offending line number on malformed input.
std::vector<model::ScheduleArena::Event> parse_event_lines(
    const std::string& text);

/// Converts tasks [first_new, size) of a parsed schedule into events —
/// the `--follow` path for formats whose tails cannot be parsed in
/// isolation (XML re-parses the file, then appends only the new tasks).
/// Throws ArgumentError if a task is not a single contiguous allocation.
std::vector<model::ScheduleArena::Event> events_from_tasks(
    const model::Schedule& schedule, std::size_t first_new);

}  // namespace jedule::engine
