#include "jedule/engine/options.hpp"

#include "jedule/io/colormap_xml.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::engine {

namespace {

std::string quoted(std::string_view value) {
  return "'" + std::string(value) + "'";
}

}  // namespace

render::LodMode parse_lod_mode(std::string_view value) {
  if (value == "auto") return render::LodMode::kAuto;
  if (value == "off") return render::LodMode::kOff;
  if (value == "force") return render::LodMode::kForce;
  throw ArgumentError("lod must be auto, off or force (got " + quoted(value) +
                      ")");
}

render::EdgeMode parse_edge_mode(std::string_view value) {
  if (value == "auto") return render::EdgeMode::kAuto;
  if (value == "off") return render::EdgeMode::kOff;
  if (value == "force") return render::EdgeMode::kForce;
  throw ArgumentError("edges must be auto, off or force (got " +
                      quoted(value) + ")");
}

model::TimeRange parse_time_window(std::string_view value) {
  const auto parts = util::split(value, ':');
  if (parts.size() != 2) {
    throw ArgumentError("window expects T0:T1 (got " + quoted(value) + ")");
  }
  const auto t0 = util::parse_double(parts[0]);
  const auto t1 = util::parse_double(parts[1]);
  if (!t0 || !t1 || !(*t1 > *t0)) {
    throw ArgumentError("window expects numbers with T1 > T0 (got " +
                        quoted(value) + ")");
  }
  return model::TimeRange{*t0, *t1};
}

std::vector<int> parse_cluster_ids(std::string_view value) {
  std::vector<int> ids;
  for (const auto& part : util::split(value, ',')) {
    const auto id = util::parse_int(part);
    if (!id) throw ArgumentError("bad cluster id " + quoted(part));
    ids.push_back(static_cast<int>(*id));
  }
  return ids;
}

int parse_positive_int(std::string_view value, const std::string& name) {
  const auto v = util::parse_int(value);
  if (!v || *v <= 0 || *v > (1 << 24)) {
    throw ArgumentError(name + " must be a positive integer (got " +
                        quoted(value) + ")");
  }
  return static_cast<int>(*v);
}

bool parse_bool(const std::optional<std::string>& value,
                const std::string& name) {
  if (!value) return false;
  const std::string v = util::to_lower(*value);
  if (v.empty() || v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  throw ArgumentError(name + " must be a boolean (got " + quoted(*value) +
                      ")");
}

render::GanttStyle style_from_options(const OptionLookup& get) {
  render::GanttStyle style;
  if (const auto w = get("width")) {
    style.width = parse_positive_int(*w, "width");
  }
  if (const auto h = get("height")) {
    style.height = parse_positive_int(*h, "height");
  }
  if (parse_bool(get("aligned"), "aligned")) {
    style.view_mode = model::ViewMode::kAligned;
  }
  style.show_composites = !parse_bool(get("no-composites"), "no-composites");
  style.show_labels = !parse_bool(get("no-labels"), "no-labels");
  style.hatch_composites =
      parse_bool(get("hatch-composites"), "hatch-composites");
  if (const auto window = get("window")) {
    style.time_window = parse_time_window(*window);
  }
  if (const auto clusters = get("clusters")) {
    style.cluster_filter = parse_cluster_ids(*clusters);
  }
  if (const auto types = get("types")) {
    style.type_filter = util::split(*types, ',');
  }
  if (const auto highlight = get("highlight")) {
    const auto eq = highlight->find('=');
    if (eq == std::string::npos) {
      throw ArgumentError("highlight expects KEY=VALUE (got " +
                          quoted(*highlight) + ")");
    }
    style.highlight_key = highlight->substr(0, eq);
    style.highlight_value = highlight->substr(eq + 1);
  }
  if (const auto lod = get("lod")) {
    style.lod = parse_lod_mode(*lod);
  }
  if (const auto edges = get("edges")) {
    style.edges = parse_edge_mode(*edges);
  }
  if (const auto density = get("edge-density")) {
    style.edge_density = parse_positive_int(*density, "edge-density");
  }
  return style;
}

color::ColorMap colormap_from_options(const OptionLookup& get) {
  color::ColorMap map;
  if (const auto cmap = get("cmap")) {
    map = io::load_colormap_xml(*cmap);
  } else {
    map = color::standard_colormap();
  }
  if (parse_bool(get("grayscale"), "grayscale")) map = map.grayscale();
  return map;
}

render::RenderOptions render_options_from(const OptionLookup& get,
                                          bool allow_cmap_file) {
  if (!allow_cmap_file && get("cmap")) {
    throw ArgumentError("cmap is not available here (colormap files are "
                        "read on the client side)");
  }
  render::RenderOptions options;
  options.style = style_from_options(get);
  options.colormap = allow_cmap_file
                         ? colormap_from_options(get)
                         : (parse_bool(get("grayscale"), "grayscale")
                                ? color::standard_colormap().grayscale()
                                : color::standard_colormap());
  if (const auto threads = get("threads")) {
    options.threads = parse_positive_int(*threads, "threads");
  }
  return options;
}

}  // namespace jedule::engine
