#pragma once

// engine::RenderService — the render side of the engine layer: one object
// through which every frontend (CLI, interactive loop, `jedule serve`)
// turns a ScheduleEntry into bytes, so expensive results are shared.
//
// Two caches stack:
//  * an LRU rendered-artifact cache keyed by (content hash x exporter
//    format x RenderOptions digest). Concurrent requests for the same key
//    are collapsed single-flight: the first renders, the rest block and
//    are served the same immutable byte buffer (counted as hits), so two
//    clients asking for one PNG cost one render and get byte-identical
//    bodies.
//  * the shared render::TileCache (PR 3) behind the windowed tile path,
//    so walking adjacent tiles at one zoom level re-rasterizes only newly
//    exposed strips, exactly like an interactive pan.
//
// Artifacts are handed out as shared_ptr<const string>: eviction drops the
// cache's reference while responses still being written keep theirs.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "jedule/engine/store.hpp"
#include "jedule/render/frame_profile.hpp"
#include "jedule/render/options.hpp"
#include "jedule/render/tile_cache.hpp"

namespace jedule::engine {

class RenderService {
 public:
  struct Options {
    std::size_t artifact_entries = 128;       // LRU ceiling, count
    std::size_t artifact_bytes = 128u << 20;  // LRU ceiling, payload bytes
    int threads = 0;  // default per-render workers (<=0: resolve_threads)
    render::TileCache::Options tile;  // the shared interactive tile cache
  };

  /// Transfer encoding of an artifact's bytes. `gzip` artifacts hold the
  /// gzip-compressed identity render; both representations are cached
  /// under separate keys, so the compressed bytes are produced once and
  /// repeated negotiated requests are pure cache hits.
  enum class Encoding { identity, gzip };

  struct Artifact {
    std::shared_ptr<const std::string> bytes;
    std::string media_type;
    bool cache_hit = false;
    /// Size of the identity (uncompressed) representation; equals
    /// bytes->size() for identity artifacts.
    std::size_t raw_size = 0;
    Encoding encoding = Encoding::identity;
  };

  struct Stats {
    std::uint64_t artifact_hits = 0;
    std::uint64_t artifact_misses = 0;
    std::uint64_t artifact_evictions = 0;
    std::size_t artifact_entries = 0;
    std::size_t artifact_bytes = 0;
    /// Counters of the shared tile cache (render::frame_profile).
    render::profile::CacheStats tile;
    /// Dependency-edge rendering: artifact renders with edges active,
    /// and how the tile path drew them (arrows vs heat lanes).
    std::uint64_t edge_renders = 0;
    std::uint64_t edge_arrows = 0;
    std::uint64_t edge_heat_frames = 0;
  };

  RenderService() : RenderService(Options{}) {}
  explicit RenderService(Options opt);

  /// Renders `entry` with the exporter named `format` ("png", "svg", ...),
  /// through the artifact cache. options.task_index is ignored (the
  /// entry's own index is used); options.threads <= 0 falls back to the
  /// service default. Throws ArgumentError for an unknown format.
  ///
  /// With Encoding::gzip the returned bytes are the gzip stream of the
  /// identity render (for HTTP Content-Encoding negotiation); both the
  /// identity and the compressed bytes are cached, each once.
  Artifact render(const EntryPtr& entry, render::RenderOptions options,
                  const std::string& format,
                  Encoding encoding = Encoding::identity);

  /// Windowed viewport tile as PNG: zoom z splits the schedule's time
  /// range into 2^z equal slices and `x` picks one; `y` >= 0 restricts the
  /// view to the y-th cluster (in schedule order), y < 0 shows all.
  /// Cold tiles rasterize through the shared TileCache; repeats are
  /// artifact-cache hits. Throws ArgumentError on out-of-range x/y/zoom.
  Artifact render_tile(const EntryPtr& entry, long long x, long long y,
                       int zoom, render::RenderOptions options);

  Stats stats() const;

  /// FNV-1a digest over everything in `options` that can change rendered
  /// bytes (style fields and the full colormap; threads excluded — output
  /// is thread-count-invariant by design).
  static std::uint64_t options_digest(const render::RenderOptions& options);

  /// Media type for a registered exporter format ("png" -> "image/png");
  /// "application/octet-stream" for unknown names.
  static std::string media_type_for(const std::string& format);

 private:
  struct Key {
    std::uint64_t content = 0;
    std::uint64_t request = 0;  // format x options digest
    auto operator<=>(const Key&) const = default;
  };
  struct Slot {
    std::shared_ptr<const std::string> bytes;  // null while rendering
    std::string media_type;
    std::size_t raw_size = 0;
    std::list<Key>::iterator lru;
  };
  /// What a cache-miss producer returns: the artifact bytes plus the size
  /// of the identity representation they encode.
  struct Made {
    std::string bytes;
    std::size_t raw_size = 0;
  };

  /// Cache lookup + single-flight render of `make()` under `key`.
  Artifact cached(const Key& key, const std::string& media_type,
                  Encoding encoding, const std::function<Made()>& make);
  void evict_over_budget_locked();

  Options opt_;

  mutable std::mutex mu_;
  std::condition_variable slot_ready_;
  std::map<Key, Slot> cache_;
  std::list<Key> lru_;  // front = most recently used; pending slots absent
  std::size_t cached_bytes_ = 0;
  Stats stats_;

  mutable std::mutex tile_mu_;  // the TileCache itself is single-threaded
  render::TileCache tiles_;
};

}  // namespace jedule::engine
