#include "jedule/io/jedule_xml.hpp"

#include <cmath>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/xml/pull.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::io {

namespace {

using model::Configuration;
using model::HostRange;
using model::Schedule;
using model::Task;

int require_int_attr(const xml::Element& e, std::string_view name) {
  auto v = util::parse_int(e.require_attr(name));
  if (!v) {
    throw ParseError("attribute '" + std::string(name) + "' of <" + e.name() +
                         "> is not an integer",
                     e.source_line());
  }
  return static_cast<int>(*v);
}

Configuration parse_configuration(const xml::Element& e) {
  Configuration cfg;
  bool have_cluster = false;
  int declared_hosts = -1;
  for (const auto* prop : e.children_named("conf_property")) {
    const auto name = prop->require_attr("name");
    const auto value = prop->require_attr("value");
    if (name == "cluster_id") {
      auto v = util::parse_int(value);
      if (!v) throw ParseError("bad cluster_id", prop->source_line());
      cfg.cluster_id = static_cast<int>(*v);
      have_cluster = true;
    } else if (name == "host_nb") {
      auto v = util::parse_int(value);
      if (!v) throw ParseError("bad host_nb", prop->source_line());
      declared_hosts = static_cast<int>(*v);
    } else {
      throw ParseError("unknown conf_property '" + std::string(name) + "'",
                       prop->source_line());
    }
  }
  if (!have_cluster) {
    throw ParseError("<configuration> lacks a cluster_id conf_property",
                     e.source_line());
  }
  const xml::Element* lists = e.first_child("host_lists");
  if (lists == nullptr) {
    throw ParseError("<configuration> lacks <host_lists>", e.source_line());
  }
  for (const auto* hosts : lists->children_named("hosts")) {
    HostRange r;
    r.start = require_int_attr(*hosts, "start");
    r.nb = require_int_attr(*hosts, "nb");
    cfg.hosts.push_back(r);
  }
  if (declared_hosts >= 0 && declared_hosts != cfg.host_count()) {
    throw ParseError(
        "host_nb (" + std::to_string(declared_hosts) +
            ") disagrees with the host ranges (" +
            std::to_string(cfg.host_count()) + " hosts)",
        e.source_line());
  }
  return cfg;
}

Task parse_node(const xml::Element& e) {
  Task t;
  bool have_id = false;
  bool have_type = false;
  bool have_start = false;
  bool have_end = false;
  double start = 0;
  double end = 0;
  for (const auto* prop : e.children_named("node_property")) {
    const auto name = prop->require_attr("name");
    const auto value = std::string(prop->require_attr("value"));
    if (name == "id") {
      t.set_id(value);
      have_id = true;
    } else if (name == "type") {
      t.set_type(value);
      have_type = true;
    } else if (name == "start_time") {
      auto v = util::parse_double(value);
      if (!v) throw ParseError("bad start_time", prop->source_line());
      start = *v;
      have_start = true;
    } else if (name == "end_time") {
      auto v = util::parse_double(value);
      if (!v) throw ParseError("bad end_time", prop->source_line());
      end = *v;
      have_end = true;
    } else {
      t.set_property(std::string(name), value);
    }
  }
  if (!have_id || !have_type || !have_start || !have_end) {
    throw ParseError(
        "<node_statistics> requires id, type, start_time and end_time "
        "node_property entries",
        e.source_line());
  }
  t.set_times(start, end);
  for (const auto* cfg : e.children_named("configuration")) {
    t.add_configuration(parse_configuration(*cfg));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Streaming reader: consumes xml::PullParser events directly, so schedule
// ingest never materializes a DOM. The accepted documents (and the resulting
// Schedule) are identical to the DOM walk below: only the first jedule_meta /
// platform / node_infos (and host_lists per configuration) sections count,
// unknown elements are skipped (but still validated as XML), and all
// semantic errors carry the same messages and source lines.
// ---------------------------------------------------------------------------

using xml::PullParser;

int require_int_attr(const PullParser& p, std::string_view name) {
  auto v = util::parse_int(p.require_attr(name));
  if (!v) {
    throw ParseError("attribute '" + std::string(name) + "' of <" +
                         std::string(p.name()) + "> is not an integer",
                     p.line());
  }
  return static_cast<int>(*v);
}

Configuration read_configuration(PullParser& p) {
  const long cfg_line = p.line();
  Configuration cfg;
  bool have_cluster = false;
  bool seen_lists = false;
  int declared_hosts = -1;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "conf_property") {
      const auto name = p.require_attr("name");
      const auto value = p.require_attr("value");
      if (name == "cluster_id") {
        auto v = util::parse_int(value);
        if (!v) throw ParseError("bad cluster_id", p.line());
        cfg.cluster_id = static_cast<int>(*v);
        have_cluster = true;
      } else if (name == "host_nb") {
        auto v = util::parse_int(value);
        if (!v) throw ParseError("bad host_nb", p.line());
        declared_hosts = static_cast<int>(*v);
      } else {
        throw ParseError("unknown conf_property '" + std::string(name) + "'",
                         p.line());
      }
      p.skip_element();
    } else if (p.name() == "host_lists" && !seen_lists) {
      seen_lists = true;
      for (auto lists_ev = p.next(); lists_ev != PullParser::Event::kEndElement;
           lists_ev = p.next()) {
        if (lists_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "hosts") {
          HostRange r;
          r.start = require_int_attr(p, "start");
          r.nb = require_int_attr(p, "nb");
          cfg.hosts.push_back(r);
        }
        p.skip_element();
      }
    } else {
      p.skip_element();
    }
  }
  if (!have_cluster) {
    throw ParseError("<configuration> lacks a cluster_id conf_property",
                     cfg_line);
  }
  if (!seen_lists) {
    throw ParseError("<configuration> lacks <host_lists>", cfg_line);
  }
  if (declared_hosts >= 0 && declared_hosts != cfg.host_count()) {
    throw ParseError(
        "host_nb (" + std::to_string(declared_hosts) +
            ") disagrees with the host ranges (" +
            std::to_string(cfg.host_count()) + " hosts)",
        cfg_line);
  }
  return cfg;
}

Task read_node(PullParser& p, TypeInternCache* types = nullptr) {
  const long node_line = p.line();
  Task t;
  bool have_id = false;
  bool have_type = false;
  bool have_start = false;
  bool have_end = false;
  double start = 0;
  double end = 0;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "node_property") {
      const auto name = p.require_attr("name");
      const auto value = p.require_attr("value");
      if (name == "id") {
        t.set_id(std::string(value));
        have_id = true;
      } else if (name == "type") {
        if (types != nullptr) {
          t.set_interned_type(types->intern(value));
        } else {
          t.set_type(std::string(value));
        }
        have_type = true;
      } else if (name == "start_time") {
        auto v = util::parse_double(value);
        if (!v) throw ParseError("bad start_time", p.line());
        start = *v;
        have_start = true;
      } else if (name == "end_time") {
        auto v = util::parse_double(value);
        if (!v) throw ParseError("bad end_time", p.line());
        end = *v;
        have_end = true;
      } else {
        t.set_property(std::string(name), std::string(value));
      }
      p.skip_element();
    } else if (p.name() == "configuration") {
      t.add_configuration(read_configuration(p));
    } else {
      p.skip_element();
    }
  }
  if (!have_id || !have_type || !have_start || !have_end) {
    throw ParseError(
        "<node_statistics> requires id, type, start_time and end_time "
        "node_property entries",
        node_line);
  }
  t.set_times(start, end);
  return t;
}

// A `<precedence src=... dst=... data=...>` record as parsed, before the
// task ids are resolved to indices. Resolution is deferred until every
// task is known, so a <precedences> section may precede <node_infos> —
// and so the chunked reader can resolve after its worker merge.
struct PendingDep {
  std::string src;
  std::string dst;
  double data = 0;
  long line = 0;
};

void resolve_deps(Schedule& schedule, const std::vector<PendingDep>& pending) {
  if (pending.empty()) return;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  ids.reserve(schedule.tasks().size());
  for (std::size_t i = 0; i < schedule.tasks().size(); ++i) {
    ids.emplace(schedule.tasks()[i].id(), static_cast<std::uint32_t>(i));
  }
  for (const auto& p : pending) {
    const auto s = ids.find(p.src);
    if (s == ids.end()) {
      throw ParseError("<precedence> references unknown task '" + p.src + "'",
                       p.line);
    }
    const auto d = ids.find(p.dst);
    if (d == ids.end()) {
      throw ParseError("<precedence> references unknown task '" + p.dst + "'",
                       p.line);
    }
    schedule.add_dependency(s->second, d->second, p.data);
  }
}

PendingDep read_precedence(const PullParser& p) {
  PendingDep d;
  d.src = std::string(p.require_attr("src"));
  d.dst = std::string(p.require_attr("dst"));
  d.line = p.line();
  if (const auto data = p.attr("data")) {
    const auto v = util::parse_double(*data);
    if (!v) {
      throw ParseError("attribute 'data' of <precedence> is not a number",
                       p.line());
    }
    d.data = *v;
  }
  return d;
}

// When `defer` is non-null the <precedences> records are returned raw
// instead of resolved — the chunked reader resolves them only after the
// worker batches are merged back in.
Schedule read_schedule_xml_impl(std::string_view xml_text, bool validate,
                                std::vector<PendingDep>* defer = nullptr) {
  PullParser p(xml_text);
  p.next();  // the parser throws unless the document opens with an element
  if (p.name() != "jedule") {
    throw ParseError("root element must be <jedule>, got <" +
                         std::string(p.name()) + ">",
                     p.line());
  }
  const long root_line = p.line();

  Schedule schedule;
  std::vector<PendingDep> pending;
  bool seen_meta = false;
  bool seen_platform = false;
  bool seen_nodes = false;
  bool seen_precedences = false;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    const std::string_view section = p.name();
    if (section == "jedule_meta" && !seen_meta) {
      seen_meta = true;
      for (auto meta_ev = p.next(); meta_ev != PullParser::Event::kEndElement;
           meta_ev = p.next()) {
        if (meta_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "meta") {
          auto name = std::string(p.require_attr("name"));
          auto value = std::string(p.require_attr("value"));
          schedule.set_meta(std::move(name), std::move(value));
        }
        p.skip_element();
      }
    } else if (section == "platform" && !seen_platform) {
      seen_platform = true;
      for (auto plat_ev = p.next(); plat_ev != PullParser::Event::kEndElement;
           plat_ev = p.next()) {
        if (plat_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "cluster") {
          model::Cluster c;
          c.id = require_int_attr(p, "id");
          if (auto name = p.attr("name")) {
            c.name = std::string(*name);
          } else {
            c.name = "cluster-" + std::to_string(c.id);
          }
          c.hosts = require_int_attr(p, "hosts");
          schedule.add_cluster(std::move(c));
        }
        p.skip_element();
      }
    } else if (section == "node_infos" && !seen_nodes) {
      seen_nodes = true;
      for (auto node_ev = p.next(); node_ev != PullParser::Event::kEndElement;
           node_ev = p.next()) {
        if (node_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "node_statistics") {
          schedule.add_task(read_node(p));
        } else {
          p.skip_element();
        }
      }
    } else if (section == "precedences" && !seen_precedences) {
      seen_precedences = true;
      for (auto prec_ev = p.next(); prec_ev != PullParser::Event::kEndElement;
           prec_ev = p.next()) {
        if (prec_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "precedence") pending.push_back(read_precedence(p));
        p.skip_element();
      }
    } else {
      p.skip_element();
    }
  }

  if (!seen_platform) {
    throw ParseError("<jedule> lacks a <platform> section (at least one "
                         "cluster is required)",
                     root_line);
  }

  if (defer != nullptr) {
    *defer = std::move(pending);
  } else {
    resolve_deps(schedule, pending);
  }
  if (validate) schedule.validate();
  return schedule;
}

// ---------------------------------------------------------------------------
// Parallel chunked reader (DESIGN.md §4i).
//
// The boundary scanner is a conservative mini-lexer: it tracks tags,
// quoted attribute values, comments and CDATA exactly as far as needed to
// locate the <node_statistics> record spans of the first <node_infos>
// section — and *bails* (returns "let the serial reader decide") on
// anything outside its model (PIs or declarations in content, a
// non-record child of <node_infos>, truncated constructs). Everything the
// scan excises is exactly the record spans; the remaining bytes — the
// "skeleton" document — are re-parsed serially, so prolog, platform,
// meta, inter-record comments/text and the epilog all keep their serial
// validation. Workers parse each record slice as a standalone document
// through a reused PullParser; the merge appends tasks in document order.
// ---------------------------------------------------------------------------

constexpr std::size_t kScanNpos = std::string_view::npos;

class ChunkScanner {
 public:
  explicit ChunkScanner(TextSource& src) : src_(&src) { grow(64 * 1024); }

  std::string_view view() const { return view_; }
  bool complete() const { return complete_; }

  /// Extends the published view to cover [0, end); false at true EOF.
  bool ensure(std::size_t end) {
    while (view_.size() < end && !complete_) grow(end);
    return view_.size() >= end;
  }

  /// find() over the growing view: only returns npos at true EOF.
  std::size_t find(std::string_view token, std::size_t from) {
    std::size_t searched = from;
    while (true) {
      const std::size_t hit = view_.find(token, searched);
      if (hit != kScanNpos) return hit;
      if (complete_) return kScanNpos;
      // Re-search only the bytes a straddling match could start in.
      searched = view_.size() > from + token.size()
                     ? view_.size() - token.size() + 1
                     : from;
      grow(view_.size() + kGrowStep);
    }
  }
  std::size_t find(char c, std::size_t from) {
    return find(std::string_view(&c, 1), from);
  }

  bool match(std::size_t pos, std::string_view token) {
    if (!ensure(pos + token.size())) return false;
    return view_.compare(pos, token.size(), token) == 0;
  }

  struct Tag {
    enum Kind { kStart, kEnd, kComment, kCData, kBail } kind = kBail;
    std::string_view name;  // start/end tags only
    std::size_t end = 0;    // one past the construct
    bool self_closing = false;
  };

  /// Lexes the markup construct at `lt` (which holds '<').
  Tag next_tag(std::size_t lt) {
    Tag tag;
    if (match(lt, "<!--")) {
      const std::size_t e = find("-->", lt + 4);
      if (e == kScanNpos) return tag;
      tag.kind = Tag::kComment;
      tag.end = e + 3;
      return tag;
    }
    if (match(lt, "<![CDATA[")) {
      const std::size_t e = find("]]>", lt + 9);
      if (e == kScanNpos) return tag;
      tag.kind = Tag::kCData;
      tag.end = e + 3;
      return tag;
    }
    if (!ensure(lt + 2)) return tag;
    const char c1 = view_[lt + 1];
    if (c1 == '?' || c1 == '!') return tag;  // PI / declaration: bail
    if (c1 == '/') {
      const std::size_t gt = find('>', lt + 2);
      if (gt == kScanNpos) return tag;
      std::string_view name = view_.substr(lt + 2, gt - lt - 2);
      while (!name.empty() && is_space(name.back())) name.remove_suffix(1);
      tag.kind = Tag::kEnd;
      tag.name = name;
      tag.end = gt + 1;
      return tag;
    }
    // Start tag: name runs to the first space, '/' or '>'.
    std::size_t ne = lt + 1;
    while (true) {
      if (!ensure(ne + 1)) return tag;
      const char c = view_[ne];
      if (is_space(c) || c == '/' || c == '>') break;
      ++ne;
    }
    if (ne == lt + 1) return tag;  // "<>" or "< ": malformed, bail
    tag.name = view_.substr(lt + 1, ne - lt - 1);
    // Attributes: scan to the closing '>', skipping quoted values whole
    // (a '>' or '/' inside quotes is data, not structure).
    std::size_t i = ne;
    while (true) {
      if (!ensure(i + 1)) return tag;
      const char c = view_[i];
      if (c == '"' || c == '\'') {
        const std::size_t q = find(c, i + 1);
        if (q == kScanNpos) return tag;
        i = q + 1;
        continue;
      }
      if (c == '>') break;
      if (c == '<') return tag;  // malformed; let the serial parser report
      ++i;
    }
    tag.kind = Tag::kStart;
    tag.self_closing = view_[i - 1] == '/';
    tag.end = i + 1;
    return tag;
  }

  /// From just past a non-self-closing start tag, scans to just past the
  /// matching end tag; kScanNpos to bail.
  std::size_t scan_element_body(std::size_t pos) {
    int depth = 1;
    while (depth > 0) {
      const std::size_t lt = find('<', pos);
      if (lt == kScanNpos) return kScanNpos;
      const Tag t = next_tag(lt);
      switch (t.kind) {
        case Tag::kComment:
        case Tag::kCData:
          break;
        case Tag::kStart:
          if (!t.self_closing) ++depth;
          break;
        case Tag::kEnd:
          --depth;
          break;
        case Tag::kBail:
          return kScanNpos;
      }
      pos = t.end;
    }
    return pos;
  }

  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

 private:
  static constexpr std::size_t kGrowStep = 256 * 1024;

  void grow(std::size_t hint) {
    const TextSource::View v =
        src_->wait_for(std::max(hint, view_.size() + kGrowStep));
    view_ = std::string_view(v.data, v.size);
    complete_ = v.complete;
  }

  TextSource* src_;
  std::string_view view_;
  bool complete_ = false;
};

/// One worker batch: record spans as offsets plus the view base current at
/// dispatch time (kept valid by TextSource even across its rare gzip
/// overflow fallback, which switches buffers but retires neither).
struct RecordBatch {
  const char* base = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t bytes = 0;
};

void parse_record_batch(const RecordBatch& batch, std::vector<Task>* out) {
  PullParser p(std::string_view{});
  TypeInternCache types;
  out->reserve(batch.spans.size());
  for (const auto& [begin, end] : batch.spans) {
    // A record slice is a complete standalone document: one element, no
    // prolog or epilog. The PullParser accepts exactly that, with every
    // in-record validation rule of the serial pass.
    p.reset(std::string_view(batch.base + begin, end - begin));
    p.next();  // kStartElement <node_statistics> (or throws)
    out->push_back(read_node(p, &types));
  }
}

/// Scans the document, dispatching record batches to `exec` as they are
/// discovered (so workers overlap with the scan — and, for gzip, with
/// decompression). Returns false to bail to the serial reader. On success,
/// `records` holds every record span in document order and `batch_count`
/// the number of submitted jobs.
bool scan_and_dispatch(ChunkScanner& scan, const IngestOptions& opt,
                       ChunkExecutor& exec,
                       std::deque<std::vector<Task>>& outputs,
                       std::vector<std::pair<std::size_t, std::size_t>>& records) {
  // Prolog: XML declaration / comments / DOCTYPE until the root start tag.
  std::size_t pos = 0;
  ChunkScanner::Tag root;
  while (true) {
    const std::size_t lt = scan.find('<', pos);
    if (lt == kScanNpos) return false;
    for (std::size_t i = pos; i < lt; ++i) {
      if (!ChunkScanner::is_space(scan.view()[i])) return false;
    }
    if (scan.match(lt, "<?")) {
      const std::size_t e = scan.find("?>", lt + 2);
      if (e == kScanNpos) return false;
      pos = e + 2;
      continue;
    }
    if (scan.match(lt, "<!--")) {
      const std::size_t e = scan.find("-->", lt + 4);
      if (e == kScanNpos) return false;
      pos = e + 3;
      continue;
    }
    if (scan.match(lt, "<!")) {  // DOCTYPE (non-nested, like the parser)
      const std::size_t e = scan.find('>', lt + 2);
      if (e == kScanNpos) return false;
      pos = e + 1;
      continue;
    }
    root = scan.next_tag(lt);
    if (root.kind != ChunkScanner::Tag::kStart) return false;
    break;
  }
  if (root.name != "jedule" || root.self_closing) return false;

  // Depth-1 walk to the first <node_infos>.
  pos = root.end;
  while (true) {
    const std::size_t lt = scan.find('<', pos);
    if (lt == kScanNpos) return false;
    const ChunkScanner::Tag t = scan.next_tag(lt);
    switch (t.kind) {
      case ChunkScanner::Tag::kComment:
      case ChunkScanner::Tag::kCData:
        pos = t.end;
        continue;
      case ChunkScanner::Tag::kEnd:
        // Root closed without a <node_infos>: nothing to parallelize.
        return false;
      case ChunkScanner::Tag::kBail:
        return false;
      case ChunkScanner::Tag::kStart:
        break;
    }
    if (t.name == "node_infos" && !t.self_closing) {
      pos = t.end;
      break;
    }
    // Some other depth-1 section: skip its whole subtree.
    pos = t.self_closing ? t.end : scan.scan_element_body(t.end);
    if (pos == kScanNpos) return false;
  }

  // Record scan inside <node_infos>: batches close on a deterministic byte
  // threshold (a pure function of the input, never of worker timing).
  RecordBatch batch;
  const auto flush = [&] {
    if (batch.spans.empty()) return;
    batch.base = scan.view().data();
    outputs.emplace_back();
    exec.submit([b = std::move(batch), out = &outputs.back()] {
      parse_record_batch(b, out);
    });
    batch = RecordBatch{};
  };
  while (true) {
    const std::size_t lt = scan.find('<', pos);
    if (lt == kScanNpos) return false;
    const ChunkScanner::Tag t = scan.next_tag(lt);
    if (t.kind == ChunkScanner::Tag::kComment ||
        t.kind == ChunkScanner::Tag::kCData) {
      pos = t.end;
      continue;
    }
    if (t.kind == ChunkScanner::Tag::kEnd) {
      if (t.name != "node_infos") return false;
      break;
    }
    if (t.kind != ChunkScanner::Tag::kStart || t.name != "node_statistics") {
      return false;  // a non-record child: rare, let the serial reader rule
    }
    const std::size_t rec_end =
        t.self_closing ? t.end : scan.scan_element_body(t.end);
    if (rec_end == kScanNpos) return false;
    records.emplace_back(lt, rec_end);
    batch.spans.emplace_back(lt, rec_end);
    batch.bytes += rec_end - lt;
    if (batch.bytes >= opt.target_chunk_bytes) flush();
    pos = rec_end;
  }
  flush();
  return true;
}

}  // namespace

model::Schedule read_schedule_xml(std::string_view xml_text) {
  return read_schedule_xml_impl(xml_text, /*validate=*/true);
}

model::Schedule read_schedule_xml_chunked(TextSource& src,
                                          const IngestOptions& opt,
                                          IngestStats* stats) {
  const int threads = std::max(1, opt.threads);
  if (threads <= 1) return read_schedule_xml(src.all());
  if (!src.gzip()) {
    // Small plain inputs: chunk bookkeeping costs more than it saves.
    // (Gzip inputs always take the pipelined path — the decoded size is
    // not known yet, and the overlap pays for itself.)
    const TextSource::View head = src.wait_for(0);
    if (head.complete && head.size < opt.min_parallel_bytes) {
      return read_schedule_xml(head.text());
    }
  }

  std::deque<std::vector<Task>> outputs;
  std::vector<std::pair<std::size_t, std::size_t>> records;
  try {
    ChunkScanner scan(src);
    ChunkExecutor exec(threads);
    const bool scanned = scan_and_dispatch(scan, opt, exec, outputs, records);
    exec.finish();  // rethrows the lowest-index worker error
    if (!scanned) return read_schedule_xml(src.all());

    // Skeleton pass: the full text minus the record spans, parsed
    // serially. Everything outside records (prolog, meta, platform,
    // inter-record comments/text, later sections, epilog) keeps its
    // serial validation; the first <node_infos> simply has no records
    // left, so the skeleton contributes clusters/meta and zero tasks.
    const std::string_view text = src.all();
    std::size_t excised = 0;
    for (const auto& [begin, end] : records) excised += end - begin;
    std::string skeleton;
    skeleton.reserve(text.size() - excised);
    std::size_t cursor = 0;
    for (const auto& [begin, end] : records) {
      skeleton.append(text.data() + cursor, begin - cursor);
      cursor = end;
    }
    skeleton.append(text.data() + cursor, text.size() - cursor);
    // Precedence records stay raw through the skeleton pass — their task
    // ids resolve only once the worker batches are merged back in.
    std::vector<PendingDep> pending;
    Schedule schedule =
        read_schedule_xml_impl(skeleton, /*validate=*/false, &pending);

    // In-order merge: batches were submitted in document order and each
    // holds its records in document order, so this reproduces the serial
    // add_task sequence exactly.
    for (auto& tasks : outputs) {
      for (auto& t : tasks) schedule.add_task(std::move(t));
    }
    resolve_deps(schedule, pending);
    if (stats != nullptr) {
      stats->chunks = outputs.size();
      stats->parallel = true;
    }
    schedule.validate();
    return schedule;
  } catch (const ParseError&) {
    // The serial reader is the spec: re-run it to produce the exact
    // serial result — or the exact serial error message and line.
    if (stats != nullptr) {
      stats->chunks = 0;
      stats->parallel = false;
    }
    return read_schedule_xml(src.all());
  }
}

model::Schedule read_schedule_xml_dom(const std::string& xml_text) {
  const xml::Document doc = xml::baseline_parse(xml_text);
  const xml::Element& root = *doc.root;
  if (root.name() != "jedule") {
    throw ParseError("root element must be <jedule>, got <" + root.name() +
                         ">",
                     root.source_line());
  }

  Schedule schedule;

  if (const auto* meta = root.first_child("jedule_meta")) {
    for (const auto* info : meta->children_named("meta")) {
      schedule.set_meta(std::string(info->require_attr("name")),
                        std::string(info->require_attr("value")));
    }
  }

  const xml::Element* platform = root.first_child("platform");
  if (platform == nullptr) {
    throw ParseError("<jedule> lacks a <platform> section (at least one "
                         "cluster is required)",
                     root.source_line());
  }
  for (const auto* cluster : platform->children_named("cluster")) {
    model::Cluster c;
    c.id = require_int_attr(*cluster, "id");
    if (auto name = cluster->attr("name")) {
      c.name = std::string(*name);
    } else {
      c.name = "cluster-" + std::to_string(c.id);
    }
    c.hosts = require_int_attr(*cluster, "hosts");
    schedule.add_cluster(std::move(c));
  }

  if (const auto* nodes = root.first_child("node_infos")) {
    for (const auto* node : nodes->children_named("node_statistics")) {
      schedule.add_task(parse_node(*node));
    }
  }

  if (const auto* precs = root.first_child("precedences")) {
    std::vector<PendingDep> pending;
    for (const auto* prec : precs->children_named("precedence")) {
      PendingDep d;
      d.src = std::string(prec->require_attr("src"));
      d.dst = std::string(prec->require_attr("dst"));
      d.line = prec->source_line();
      if (const auto data = prec->attr("data")) {
        const auto v = util::parse_double(*data);
        if (!v) {
          throw ParseError("attribute 'data' of <precedence> is not a number",
                           prec->source_line());
        }
        d.data = *v;
      }
      pending.push_back(std::move(d));
    }
    resolve_deps(schedule, pending);
  }

  schedule.validate();
  return schedule;
}

model::Schedule load_schedule_xml(const std::string& path) {
  return read_schedule_xml(read_file(path));
}

namespace {

/// Times are written with enough digits to round-trip a double exactly,
/// trimmed of trailing zeros past the third decimal so simple files keep the
/// paper's "0.310" look.
std::string format_time(double t) {
  std::string full = util::format_fixed(t, 3);
  if (auto parsed = util::parse_double(full); parsed && *parsed == t) {
    return full;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

void add_kv(xml::Element& parent, const char* element, std::string name,
            std::string value) {
  auto& e = parent.add_child(element);
  e.set_attr("name", std::move(name));
  e.set_attr("value", std::move(value));
}

}  // namespace

std::string write_schedule_xml(const model::Schedule& schedule) {
  xml::Element root("jedule");
  root.set_attr("version", "1.0");

  if (!schedule.meta().empty()) {
    auto& meta = root.add_child("jedule_meta");
    for (const auto& [k, v] : schedule.meta()) add_kv(meta, "meta", k, v);
  }

  auto& platform = root.add_child("platform");
  for (const auto& c : schedule.clusters()) {
    auto& e = platform.add_child("cluster");
    e.set_attr("id", std::to_string(c.id));
    e.set_attr("name", c.name);
    e.set_attr("hosts", std::to_string(c.hosts));
  }

  auto& nodes = root.add_child("node_infos");
  for (const auto& t : schedule.tasks()) {
    auto& node = nodes.add_child("node_statistics");
    add_kv(node, "node_property", "id", t.id());
    add_kv(node, "node_property", "type", t.type());
    add_kv(node, "node_property", "start_time", format_time(t.start_time()));
    add_kv(node, "node_property", "end_time", format_time(t.end_time()));
    for (const auto& [k, v] : t.properties()) {
      add_kv(node, "node_property", k, v);
    }
    for (const auto& cfg : t.configurations()) {
      auto& c = node.add_child("configuration");
      add_kv(c, "conf_property", "cluster_id",
             std::to_string(cfg.cluster_id));
      add_kv(c, "conf_property", "host_nb", std::to_string(cfg.host_count()));
      auto& lists = c.add_child("host_lists");
      for (const auto& r : cfg.hosts) {
        auto& h = lists.add_child("hosts");
        h.set_attr("start", std::to_string(r.start));
        h.set_attr("nb", std::to_string(r.nb));
      }
    }
  }

  if (!schedule.dependencies().empty()) {
    const auto& tasks = schedule.tasks();
    auto& precs = root.add_child("precedences");
    for (const auto& d : schedule.dependencies()) {
      auto& e = precs.add_child("precedence");
      e.set_attr("src", tasks[d.src].id());
      e.set_attr("dst", tasks[d.dst].id());
      if (d.data != 0) e.set_attr("data", format_time(d.data));
    }
  }

  return xml::serialize(root);
}

void save_schedule_xml(const model::Schedule& schedule,
                       const std::string& path) {
  write_file(path, write_schedule_xml(schedule));
}

}  // namespace jedule::io
