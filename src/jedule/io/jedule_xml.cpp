#include "jedule/io/jedule_xml.hpp"

#include <cmath>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/xml/pull.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::io {

namespace {

using model::Configuration;
using model::HostRange;
using model::Schedule;
using model::Task;

int require_int_attr(const xml::Element& e, std::string_view name) {
  auto v = util::parse_int(e.require_attr(name));
  if (!v) {
    throw ParseError("attribute '" + std::string(name) + "' of <" + e.name() +
                         "> is not an integer",
                     e.source_line());
  }
  return static_cast<int>(*v);
}

Configuration parse_configuration(const xml::Element& e) {
  Configuration cfg;
  bool have_cluster = false;
  int declared_hosts = -1;
  for (const auto* prop : e.children_named("conf_property")) {
    const auto name = prop->require_attr("name");
    const auto value = prop->require_attr("value");
    if (name == "cluster_id") {
      auto v = util::parse_int(value);
      if (!v) throw ParseError("bad cluster_id", prop->source_line());
      cfg.cluster_id = static_cast<int>(*v);
      have_cluster = true;
    } else if (name == "host_nb") {
      auto v = util::parse_int(value);
      if (!v) throw ParseError("bad host_nb", prop->source_line());
      declared_hosts = static_cast<int>(*v);
    } else {
      throw ParseError("unknown conf_property '" + std::string(name) + "'",
                       prop->source_line());
    }
  }
  if (!have_cluster) {
    throw ParseError("<configuration> lacks a cluster_id conf_property",
                     e.source_line());
  }
  const xml::Element* lists = e.first_child("host_lists");
  if (lists == nullptr) {
    throw ParseError("<configuration> lacks <host_lists>", e.source_line());
  }
  for (const auto* hosts : lists->children_named("hosts")) {
    HostRange r;
    r.start = require_int_attr(*hosts, "start");
    r.nb = require_int_attr(*hosts, "nb");
    cfg.hosts.push_back(r);
  }
  if (declared_hosts >= 0 && declared_hosts != cfg.host_count()) {
    throw ParseError(
        "host_nb (" + std::to_string(declared_hosts) +
            ") disagrees with the host ranges (" +
            std::to_string(cfg.host_count()) + " hosts)",
        e.source_line());
  }
  return cfg;
}

Task parse_node(const xml::Element& e) {
  Task t;
  bool have_id = false;
  bool have_type = false;
  bool have_start = false;
  bool have_end = false;
  double start = 0;
  double end = 0;
  for (const auto* prop : e.children_named("node_property")) {
    const auto name = prop->require_attr("name");
    const auto value = std::string(prop->require_attr("value"));
    if (name == "id") {
      t.set_id(value);
      have_id = true;
    } else if (name == "type") {
      t.set_type(value);
      have_type = true;
    } else if (name == "start_time") {
      auto v = util::parse_double(value);
      if (!v) throw ParseError("bad start_time", prop->source_line());
      start = *v;
      have_start = true;
    } else if (name == "end_time") {
      auto v = util::parse_double(value);
      if (!v) throw ParseError("bad end_time", prop->source_line());
      end = *v;
      have_end = true;
    } else {
      t.set_property(std::string(name), value);
    }
  }
  if (!have_id || !have_type || !have_start || !have_end) {
    throw ParseError(
        "<node_statistics> requires id, type, start_time and end_time "
        "node_property entries",
        e.source_line());
  }
  t.set_times(start, end);
  for (const auto* cfg : e.children_named("configuration")) {
    t.add_configuration(parse_configuration(*cfg));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Streaming reader: consumes xml::PullParser events directly, so schedule
// ingest never materializes a DOM. The accepted documents (and the resulting
// Schedule) are identical to the DOM walk below: only the first jedule_meta /
// platform / node_infos (and host_lists per configuration) sections count,
// unknown elements are skipped (but still validated as XML), and all
// semantic errors carry the same messages and source lines.
// ---------------------------------------------------------------------------

using xml::PullParser;

int require_int_attr(const PullParser& p, std::string_view name) {
  auto v = util::parse_int(p.require_attr(name));
  if (!v) {
    throw ParseError("attribute '" + std::string(name) + "' of <" +
                         std::string(p.name()) + "> is not an integer",
                     p.line());
  }
  return static_cast<int>(*v);
}

Configuration read_configuration(PullParser& p) {
  const long cfg_line = p.line();
  Configuration cfg;
  bool have_cluster = false;
  bool seen_lists = false;
  int declared_hosts = -1;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "conf_property") {
      const auto name = p.require_attr("name");
      const auto value = p.require_attr("value");
      if (name == "cluster_id") {
        auto v = util::parse_int(value);
        if (!v) throw ParseError("bad cluster_id", p.line());
        cfg.cluster_id = static_cast<int>(*v);
        have_cluster = true;
      } else if (name == "host_nb") {
        auto v = util::parse_int(value);
        if (!v) throw ParseError("bad host_nb", p.line());
        declared_hosts = static_cast<int>(*v);
      } else {
        throw ParseError("unknown conf_property '" + std::string(name) + "'",
                         p.line());
      }
      p.skip_element();
    } else if (p.name() == "host_lists" && !seen_lists) {
      seen_lists = true;
      for (auto lists_ev = p.next(); lists_ev != PullParser::Event::kEndElement;
           lists_ev = p.next()) {
        if (lists_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "hosts") {
          HostRange r;
          r.start = require_int_attr(p, "start");
          r.nb = require_int_attr(p, "nb");
          cfg.hosts.push_back(r);
        }
        p.skip_element();
      }
    } else {
      p.skip_element();
    }
  }
  if (!have_cluster) {
    throw ParseError("<configuration> lacks a cluster_id conf_property",
                     cfg_line);
  }
  if (!seen_lists) {
    throw ParseError("<configuration> lacks <host_lists>", cfg_line);
  }
  if (declared_hosts >= 0 && declared_hosts != cfg.host_count()) {
    throw ParseError(
        "host_nb (" + std::to_string(declared_hosts) +
            ") disagrees with the host ranges (" +
            std::to_string(cfg.host_count()) + " hosts)",
        cfg_line);
  }
  return cfg;
}

Task read_node(PullParser& p) {
  const long node_line = p.line();
  Task t;
  bool have_id = false;
  bool have_type = false;
  bool have_start = false;
  bool have_end = false;
  double start = 0;
  double end = 0;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "node_property") {
      const auto name = p.require_attr("name");
      const auto value = p.require_attr("value");
      if (name == "id") {
        t.set_id(std::string(value));
        have_id = true;
      } else if (name == "type") {
        t.set_type(std::string(value));
        have_type = true;
      } else if (name == "start_time") {
        auto v = util::parse_double(value);
        if (!v) throw ParseError("bad start_time", p.line());
        start = *v;
        have_start = true;
      } else if (name == "end_time") {
        auto v = util::parse_double(value);
        if (!v) throw ParseError("bad end_time", p.line());
        end = *v;
        have_end = true;
      } else {
        t.set_property(std::string(name), std::string(value));
      }
      p.skip_element();
    } else if (p.name() == "configuration") {
      t.add_configuration(read_configuration(p));
    } else {
      p.skip_element();
    }
  }
  if (!have_id || !have_type || !have_start || !have_end) {
    throw ParseError(
        "<node_statistics> requires id, type, start_time and end_time "
        "node_property entries",
        node_line);
  }
  t.set_times(start, end);
  return t;
}

}  // namespace

model::Schedule read_schedule_xml(const std::string& xml_text) {
  PullParser p(xml_text);
  p.next();  // the parser throws unless the document opens with an element
  if (p.name() != "jedule") {
    throw ParseError("root element must be <jedule>, got <" +
                         std::string(p.name()) + ">",
                     p.line());
  }
  const long root_line = p.line();

  Schedule schedule;
  bool seen_meta = false;
  bool seen_platform = false;
  bool seen_nodes = false;
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    const std::string_view section = p.name();
    if (section == "jedule_meta" && !seen_meta) {
      seen_meta = true;
      for (auto meta_ev = p.next(); meta_ev != PullParser::Event::kEndElement;
           meta_ev = p.next()) {
        if (meta_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "meta") {
          auto name = std::string(p.require_attr("name"));
          auto value = std::string(p.require_attr("value"));
          schedule.set_meta(std::move(name), std::move(value));
        }
        p.skip_element();
      }
    } else if (section == "platform" && !seen_platform) {
      seen_platform = true;
      for (auto plat_ev = p.next(); plat_ev != PullParser::Event::kEndElement;
           plat_ev = p.next()) {
        if (plat_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "cluster") {
          model::Cluster c;
          c.id = require_int_attr(p, "id");
          if (auto name = p.attr("name")) {
            c.name = std::string(*name);
          } else {
            c.name = "cluster-" + std::to_string(c.id);
          }
          c.hosts = require_int_attr(p, "hosts");
          schedule.add_cluster(std::move(c));
        }
        p.skip_element();
      }
    } else if (section == "node_infos" && !seen_nodes) {
      seen_nodes = true;
      for (auto node_ev = p.next(); node_ev != PullParser::Event::kEndElement;
           node_ev = p.next()) {
        if (node_ev != PullParser::Event::kStartElement) continue;
        if (p.name() == "node_statistics") {
          schedule.add_task(read_node(p));
        } else {
          p.skip_element();
        }
      }
    } else {
      p.skip_element();
    }
  }

  if (!seen_platform) {
    throw ParseError("<jedule> lacks a <platform> section (at least one "
                         "cluster is required)",
                     root_line);
  }

  schedule.validate();
  return schedule;
}

model::Schedule read_schedule_xml_dom(const std::string& xml_text) {
  const xml::Document doc = xml::baseline_parse(xml_text);
  const xml::Element& root = *doc.root;
  if (root.name() != "jedule") {
    throw ParseError("root element must be <jedule>, got <" + root.name() +
                         ">",
                     root.source_line());
  }

  Schedule schedule;

  if (const auto* meta = root.first_child("jedule_meta")) {
    for (const auto* info : meta->children_named("meta")) {
      schedule.set_meta(std::string(info->require_attr("name")),
                        std::string(info->require_attr("value")));
    }
  }

  const xml::Element* platform = root.first_child("platform");
  if (platform == nullptr) {
    throw ParseError("<jedule> lacks a <platform> section (at least one "
                         "cluster is required)",
                     root.source_line());
  }
  for (const auto* cluster : platform->children_named("cluster")) {
    model::Cluster c;
    c.id = require_int_attr(*cluster, "id");
    if (auto name = cluster->attr("name")) {
      c.name = std::string(*name);
    } else {
      c.name = "cluster-" + std::to_string(c.id);
    }
    c.hosts = require_int_attr(*cluster, "hosts");
    schedule.add_cluster(std::move(c));
  }

  if (const auto* nodes = root.first_child("node_infos")) {
    for (const auto* node : nodes->children_named("node_statistics")) {
      schedule.add_task(parse_node(*node));
    }
  }

  schedule.validate();
  return schedule;
}

model::Schedule load_schedule_xml(const std::string& path) {
  return read_schedule_xml(read_file(path));
}

namespace {

/// Times are written with enough digits to round-trip a double exactly,
/// trimmed of trailing zeros past the third decimal so simple files keep the
/// paper's "0.310" look.
std::string format_time(double t) {
  std::string full = util::format_fixed(t, 3);
  if (auto parsed = util::parse_double(full); parsed && *parsed == t) {
    return full;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

void add_kv(xml::Element& parent, const char* element, std::string name,
            std::string value) {
  auto& e = parent.add_child(element);
  e.set_attr("name", std::move(name));
  e.set_attr("value", std::move(value));
}

}  // namespace

std::string write_schedule_xml(const model::Schedule& schedule) {
  xml::Element root("jedule");
  root.set_attr("version", "1.0");

  if (!schedule.meta().empty()) {
    auto& meta = root.add_child("jedule_meta");
    for (const auto& [k, v] : schedule.meta()) add_kv(meta, "meta", k, v);
  }

  auto& platform = root.add_child("platform");
  for (const auto& c : schedule.clusters()) {
    auto& e = platform.add_child("cluster");
    e.set_attr("id", std::to_string(c.id));
    e.set_attr("name", c.name);
    e.set_attr("hosts", std::to_string(c.hosts));
  }

  auto& nodes = root.add_child("node_infos");
  for (const auto& t : schedule.tasks()) {
    auto& node = nodes.add_child("node_statistics");
    add_kv(node, "node_property", "id", t.id());
    add_kv(node, "node_property", "type", t.type());
    add_kv(node, "node_property", "start_time", format_time(t.start_time()));
    add_kv(node, "node_property", "end_time", format_time(t.end_time()));
    for (const auto& [k, v] : t.properties()) {
      add_kv(node, "node_property", k, v);
    }
    for (const auto& cfg : t.configurations()) {
      auto& c = node.add_child("configuration");
      add_kv(c, "conf_property", "cluster_id",
             std::to_string(cfg.cluster_id));
      add_kv(c, "conf_property", "host_nb", std::to_string(cfg.host_count()));
      auto& lists = c.add_child("host_lists");
      for (const auto& r : cfg.hosts) {
        auto& h = lists.add_child("hosts");
        h.set_attr("start", std::to_string(r.start));
        h.set_attr("nb", std::to_string(r.nb));
      }
    }
  }

  return xml::serialize(root);
}

void save_schedule_xml(const model::Schedule& schedule,
                       const std::string& path) {
  write_file(path, write_schedule_xml(schedule));
}

}  // namespace jedule::io
