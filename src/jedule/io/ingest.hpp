#pragma once

// io::ingest — shared machinery of the parallel chunked ingest pipeline
// (DESIGN.md §4i). The format readers split their input at safe record
// boundaries (element boundaries for XML, newlines for CSV/SWF), parse the
// chunks on worker threads, and merge in submission order, so the result
// is bit-identical to the serial parse at any thread count. This header
// owns the three pieces every format shares:
//
//   * TextSource — the input text, with transparent *pipelined* gzip: a
//     producer thread inflates into a pre-sized buffer and publishes a
//     growing prefix, so scanning/parsing overlap with decompression,
//   * ChunkExecutor — an order-aware worker pool with deterministic
//     (lowest-submission-index) error selection,
//   * IngestOptions / IngestStats / per-format counters — the knobs and
//     the observability surface (serve /stats, CLI --ingest-stats).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "jedule/model/schedule.hpp"

namespace jedule::io {

struct IngestOptions {
  /// Worker threads for the chunked parse. <= 0 resolves like every other
  /// parallel stage (JEDULE_THREADS env, else hardware concurrency); 1
  /// forces the serial path. The output is identical either way.
  int threads = 0;
  /// Inputs below this stay serial: the chunk bookkeeping would cost more
  /// than it saves.
  std::size_t min_parallel_bytes = 1u << 20;
  /// Deterministic batch-cutting threshold: a worker chunk closes once it
  /// holds this many bytes. A pure function of the input (never of worker
  /// availability), so chunk boundaries do not depend on timing.
  std::size_t target_chunk_bytes = 2u << 20;
};

/// What one ingest actually did; filled by parse_schedule/load_schedule
/// and surfaced via --ingest-stats and the /stats "ingest" section.
struct IngestStats {
  std::string format;          // parser name ("jedule-xml", "csv", ...)
  std::size_t bytes = 0;       // decoded input bytes parsed
  std::size_t chunks = 0;      // worker chunks (0 on the serial path)
  int threads = 1;             // resolved worker thread count
  bool parallel = false;       // the chunked path produced the result
  bool gzip = false;           // input was a gzip member
  bool mapped_input = false;   // input served from a memory mapping
  std::size_t mapped_bytes = 0;  // bytes of that mapping
  double parse_ms = 0.0;       // wall time inside parse_schedule
};

/// Cumulative per-format counters (process-wide, thread-safe).
struct IngestCounters {
  std::uint64_t parses = 0;
  std::uint64_t parallel_parses = 0;
  std::uint64_t bytes = 0;
  std::uint64_t chunks = 0;
  double parse_ms = 0.0;
  int last_threads = 0;
};
void record_ingest(const IngestStats& stats);
std::map<std::string, IngestCounters> ingest_counters();

/// One-line human summary ("xml 12.3 MB in 140 ms (87.9 MB/s, 8 threads,
/// 6 chunks)") for the CLI --ingest-stats flag.
std::string ingest_summary(const IngestStats& stats);

/// The text being ingested. Non-gzip inputs are complete immediately; a
/// gzip input (RFC 1952 magic) starts a producer thread that inflates into
/// a buffer sized from the ISIZE trailer hint and *never reallocated*, so
/// views into the published prefix stay valid while decompression runs.
/// When the hint lied (output exceeds the bounded capacity), the source
/// falls back to the eager decoder on the consumer thread; the original
/// buffer is kept alive, so earlier views survive the switch.
///
/// Single consumer: one thread calls wait_for()/all(). Producer errors
/// (corrupt gzip) are rethrown from wait_for() with exactly the serial
/// util::gzip_decompress messages.
class TextSource {
 public:
  struct View {
    const char* data = nullptr;
    std::size_t size = 0;  // decoded bytes available (monotonic)
    bool complete = false;  // size is the final text size
    std::string_view text() const { return {data, size}; }
  };

  /// Externally owned bytes; `keepalive` (may be null if the caller
  /// guarantees the lifetime) keeps them alive for the source's lifetime.
  TextSource(std::string_view raw, std::shared_ptr<const void> keepalive);
  /// Adopts the bytes.
  explicit TextSource(std::string raw);
  ~TextSource();
  TextSource(const TextSource&) = delete;
  TextSource& operator=(const TextSource&) = delete;

  bool gzip() const { return gzip_; }
  std::size_t raw_size() const { return raw_.size(); }

  /// Blocks until at least `target` decoded bytes are available or the
  /// text is complete. The data pointer may change between calls (the
  /// overflow fallback switches buffers), so always re-slice from the
  /// latest View; previously taken string_views remain valid.
  View wait_for(std::size_t target);

  /// The complete text (blocks until decompression finishes).
  std::string_view all();

 private:
  void start_producer();
  void run_eager_fallback();  // consumer thread, after bounded overflow

  std::string owned_;                     // when constructed from a string
  std::shared_ptr<const void> keepalive_;
  std::string_view raw_;
  bool gzip_ = false;

  // Gzip pipeline state (untouched for plain inputs).
  std::unique_ptr<std::uint8_t[]> buf_;
  std::size_t capacity_ = 0;
  std::vector<std::uint8_t> fallback_;
  bool use_fallback_ = false;
  std::thread producer_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t published_ = 0;
  bool done_ = false;
  bool overflow_ = false;
  std::exception_ptr error_;
};

/// Incremental newline finder over a TextSource — the boundary scanner of
/// the line-oriented formats (CSV, SWF). It tracks the latest published
/// View and grows it on demand, so scanning a gzip input overlaps with
/// decompression. Offsets are stable across refreshes (the decoded text
/// never changes, only how much of it is visible); slices taken from the
/// current view stay valid even if a later refresh switches buffers.
class LineScanner {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit LineScanner(TextSource& src);

  /// Offset of the first '\n' at or after `from`, or npos once the
  /// complete text is known to hold none. Blocks for more decoded bytes
  /// as needed; on npos return the view covers the whole text.
  std::size_t find_newline(std::size_t from);

  /// Grows the view to at least `target` bytes (or the complete text).
  void ensure(std::size_t target);

  std::string_view slice(std::size_t begin, std::size_t end) const {
    return view_.substr(begin, end - begin);
  }
  std::size_t size() const { return view_.size(); }
  bool complete() const { return complete_; }

 private:
  void refresh(std::size_t target);

  TextSource* src_;
  std::string_view view_;
  bool complete_ = false;
};

/// Chunk-local memo over the global task-type intern pool: worker threads
/// resolve each distinct type string once per chunk instead of taking the
/// pool's shared lock per task. Keys are views into the pooled strings
/// themselves (node-stable for the process lifetime). The pointers are the
/// same ones the serial readers intern, so schedules built through the
/// cache stay byte-identical to serial parses.
struct TypeInternCache {
  std::unordered_map<std::string_view, const std::string*> map;
  const std::string* intern(std::string_view type) {
    if (const auto it = map.find(type); it != map.end()) return it->second;
    const std::string* pooled = model::detail::intern_task_type(type);
    map.emplace(std::string_view(*pooled), pooled);
    return pooled;
  }
};

/// Order-aware chunk executor. submit() hands jobs to `threads` workers
/// (or runs them inline when threads <= 1) while the caller keeps
/// scanning; finish() drains the queue and rethrows the exception of the
/// *lowest-index* failed job, so the reported error does not depend on
/// worker timing. After any failure, queued jobs are dropped — the caller
/// reacts by re-running the serial parse, which re-derives the exact
/// serial error (or, for a chunk-local fluke, the correct result).
class ChunkExecutor {
 public:
  explicit ChunkExecutor(int threads);
  ~ChunkExecutor();
  ChunkExecutor(const ChunkExecutor&) = delete;
  ChunkExecutor& operator=(const ChunkExecutor&) = delete;

  void submit(std::function<void()> job);
  /// Waits for every submitted job; rethrows the deterministic error.
  void finish();
  bool failed() const;

 private:
  struct Job {
    std::size_t index;
    std::function<void()> fn;
  };
  void worker_loop();
  void run_one(const Job& job);

  int threads_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Job> queue_;
  std::size_t next_index_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::size_t error_index_ = static_cast<std::size_t>(-1);
  std::exception_ptr error_;
};

}  // namespace jedule::io
