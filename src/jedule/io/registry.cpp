#include "jedule/io/registry.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "jedule/io/csv.hpp"
#include "jedule/io/file.hpp"
#include "jedule/io/jedule_xml.hpp"
#include "jedule/io/snapshot.hpp"
#include "jedule/platform/mmap.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::io {

namespace {

class JeduleXmlParser final : public ScheduleParser {
 public:
  std::string name() const override { return "jedule-xml"; }

  bool sniff(const std::string& path, const std::string& head) const override {
    if (util::ends_with(path, ".jed") || util::ends_with(path, ".jedule")) {
      return true;
    }
    const auto body = util::trim(head);
    return util::ends_with(path, ".xml") ||
           util::starts_with(body, "<?xml") ||
           util::starts_with(body, "<jedule");
  }

  model::Schedule parse(std::string_view content) const override {
    return read_schedule_xml(content);
  }

  model::Schedule parse_chunked(TextSource& src, const IngestOptions& opt,
                                IngestStats* stats) const override {
    return read_schedule_xml_chunked(src, opt, stats);
  }
};

class CsvParser final : public ScheduleParser {
 public:
  std::string name() const override { return "csv"; }

  bool sniff(const std::string& path, const std::string& head) const override {
    if (util::ends_with(path, ".csv")) return true;
    const auto body = util::trim(head);
    return util::starts_with(body, "!cluster") ||
           util::starts_with(body, "task_id,");
  }

  model::Schedule parse(std::string_view content) const override {
    return read_schedule_csv(content);
  }

  model::Schedule parse_chunked(TextSource& src, const IngestOptions& opt,
                                IngestStats* stats) const override {
    return read_schedule_csv_chunked(src, opt, stats);
  }
};

// Generic-registry access to `.jbin` snapshots: materializes the AoS
// schedule from the columns, so every load_schedule() caller (view,
// export, diff, ...) accepts snapshots. The engine's store bypasses this
// and keeps the zero-copy arena/index (engine::load_entry).
class SnapshotParser final : public ScheduleParser {
 public:
  std::string name() const override { return "jbin"; }

  bool sniff(const std::string& path, const std::string& head) const override {
    return util::ends_with(path, ".jbin") || is_snapshot(head);
  }

  model::Schedule parse(std::string_view content) const override {
    // The columns borrow from `content`; copy it into a keep-alive owner.
    auto owner = std::make_shared<std::string>(content);
    Snapshot snap = parse_snapshot(
        reinterpret_cast<const std::uint8_t*>(owner->data()), owner->size(),
        owner, 0);
    model::Schedule schedule = snap.arena.to_schedule();
    schedule.validate();
    return schedule;
  }
};

}  // namespace

ParserRegistry& ParserRegistry::instance() {
  static ParserRegistry* registry = [] {
    auto* r = new ParserRegistry();
    r->register_parser(std::make_unique<JeduleXmlParser>());
    r->register_parser(std::make_unique<CsvParser>());
    r->register_parser(std::make_unique<SnapshotParser>());
    return r;
  }();
  return *registry;
}

void ParserRegistry::register_parser(std::unique_ptr<ScheduleParser> parser) {
  JED_ASSERT(parser != nullptr);
  for (auto& p : parsers_) {
    if (p->name() == parser->name()) {
      p = std::move(parser);
      return;
    }
  }
  parsers_.push_back(std::move(parser));
}

const ScheduleParser* ParserRegistry::find(const std::string& name) const {
  for (const auto& p : parsers_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

const ScheduleParser* ParserRegistry::sniff(const std::string& path,
                                            const std::string& head) const {
  for (auto it = parsers_.rbegin(); it != parsers_.rend(); ++it) {
    if ((*it)->sniff(path, head)) return it->get();
  }
  return nullptr;
}

std::vector<std::string> ParserRegistry::parser_names() const {
  std::vector<std::string> names;
  names.reserve(parsers_.size());
  for (const auto& p : parsers_) names.push_back(p->name());
  return names;
}

std::string ParserRegistry::supported_summary() const {
  return util::join(parser_names(), ", ");
}

model::Schedule parse_schedule(TextSource& src, const std::string& name_hint,
                               const std::string& format,
                               const IngestOptions& opt, IngestStats* stats) {
  const auto started = std::chrono::steady_clock::now();
  IngestStats local;
  IngestStats* s = stats != nullptr ? stats : &local;

  // Gzip container (e.g. schedule.jed.gz): detected by the magic bytes, not
  // the suffix, so piped/renamed files work too. The ".gz" is stripped
  // before sniffing so the inner format is chosen from the inner name.
  std::string sniff_path = name_hint;
  if (src.gzip() && util::ends_with(sniff_path, ".gz")) {
    sniff_path.resize(sniff_path.size() - 3);
  }

  const ParserRegistry& registry = ParserRegistry::instance();
  const ScheduleParser* parser = nullptr;
  if (!format.empty()) {
    parser = registry.find(format);
    if (parser == nullptr) {
      throw ParseError("no parser registered for format '" + format +
                       "' (supported formats: " +
                       registry.supported_summary() + ")");
    }
  } else {
    // Sniff on the first decoded bytes; for a gzip input this overlaps
    // with the producer thread already inflating the rest.
    const TextSource::View head = src.wait_for(512);
    parser = registry.sniff(sniff_path,
                            std::string(head.text().substr(
                                0, std::min<std::size_t>(head.size, 512))));
    if (parser == nullptr) {
      const std::string what =
          name_hint.empty() ? "the input" : "'" + name_hint + "'";
      throw ParseError("no registered parser recognizes " + what +
                       " (supported formats: " + registry.supported_summary() +
                       "; pick one explicitly with --format or ?format=)");
    }
  }

  IngestOptions resolved = opt;
  resolved.threads = util::resolve_threads(opt.threads);
  s->format = parser->name();
  s->gzip = src.gzip();
  s->threads = resolved.threads;

  model::Schedule schedule = parser->parse_chunked(src, resolved, s);

  s->bytes = src.all().size();
  s->parse_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  record_ingest(*s);
  return schedule;
}

model::Schedule parse_schedule(std::string content,
                               const std::string& name_hint,
                               const std::string& format,
                               const IngestOptions& opt, IngestStats* stats) {
  TextSource src(std::move(content));
  return parse_schedule(src, name_hint, format, opt, stats);
}

model::Schedule load_schedule(const std::string& path,
                              const std::string& format,
                              const IngestOptions& opt, IngestStats* stats) {
  std::shared_ptr<const platform::MappedFile> map;
  try {
    map = platform::MappedFile::open(path);
  } catch (const IoError&) {
    // Unreadable or non-seekable (pipe, device): read_file below either
    // succeeds streaming or raises its usual error for missing files.
    map = nullptr;
  }
  if (map != nullptr) {
    IngestStats local;
    IngestStats* s = stats != nullptr ? stats : &local;
    s->mapped_input = map->mapped();
    s->mapped_bytes = map->mapped() ? map->size() : 0;
    TextSource src(
        std::string_view(reinterpret_cast<const char*>(map->data()),
                         map->size()),
        map);
    return parse_schedule(src, path, format, opt, s);
  }
  TextSource src(read_file(path));
  return parse_schedule(src, path, format, opt, stats);
}

}  // namespace jedule::io
