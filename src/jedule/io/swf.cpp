#include "jedule/io/swf.hpp"

#include <algorithm>
#include <deque>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::io {

int SwfTrace::max_procs() const {
  for (const char* key : {"MaxProcs", "MaxNodes"}) {
    auto it = header.find(key);
    if (it != header.end()) {
      if (auto v = util::parse_int(it->second)) return static_cast<int>(*v);
    }
  }
  int m = 0;
  for (const auto& j : jobs) m = std::max(m, j.allocated_procs);
  return m;
}

namespace {

// "; Key: Value" header comment; `line` is trimmed and starts with ';'.
void apply_header_line(std::string_view line, SwfTrace* trace) {
  const auto body = util::trim(line.substr(1));
  const auto colon = body.find(':');
  if (colon != std::string_view::npos) {
    const auto key = util::trim(body.substr(0, colon));
    const auto value = util::trim(body.substr(colon + 1));
    if (!key.empty()) {
      trace->header[std::string(key)] = std::string(value);
    }
  }
}

// One 18-field data line; `line` is trimmed and non-empty. Shared by the
// serial reader and the chunk workers, so both accept exactly the same
// lines (workers pass a dummy line number — any error they raise makes
// the caller rerun the serial parse, which re-derives the real one).
SwfJob parse_data_line(std::string_view line, long line_no) {
  const auto fields = util::split_ws(line);
  if (fields.size() < 18) {
    throw ParseError("SWF data line has " + std::to_string(fields.size()) +
                         " fields, expected 18",
                     line_no);
  }
  auto as_int = [&](std::size_t i) {
    auto v = util::parse_int(fields[i]);
    if (!v) throw ParseError("bad integer field '" + fields[i] + "'", line_no);
    return *v;
  };
  auto as_double = [&](std::size_t i) {
    auto v = util::parse_double(fields[i]);
    if (!v) throw ParseError("bad numeric field '" + fields[i] + "'", line_no);
    return *v;
  };
  SwfJob j;
  j.job_id = as_int(0);
  j.submit_time = as_double(1);
  j.wait_time = as_double(2);
  j.run_time = as_double(3);
  j.allocated_procs = static_cast<int>(as_int(4));
  j.avg_cpu_time = as_double(5);
  j.used_memory = as_double(6);
  j.requested_procs = static_cast<int>(as_int(7));
  j.requested_time = as_double(8);
  j.requested_memory = as_double(9);
  j.status = static_cast<int>(as_int(10));
  j.user_id = static_cast<int>(as_int(11));
  j.group_id = static_cast<int>(as_int(12));
  j.executable = static_cast<int>(as_int(13));
  j.queue = static_cast<int>(as_int(14));
  j.partition = static_cast<int>(as_int(15));
  j.preceding_job = as_int(16);
  j.think_time = as_double(17);
  return j;
}

// Data lines of one worker chunk (complete lines; every chunk except
// possibly the last ends with '\n'). A ';' header line here is legal
// input whose last-wins ordering the chunked path cannot honor, so it
// bails through the ParseError fallback channel.
void parse_swf_chunk(std::string_view chunk, std::vector<SwfJob>* out) {
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t nl = chunk.find('\n', pos);
    const std::string_view seg =
        nl == std::string_view::npos ? chunk.substr(pos)
                                     : chunk.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? chunk.size() : nl + 1;
    const auto line = util::trim(seg);
    if (line.empty()) continue;
    if (line[0] == ';') {
      throw ParseError("header line after data needs the serial reader");
    }
    out->push_back(parse_data_line(line, 0));
  }
}

}  // namespace

SwfTrace read_swf(std::string_view text) {
  SwfTrace trace;
  long line_no = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty()) continue;
    if (line[0] == ';') {
      apply_header_line(line, &trace);
      continue;
    }
    trace.jobs.push_back(parse_data_line(line, line_no));
  }
  return trace;
}

SwfTrace read_swf_chunked(TextSource& src, const IngestOptions& opt,
                          IngestStats* stats) {
  const int threads = std::max(1, opt.threads);
  if (threads <= 1) return read_swf(src.all());
  if (!src.gzip()) {
    const TextSource::View head = src.wait_for(0);
    if (head.complete && head.size < opt.min_parallel_bytes) {
      return read_swf(src.all());
    }
  }
  try {
    LineScanner scan(src);
    SwfTrace trace;

    // Serial pre-pass: the leading ';' header block, in file order.
    std::size_t pos = 0;
    std::size_t data_begin = LineScanner::npos;
    while (true) {
      const std::size_t nl = scan.find_newline(pos);
      const std::size_t line_end = nl == LineScanner::npos ? scan.size() : nl;
      const std::size_t next =
          nl == LineScanner::npos ? LineScanner::npos : nl + 1;
      const auto line = util::trim(scan.slice(pos, line_end));
      if (!line.empty()) {
        if (line[0] != ';') {
          data_begin = pos;  // first data line starts the chunked region
          break;
        }
        apply_header_line(line, &trace);
      }
      if (next == LineScanner::npos) break;  // header-only trace
      pos = next;
    }

    std::deque<std::vector<SwfJob>> outputs;
    ChunkExecutor exec(threads);
    if (data_begin != LineScanner::npos) {
      std::size_t begin = data_begin;
      while (true) {
        scan.ensure(begin + 1);
        if (scan.complete() && begin >= scan.size()) break;
        const std::size_t nl =
            scan.find_newline(begin + opt.target_chunk_bytes);
        const std::size_t end =
            nl == LineScanner::npos ? scan.size() : nl + 1;
        outputs.emplace_back();
        std::vector<SwfJob>* out = &outputs.back();
        const std::string_view chunk = scan.slice(begin, end);
        exec.submit([chunk, out] { parse_swf_chunk(chunk, out); });
        if (nl == LineScanner::npos) break;
        begin = end;
      }
    }
    exec.finish();

    std::size_t total = 0;
    for (const auto& o : outputs) total += o.size();
    trace.jobs.reserve(total);
    for (const auto& o : outputs) {
      trace.jobs.insert(trace.jobs.end(), o.begin(), o.end());
    }
    if (stats != nullptr) {
      stats->chunks = outputs.size();
      stats->parallel = true;
    }
    return trace;
  } catch (const ParseError&) {
    if (stats != nullptr) {
      stats->chunks = 0;
      stats->parallel = false;
    }
    return read_swf(src.all());
  }
}

SwfTrace load_swf(const std::string& path) { return read_swf(read_file(path)); }

std::string write_swf(const SwfTrace& trace) {
  std::string out;
  for (const auto& [k, v] : trace.header) {
    out += "; " + k + ": " + v + "\n";
  }
  auto num = [](double v) {
    // SWF stores integral values without decimals; keep that convention.
    if (v == static_cast<long long>(v)) {
      return std::to_string(static_cast<long long>(v));
    }
    return util::format_fixed(v, 2);
  };
  for (const auto& j : trace.jobs) {
    out += std::to_string(j.job_id) + " " + num(j.submit_time) + " " +
           num(j.wait_time) + " " + num(j.run_time) + " " +
           std::to_string(j.allocated_procs) + " " + num(j.avg_cpu_time) +
           " " + num(j.used_memory) + " " + std::to_string(j.requested_procs) +
           " " + num(j.requested_time) + " " + num(j.requested_memory) + " " +
           std::to_string(j.status) + " " + std::to_string(j.user_id) + " " +
           std::to_string(j.group_id) + " " + std::to_string(j.executable) +
           " " + std::to_string(j.queue) + " " + std::to_string(j.partition) +
           " " + std::to_string(j.preceding_job) + " " + num(j.think_time) +
           "\n";
  }
  return out;
}

void save_swf(const SwfTrace& trace, const std::string& path) {
  write_file(path, write_swf(trace));
}

}  // namespace jedule::io
