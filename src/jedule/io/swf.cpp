#include "jedule/io/swf.hpp"

#include <algorithm>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::io {

int SwfTrace::max_procs() const {
  for (const char* key : {"MaxProcs", "MaxNodes"}) {
    auto it = header.find(key);
    if (it != header.end()) {
      if (auto v = util::parse_int(it->second)) return static_cast<int>(*v);
    }
  }
  int m = 0;
  for (const auto& j : jobs) m = std::max(m, j.allocated_procs);
  return m;
}

SwfTrace read_swf(const std::string& text) {
  SwfTrace trace;
  long line_no = 0;
  for (const auto& raw : util::split(text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty()) continue;
    if (line[0] == ';') {
      // "; Key: Value" header comment.
      auto body = util::trim(line.substr(1));
      const auto colon = body.find(':');
      if (colon != std::string_view::npos) {
        const auto key = util::trim(body.substr(0, colon));
        const auto value = util::trim(body.substr(colon + 1));
        if (!key.empty()) {
          trace.header[std::string(key)] = std::string(value);
        }
      }
      continue;
    }
    const auto fields = util::split_ws(line);
    if (fields.size() < 18) {
      throw ParseError("SWF data line has " + std::to_string(fields.size()) +
                           " fields, expected 18",
                       line_no);
    }
    auto as_int = [&](std::size_t i) {
      auto v = util::parse_int(fields[i]);
      if (!v) throw ParseError("bad integer field '" + fields[i] + "'", line_no);
      return *v;
    };
    auto as_double = [&](std::size_t i) {
      auto v = util::parse_double(fields[i]);
      if (!v) throw ParseError("bad numeric field '" + fields[i] + "'", line_no);
      return *v;
    };
    SwfJob j;
    j.job_id = as_int(0);
    j.submit_time = as_double(1);
    j.wait_time = as_double(2);
    j.run_time = as_double(3);
    j.allocated_procs = static_cast<int>(as_int(4));
    j.avg_cpu_time = as_double(5);
    j.used_memory = as_double(6);
    j.requested_procs = static_cast<int>(as_int(7));
    j.requested_time = as_double(8);
    j.requested_memory = as_double(9);
    j.status = static_cast<int>(as_int(10));
    j.user_id = static_cast<int>(as_int(11));
    j.group_id = static_cast<int>(as_int(12));
    j.executable = static_cast<int>(as_int(13));
    j.queue = static_cast<int>(as_int(14));
    j.partition = static_cast<int>(as_int(15));
    j.preceding_job = as_int(16);
    j.think_time = as_double(17);
    trace.jobs.push_back(j);
  }
  return trace;
}

SwfTrace load_swf(const std::string& path) { return read_swf(read_file(path)); }

std::string write_swf(const SwfTrace& trace) {
  std::string out;
  for (const auto& [k, v] : trace.header) {
    out += "; " + k + ": " + v + "\n";
  }
  auto num = [](double v) {
    // SWF stores integral values without decimals; keep that convention.
    if (v == static_cast<long long>(v)) {
      return std::to_string(static_cast<long long>(v));
    }
    return util::format_fixed(v, 2);
  };
  for (const auto& j : trace.jobs) {
    out += std::to_string(j.job_id) + " " + num(j.submit_time) + " " +
           num(j.wait_time) + " " + num(j.run_time) + " " +
           std::to_string(j.allocated_procs) + " " + num(j.avg_cpu_time) +
           " " + num(j.used_memory) + " " + std::to_string(j.requested_procs) +
           " " + num(j.requested_time) + " " + num(j.requested_memory) + " " +
           std::to_string(j.status) + " " + std::to_string(j.user_id) + " " +
           std::to_string(j.group_id) + " " + std::to_string(j.executable) +
           " " + std::to_string(j.queue) + " " + std::to_string(j.partition) +
           " " + std::to_string(j.preceding_job) + " " + num(j.think_time) +
           "\n";
  }
  return out;
}

void save_swf(const SwfTrace& trace, const std::string& path) {
  write_file(path, write_swf(trace));
}

}  // namespace jedule::io
