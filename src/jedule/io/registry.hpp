#pragma once

// Pluggable schedule parsers (paper Sec. II.C.1: "One can also extend Jedule
// with a different parser and it is therefore possible to have different
// input formats, not necessarily in XML").
//
// Parsers register with the global registry; load_schedule() picks one by
// sniffing the file name and the first bytes of content. The Jedule-XML and
// CSV parsers are built in; jedule::workload registers an SWF parser the
// same way a user extension would.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "jedule/io/ingest.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::io {

class ScheduleParser {
 public:
  virtual ~ScheduleParser() = default;

  /// Short unique format name ("jedule-xml", "csv", "swf", ...).
  virtual std::string name() const = 0;

  /// True if this parser recognizes the file. `path` is the file name and
  /// `head` the first bytes of its content (possibly the whole file).
  virtual bool sniff(const std::string& path, const std::string& head) const = 0;

  /// Parses the whole content into a validated schedule. The view borrows
  /// the caller's bytes; parsers must copy whatever they keep.
  virtual model::Schedule parse(std::string_view content) const = 0;

  /// Chunked entry point of the parallel ingest pipeline (DESIGN.md §4i).
  /// The default delegates to parse() on the complete text; the built-in
  /// XML/CSV/SWF parsers override it with boundary-scanned multi-threaded
  /// readers whose output is bit-identical to parse() at any thread
  /// count. `opt.threads` arrives already resolved (>= 1).
  virtual model::Schedule parse_chunked(TextSource& src,
                                        const IngestOptions& opt,
                                        IngestStats* stats) const {
    (void)opt;
    (void)stats;
    return parse(src.all());
  }
};

class ParserRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in parsers.
  static ParserRegistry& instance();

  /// Registers a parser; a parser with the same name replaces the old one.
  void register_parser(std::unique_ptr<ScheduleParser> parser);

  /// Parser by format name, or nullptr.
  const ScheduleParser* find(const std::string& name) const;

  /// First parser whose sniff() accepts the file, or nullptr. Registration
  /// order is probe order, with later registrations probed first so user
  /// parsers can override built-ins.
  const ScheduleParser* sniff(const std::string& path,
                              const std::string& head) const;

  std::vector<std::string> parser_names() const;

  /// Comma-separated list of every registered format name, for error
  /// messages ("jedule-xml, csv, swf").
  std::string supported_summary() const;

 private:
  std::vector<std::unique_ptr<ScheduleParser>> parsers_;
};

/// Loads `path` using the registry. If `format` is nonempty it selects the
/// parser by name; otherwise the format is sniffed. Throws ParseError when
/// no parser accepts the file; the error names the offending path and the
/// registered formats. The input is served from a platform::MappedFile
/// when the file is mappable (no full-file copy); non-seekable inputs fall
/// back to read_file. `opt.threads` (resolved via util::resolve_threads:
/// explicit value, else JEDULE_THREADS, else hardware) drives the chunked
/// parallel parse; the result is bit-identical at any thread count.
/// When `stats` is non-null it receives what the ingest actually did.
model::Schedule load_schedule(const std::string& path,
                              const std::string& format = "",
                              const IngestOptions& opt = {},
                              IngestStats* stats = nullptr);

/// Parses in-memory trace bytes exactly like load_schedule parses a file:
/// transparent gzip (detected by the RFC 1952 magic), an explicit `format`
/// override, else sniffing with `name_hint` standing in for the file name
/// (empty is fine — content sniffing still runs). This is the ingest entry
/// point of `jedule serve`, where the bytes arrive in a request body and
/// never touch the filesystem.
model::Schedule parse_schedule(std::string content,
                               const std::string& name_hint = "",
                               const std::string& format = "",
                               const IngestOptions& opt = {},
                               IngestStats* stats = nullptr);

/// The shared core: parses a TextSource (pipelined gzip, chunked parallel
/// readers) through the registry. Records per-format ingest counters and
/// fills `stats` (optional) with bytes, chunk/thread counts and wall time.
model::Schedule parse_schedule(TextSource& src, const std::string& name_hint,
                               const std::string& format,
                               const IngestOptions& opt,
                               IngestStats* stats = nullptr);

}  // namespace jedule::io
