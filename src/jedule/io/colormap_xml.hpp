#pragma once

// Colormap XML format (paper Fig. 2):
//
//   <cmap name="standard_map">
//     <conf name="min_fontsize_label" value="11"/>
//     <task id="computation">
//       <color type="fg" rgb="FFFFFF"/>
//       <color type="bg" rgb="0000FF"/>
//     </task>
//     <composite>
//       <task id="computation"/>
//       <task id="transfer"/>
//       <color type="fg" rgb="FFFFFF"/>
//       <color type="bg" rgb="ff6200"/>
//     </composite>
//   </cmap>

#include <string>

#include "jedule/color/colormap.hpp"

namespace jedule::io {

color::ColorMap read_colormap_xml(const std::string& xml_text);
color::ColorMap load_colormap_xml(const std::string& path);

std::string write_colormap_xml(const color::ColorMap& map);
void save_colormap_xml(const color::ColorMap& map, const std::string& path);

}  // namespace jedule::io
