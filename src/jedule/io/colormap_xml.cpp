#include "jedule/io/colormap_xml.hpp"

#include <optional>
#include <set>
#include <vector>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/xml/pull.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::io {

namespace {

using color::ColorMap;
using color::CompositeRule;
using color::TaskStyle;
using xml::PullParser;

/// A <color> child captured during the streaming pass. Validation is
/// deferred so error precedence matches the DOM reader this replaces:
/// for a <composite>, missing member ids and the empty-members check are
/// reported before any color problem, regardless of document order.
struct PendingColor {
  long line = 0;
  std::optional<std::string> type;
  std::optional<std::string> rgb;
};

/// Consumes the children of the current <task>/<composite> element,
/// buffering <color> entries (and member <task id>s when `members` is
/// given). Other child elements are ignored, as in the DOM reader.
void collect_style_children(PullParser& p, std::vector<PendingColor>& colors,
                            std::set<std::string>* members) {
  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "color") {
      PendingColor c;
      c.line = p.line();
      if (auto t = p.attr("type")) c.type = std::string(*t);
      if (auto r = p.attr("rgb")) c.rgb = std::string(*r);
      colors.push_back(std::move(c));
    } else if (members != nullptr && p.name() == "task") {
      members->insert(std::string(p.require_attr("id")));
    }
    p.skip_element();
  }
}

/// Builds the style from buffered colors; missing entries keep the
/// defaults. Per color, the checks run in the DOM reader's order:
/// missing type, missing rgb, bad rgb, then bad type value.
TaskStyle build_style(const std::vector<PendingColor>& colors) {
  TaskStyle style;
  for (const auto& c : colors) {
    if (!c.type) {
      throw ParseError("element <color> is missing attribute 'type'", c.line);
    }
    if (!c.rgb) {
      throw ParseError("element <color> is missing attribute 'rgb'", c.line);
    }
    const auto rgb = color::parse_color(*c.rgb);
    if (*c.type == "fg") {
      style.foreground = rgb;
    } else if (*c.type == "bg") {
      style.background = rgb;
    } else {
      throw ParseError("color type must be 'fg' or 'bg', got '" + *c.type +
                           "'",
                       c.line);
    }
  }
  return style;
}

}  // namespace

color::ColorMap read_colormap_xml(const std::string& xml_text) {
  PullParser p(xml_text);
  p.next();  // the parser throws unless the document opens with an element
  if (p.name() != "cmap") {
    throw ParseError("root element must be <cmap>, got <" +
                         std::string(p.name()) + ">",
                     p.line());
  }
  ColorMap map;
  if (auto name = p.attr("name")) map.set_name(std::string(*name));

  for (auto ev = p.next(); ev != PullParser::Event::kEndElement;
       ev = p.next()) {
    if (ev != PullParser::Event::kStartElement) continue;
    if (p.name() == "conf") {
      auto name = std::string(p.require_attr("name"));
      auto value = std::string(p.require_attr("value"));
      map.set_config(std::move(name), std::move(value));
      p.skip_element();
    } else if (p.name() == "task") {
      auto id = std::string(p.require_attr("id"));
      std::vector<PendingColor> colors;
      collect_style_children(p, colors, nullptr);
      map.set_style(std::move(id), build_style(colors));
    } else if (p.name() == "composite") {
      const long rule_line = p.line();
      CompositeRule rule;
      std::vector<PendingColor> colors;
      collect_style_children(p, colors, &rule.members);
      if (rule.members.empty()) {
        throw ParseError("<composite> rule lists no member task types",
                         rule_line);
      }
      rule.style = build_style(colors);
      map.add_composite_rule(std::move(rule));
    } else {
      throw ParseError("unexpected element <" + std::string(p.name()) +
                           "> inside <cmap>",
                       p.line());
    }
  }
  return map;
}

color::ColorMap load_colormap_xml(const std::string& path) {
  return read_colormap_xml(read_file(path));
}

std::string write_colormap_xml(const color::ColorMap& map) {
  xml::Element root("cmap");
  root.set_attr("name", map.name());
  for (const auto& [k, v] : map.config()) {
    auto& conf = root.add_child("conf");
    conf.set_attr("name", k);
    conf.set_attr("value", v);
  }
  auto add_colors = [](xml::Element& parent, const TaskStyle& style) {
    auto& fg = parent.add_child("color");
    fg.set_attr("type", "fg");
    fg.set_attr("rgb", color::to_hex(style.foreground));
    auto& bg = parent.add_child("color");
    bg.set_attr("type", "bg");
    bg.set_attr("rgb", color::to_hex(style.background));
  };
  for (const auto& [type, style] : map.styles()) {
    auto& task = root.add_child("task");
    task.set_attr("id", type);
    add_colors(task, style);
  }
  for (const auto& rule : map.composite_rules()) {
    auto& comp = root.add_child("composite");
    for (const auto& member : rule.members) {
      auto& t = comp.add_child("task");
      t.set_attr("id", member);
    }
    add_colors(comp, rule.style);
  }
  return xml::serialize(root);
}

void save_colormap_xml(const color::ColorMap& map, const std::string& path) {
  write_file(path, write_colormap_xml(map));
}

}  // namespace jedule::io
