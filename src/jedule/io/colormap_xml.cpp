#include "jedule/io/colormap_xml.hpp"

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/xml/xml.hpp"

namespace jedule::io {

namespace {

using color::ColorMap;
using color::CompositeRule;
using color::TaskStyle;

/// Reads the fg/bg <color> children of a <task> or <composite> element into
/// a style; missing entries keep the defaults.
TaskStyle parse_style(const xml::Element& e) {
  TaskStyle style;
  for (const auto* c : e.children_named("color")) {
    const auto type = c->require_attr("type");
    const auto rgb = color::parse_color(c->require_attr("rgb"));
    if (type == "fg") {
      style.foreground = rgb;
    } else if (type == "bg") {
      style.background = rgb;
    } else {
      throw ParseError("color type must be 'fg' or 'bg', got '" +
                           std::string(type) + "'",
                       c->source_line());
    }
  }
  return style;
}

}  // namespace

color::ColorMap read_colormap_xml(const std::string& xml_text) {
  const xml::Document doc = xml::parse(xml_text);
  const xml::Element& root = *doc.root;
  if (root.name() != "cmap") {
    throw ParseError("root element must be <cmap>, got <" + root.name() + ">",
                     root.source_line());
  }
  ColorMap map;
  if (auto name = root.attr("name")) map.set_name(std::string(*name));

  for (const auto& child : root.children()) {
    if (child->name() == "conf") {
      map.set_config(std::string(child->require_attr("name")),
                     std::string(child->require_attr("value")));
    } else if (child->name() == "task") {
      map.set_style(std::string(child->require_attr("id")),
                    parse_style(*child));
    } else if (child->name() == "composite") {
      CompositeRule rule;
      for (const auto* member : child->children_named("task")) {
        rule.members.insert(std::string(member->require_attr("id")));
      }
      if (rule.members.empty()) {
        throw ParseError("<composite> rule lists no member task types",
                         child->source_line());
      }
      rule.style = parse_style(*child);
      map.add_composite_rule(std::move(rule));
    } else {
      throw ParseError("unexpected element <" + child->name() +
                           "> inside <cmap>",
                       child->source_line());
    }
  }
  return map;
}

color::ColorMap load_colormap_xml(const std::string& path) {
  return read_colormap_xml(read_file(path));
}

std::string write_colormap_xml(const color::ColorMap& map) {
  xml::Element root("cmap");
  root.set_attr("name", map.name());
  for (const auto& [k, v] : map.config()) {
    auto& conf = root.add_child("conf");
    conf.set_attr("name", k);
    conf.set_attr("value", v);
  }
  auto add_colors = [](xml::Element& parent, const TaskStyle& style) {
    auto& fg = parent.add_child("color");
    fg.set_attr("type", "fg");
    fg.set_attr("rgb", color::to_hex(style.foreground));
    auto& bg = parent.add_child("color");
    bg.set_attr("type", "bg");
    bg.set_attr("rgb", color::to_hex(style.background));
  };
  for (const auto& [type, style] : map.styles()) {
    auto& task = root.add_child("task");
    task.set_attr("id", type);
    add_colors(task, style);
  }
  for (const auto& rule : map.composite_rules()) {
    auto& comp = root.add_child("composite");
    for (const auto& member : rule.members) {
      auto& t = comp.add_child("task");
      t.set_attr("id", member);
    }
    add_colors(comp, rule.style);
  }
  return xml::serialize(root);
}

void save_colormap_xml(const color::ColorMap& map, const std::string& path) {
  write_file(path, write_colormap_xml(map));
}

}  // namespace jedule::io
