#include "jedule/io/csv.hpp"

#include <algorithm>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::io {

namespace {

using model::Configuration;
using model::HostRange;
using model::Schedule;
using model::Task;

Configuration parse_alloc(std::string_view spec, long line) {
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) {
    throw ParseError("alloc '" + std::string(spec) +
                         "' lacks the '<cluster>:' prefix",
                     line);
  }
  Configuration cfg;
  auto cluster = util::parse_int(spec.substr(0, colon));
  if (!cluster) {
    throw ParseError("bad cluster id in alloc '" + std::string(spec) + "'",
                     line);
  }
  cfg.cluster_id = static_cast<int>(*cluster);
  for (const auto& item : util::split(spec.substr(colon + 1), ';')) {
    const auto dash = item.find('-');
    if (dash == std::string::npos) {
      auto h = util::parse_int(item);
      if (!h) throw ParseError("bad host '" + item + "'", line);
      cfg.hosts.push_back(HostRange{static_cast<int>(*h), 1});
    } else {
      auto lo = util::parse_int(std::string_view(item).substr(0, dash));
      auto hi = util::parse_int(std::string_view(item).substr(dash + 1));
      if (!lo || !hi || *hi < *lo) {
        throw ParseError("bad host range '" + item + "'", line);
      }
      cfg.hosts.push_back(
          HostRange{static_cast<int>(*lo), static_cast<int>(*hi - *lo + 1)});
    }
  }
  if (cfg.hosts.empty()) {
    throw ParseError("alloc '" + std::string(spec) + "' lists no hosts",
                     line);
  }
  return cfg;
}

}  // namespace

model::Schedule read_schedule_csv(const std::string& csv_text) {
  Schedule schedule;
  bool have_clusters = false;
  bool have_header = false;
  int max_host = -1;
  std::vector<Task> tasks;

  long line_no = 0;
  for (const auto& raw : util::split(csv_text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, ',');
    if (line[0] == '!') {
      if (fields[0] == "!cluster") {
        if (fields.size() != 4) {
          throw ParseError("!cluster needs id,name,hosts", line_no);
        }
        auto id = util::parse_int(fields[1]);
        auto hosts = util::parse_int(fields[3]);
        if (!id || !hosts) throw ParseError("bad !cluster line", line_no);
        schedule.add_cluster(static_cast<int>(*id), fields[2],
                             static_cast<int>(*hosts));
        have_clusters = true;
      } else if (fields[0] == "!meta") {
        if (fields.size() < 3) throw ParseError("!meta needs key,value", line_no);
        schedule.set_meta(fields[1], fields[2]);
      } else {
        throw ParseError("unknown directive '" + fields[0] + "'", line_no);
      }
      continue;
    }
    if (!have_header) {
      if (fields.size() < 5 || fields[0] != "task_id") {
        throw ParseError(
            "expected header 'task_id,type,start,end,allocs'", line_no);
      }
      have_header = true;
      continue;
    }
    if (fields.size() != 5) {
      throw ParseError("expected 5 fields, got " +
                           std::to_string(fields.size()),
                       line_no);
    }
    auto start = util::parse_double(fields[2]);
    auto end = util::parse_double(fields[3]);
    if (!start || !end) throw ParseError("bad start/end time", line_no);
    Task t(fields[0], fields[1], *start, *end);
    for (const auto& alloc : util::split(fields[4], '|')) {
      Configuration cfg = parse_alloc(alloc, line_no);
      for (const auto& r : cfg.hosts) {
        max_host = std::max(max_host, r.start + r.nb - 1);
      }
      t.add_configuration(std::move(cfg));
    }
    tasks.push_back(std::move(t));
  }

  if (!have_header) {
    throw ParseError("missing 'task_id,type,start,end,allocs' header");
  }
  if (!have_clusters) {
    schedule.add_cluster(0, "cluster-0", std::max(max_host + 1, 1));
  }
  for (auto& t : tasks) schedule.add_task(std::move(t));
  schedule.validate();
  return schedule;
}

model::Schedule load_schedule_csv(const std::string& path) {
  return read_schedule_csv(read_file(path));
}

std::string write_schedule_csv(const model::Schedule& schedule) {
  std::string out;
  for (const auto& c : schedule.clusters()) {
    out += "!cluster," + std::to_string(c.id) + "," + c.name + "," +
           std::to_string(c.hosts) + "\n";
  }
  for (const auto& [k, v] : schedule.meta()) {
    out += "!meta," + k + "," + v + "\n";
  }
  out += "task_id,type,start,end,allocs\n";
  for (const auto& t : schedule.tasks()) {
    out += t.id() + "," + t.type() + "," +
           util::format_fixed(t.start_time(), 6) + "," +
           util::format_fixed(t.end_time(), 6) + ",";
    std::vector<std::string> allocs;
    for (const auto& cfg : t.configurations()) {
      std::string spec = std::to_string(cfg.cluster_id) + ":";
      std::vector<std::string> items;
      for (const auto& r : cfg.hosts) {
        items.push_back(r.nb == 1 ? std::to_string(r.start)
                                  : std::to_string(r.start) + "-" +
                                        std::to_string(r.start + r.nb - 1));
      }
      spec += util::join(items, ";");
      allocs.push_back(std::move(spec));
    }
    out += util::join(allocs, "|") + "\n";
  }
  return out;
}

void save_schedule_csv(const model::Schedule& schedule,
                       const std::string& path) {
  write_file(path, write_schedule_csv(schedule));
}

}  // namespace jedule::io
