#include "jedule/io/csv.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_map>

#include "jedule/io/file.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::io {

namespace {

using model::Configuration;
using model::HostRange;
using model::Schedule;
using model::Task;

Configuration parse_alloc(std::string_view spec, long line) {
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) {
    throw ParseError("alloc '" + std::string(spec) +
                         "' lacks the '<cluster>:' prefix",
                     line);
  }
  Configuration cfg;
  auto cluster = util::parse_int(spec.substr(0, colon));
  if (!cluster) {
    throw ParseError("bad cluster id in alloc '" + std::string(spec) + "'",
                     line);
  }
  cfg.cluster_id = static_cast<int>(*cluster);
  for (const auto& item : util::split(spec.substr(colon + 1), ';')) {
    const auto dash = item.find('-');
    if (dash == std::string::npos) {
      auto h = util::parse_int(item);
      if (!h) throw ParseError("bad host '" + item + "'", line);
      cfg.hosts.push_back(HostRange{static_cast<int>(*h), 1});
    } else {
      auto lo = util::parse_int(std::string_view(item).substr(0, dash));
      auto hi = util::parse_int(std::string_view(item).substr(dash + 1));
      if (!lo || !hi || *hi < *lo) {
        throw ParseError("bad host range '" + item + "'", line);
      }
      cfg.hosts.push_back(
          HostRange{static_cast<int>(*lo), static_cast<int>(*hi - *lo + 1)});
    }
  }
  if (cfg.hosts.empty()) {
    throw ParseError("alloc '" + std::string(spec) + "' lists no hosts",
                     line);
  }
  return cfg;
}

}  // namespace

model::Schedule read_schedule_csv(std::string_view csv_text) {
  Schedule schedule;
  bool have_clusters = false;
  bool have_header = false;
  // The optional sixth header column `deps` enables per-row dependency
  // cells: `;`-separated `<src_id>` or `<src_id>:<data>` references to
  // tasks on earlier rows.
  bool has_deps = false;
  int max_host = -1;
  std::vector<Task> tasks;
  std::unordered_map<std::string, std::uint32_t> ids;  // only when has_deps
  std::vector<model::Dependency> deps;

  long line_no = 0;
  for (const auto& raw : util::split(csv_text, '\n')) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, ',');
    if (line[0] == '!') {
      if (fields[0] == "!cluster") {
        if (fields.size() != 4) {
          throw ParseError("!cluster needs id,name,hosts", line_no);
        }
        auto id = util::parse_int(fields[1]);
        auto hosts = util::parse_int(fields[3]);
        if (!id || !hosts) throw ParseError("bad !cluster line", line_no);
        schedule.add_cluster(static_cast<int>(*id), fields[2],
                             static_cast<int>(*hosts));
        have_clusters = true;
      } else if (fields[0] == "!meta") {
        if (fields.size() < 3) throw ParseError("!meta needs key,value", line_no);
        schedule.set_meta(fields[1], fields[2]);
      } else {
        throw ParseError("unknown directive '" + fields[0] + "'", line_no);
      }
      continue;
    }
    if (!have_header) {
      if (fields.size() < 5 || fields[0] != "task_id") {
        throw ParseError(
            "expected header 'task_id,type,start,end,allocs'", line_no);
      }
      has_deps = fields.size() >= 6 && fields[5] == "deps";
      have_header = true;
      continue;
    }
    const std::size_t expected = has_deps ? 6 : 5;
    if (fields.size() != expected) {
      throw ParseError("expected " + std::to_string(expected) +
                           " fields, got " + std::to_string(fields.size()),
                       line_no);
    }
    auto start = util::parse_double(fields[2]);
    auto end = util::parse_double(fields[3]);
    if (!start || !end) throw ParseError("bad start/end time", line_no);
    if (has_deps) {
      // Resolve before this row's id is registered, so a self-reference
      // reads as unknown (like the live-append path).
      const auto dst = static_cast<std::uint32_t>(tasks.size());
      if (!fields[5].empty()) {
        for (const auto& token : util::split(fields[5], ';')) {
          if (token.empty()) continue;
          const util::DepToken dep = util::parse_dep_token(token);
          const auto it = ids.find(std::string(dep.id));
          if (it == ids.end()) {
            throw ParseError("task '" + fields[0] +
                                 "' depends on unknown task '" +
                                 std::string(dep.id) + "'",
                             line_no);
          }
          deps.push_back(model::Dependency{it->second, dst, dep.data});
        }
      }
      ids.emplace(fields[0], dst);
    }
    Task t(fields[0], fields[1], *start, *end);
    for (const auto& alloc : util::split(fields[4], '|')) {
      Configuration cfg = parse_alloc(alloc, line_no);
      for (const auto& r : cfg.hosts) {
        max_host = std::max(max_host, r.start + r.nb - 1);
      }
      t.add_configuration(std::move(cfg));
    }
    tasks.push_back(std::move(t));
  }

  if (!have_header) {
    throw ParseError("missing 'task_id,type,start,end,allocs' header");
  }
  if (!have_clusters) {
    schedule.add_cluster(0, "cluster-0", std::max(max_host + 1, 1));
  }
  for (auto& t : tasks) schedule.add_task(std::move(t));
  for (const auto& d : deps) schedule.add_dependency(d.src, d.dst, d.data);
  schedule.validate();
  return schedule;
}

namespace {

// Result of one worker chunk of data lines: the tasks in file order plus
// the chunk-local max host index (for the inferred default cluster).
// Dependency cells stay raw (chunk-local task index, cell text): their
// ids can reference tasks in earlier chunks, so resolution waits for the
// in-order merge.
struct CsvChunk {
  std::vector<Task> tasks;
  std::vector<std::pair<std::size_t, std::string>> deps;
  int max_host = -1;
};

// Parses the data lines of `chunk` (complete lines; every chunk except
// possibly the last ends with '\n'), replicating the serial reader's line
// handling exactly. Line numbers are irrelevant here: any ParseError makes
// the caller rerun the serial parse, which re-derives the exact serial
// error. A directive line is legal input the chunked path cannot order
// correctly, so it bails through the same ParseError channel.
void parse_csv_chunk(std::string_view chunk, bool has_deps, CsvChunk* out) {
  TypeInternCache types;
  const std::size_t expected = has_deps ? 6 : 5;
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t nl = chunk.find('\n', pos);
    const std::string_view seg =
        nl == std::string_view::npos ? chunk.substr(pos)
                                     : chunk.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? chunk.size() : nl + 1;

    const auto line = util::trim(seg);
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '!') {
      throw ParseError("directive after header needs the serial reader");
    }
    std::array<std::string_view, 6> f;
    std::size_t n = 0;
    std::size_t start = 0;
    bool overflow = false;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (n == expected) {
          overflow = true;
          break;
        }
        f[n++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (overflow || n != expected) throw ParseError("wrong field count");
    if (has_deps && !f[5].empty()) {
      out->deps.emplace_back(out->tasks.size(), std::string(f[5]));
    }
    const auto start_t = util::parse_double(f[2]);
    const auto end_t = util::parse_double(f[3]);
    if (!start_t || !end_t) throw ParseError("bad start/end time");
    Task t;
    t.set_id(std::string(f[0]));
    t.set_interned_type(types.intern(f[1]));
    t.set_times(*start_t, *end_t);
    const std::string_view allocs = f[4];
    std::size_t a = 0;
    for (std::size_t i = 0; i <= allocs.size(); ++i) {
      if (i == allocs.size() || allocs[i] == '|') {
        Configuration cfg = parse_alloc(allocs.substr(a, i - a), 0);
        for (const auto& r : cfg.hosts) {
          out->max_host = std::max(out->max_host, r.start + r.nb - 1);
        }
        t.add_configuration(std::move(cfg));
        a = i + 1;
      }
    }
    out->tasks.push_back(std::move(t));
  }
}

}  // namespace

model::Schedule read_schedule_csv_chunked(TextSource& src,
                                          const IngestOptions& opt,
                                          IngestStats* stats) {
  const int threads = std::max(1, opt.threads);
  if (threads <= 1) return read_schedule_csv(src.all());
  if (!src.gzip()) {
    const TextSource::View head = src.wait_for(0);
    if (head.complete && head.size < opt.min_parallel_bytes) {
      return read_schedule_csv(src.all());
    }
  }
  try {
    LineScanner scan(src);
    Schedule schedule;
    bool have_clusters = false;
    bool has_deps = false;

    // Serial pre-pass, identical to the serial reader: comments and
    // directives up to and including the header line, in file order.
    long line_no = 0;
    std::size_t pos = 0;
    std::size_t data_begin = LineScanner::npos;
    while (true) {
      const std::size_t nl = scan.find_newline(pos);
      const std::size_t line_end = nl == LineScanner::npos ? scan.size() : nl;
      const std::size_t next =
          nl == LineScanner::npos ? LineScanner::npos : nl + 1;
      ++line_no;
      const auto line = util::trim(scan.slice(pos, line_end));
      if (line.empty() || line[0] == '#') {
        // skip
      } else if (line[0] == '!') {
        const auto fields = util::split(line, ',');
        if (fields[0] == "!cluster") {
          if (fields.size() != 4) {
            throw ParseError("!cluster needs id,name,hosts", line_no);
          }
          auto id = util::parse_int(fields[1]);
          auto hosts = util::parse_int(fields[3]);
          if (!id || !hosts) throw ParseError("bad !cluster line", line_no);
          schedule.add_cluster(static_cast<int>(*id), fields[2],
                               static_cast<int>(*hosts));
          have_clusters = true;
        } else if (fields[0] == "!meta") {
          if (fields.size() < 3) {
            throw ParseError("!meta needs key,value", line_no);
          }
          schedule.set_meta(fields[1], fields[2]);
        } else {
          throw ParseError("unknown directive '" + fields[0] + "'", line_no);
        }
      } else {
        // First non-directive line: the header.
        const auto fields = util::split(line, ',');
        if (fields.size() < 5 || fields[0] != "task_id") {
          throw ParseError("expected header 'task_id,type,start,end,allocs'",
                           line_no);
        }
        has_deps = fields.size() >= 6 && fields[5] == "deps";
        data_begin = next;
        break;
      }
      if (next == LineScanner::npos) {
        throw ParseError("missing 'task_id,type,start,end,allocs' header");
      }
      pos = next;
    }

    // Data lines: deterministic byte-threshold chunks cut at newlines.
    std::deque<CsvChunk> outputs;
    ChunkExecutor exec(threads);
    if (data_begin != LineScanner::npos) {
      std::size_t begin = data_begin;
      while (true) {
        scan.ensure(begin + 1);
        if (scan.complete() && begin >= scan.size()) break;
        const std::size_t nl = scan.find_newline(begin + opt.target_chunk_bytes);
        const std::size_t end =
            nl == LineScanner::npos ? scan.size() : nl + 1;
        outputs.emplace_back();
        CsvChunk* out = &outputs.back();
        const std::string_view chunk = scan.slice(begin, end);
        exec.submit(
            [chunk, has_deps, out] { parse_csv_chunk(chunk, has_deps, out); });
        if (nl == LineScanner::npos) break;
        begin = end;
      }
    }
    exec.finish();

    int max_host = -1;
    for (const auto& o : outputs) max_host = std::max(max_host, o.max_host);
    if (!have_clusters) {
      schedule.add_cluster(0, "cluster-0", std::max(max_host + 1, 1));
    }
    for (auto& o : outputs) {
      for (auto& t : o.tasks) schedule.add_task(std::move(t));
    }
    if (has_deps) {
      // Resolve the raw dependency cells against the merged task order.
      // The serial reader only resolves against *earlier* rows; any cell
      // that would resolve differently (unknown id, forward reference)
      // bails to the serial rerun for its exact error message.
      std::unordered_map<std::string_view, std::uint32_t> ids;
      ids.reserve(schedule.tasks().size());
      for (std::size_t i = 0; i < schedule.tasks().size(); ++i) {
        ids.emplace(schedule.tasks()[i].id(), static_cast<std::uint32_t>(i));
      }
      std::size_t chunk_base = 0;
      for (const auto& o : outputs) {
        for (const auto& [local, cell] : o.deps) {
          const auto dst = static_cast<std::uint32_t>(chunk_base + local);
          for (const auto& token : util::split(cell, ';')) {
            if (token.empty()) continue;
            const util::DepToken dep = util::parse_dep_token(token);
            const auto it = ids.find(dep.id);
            if (it == ids.end() || it->second >= dst) {
              throw ParseError("dependency cell needs the serial reader");
            }
            schedule.add_dependency(it->second, dst, dep.data);
          }
        }
        chunk_base += o.tasks.size();
      }
    }
    if (stats != nullptr) {
      stats->chunks = outputs.size();
      stats->parallel = true;
    }
    schedule.validate();
    return schedule;
  } catch (const ParseError&) {
    if (stats != nullptr) {
      stats->chunks = 0;
      stats->parallel = false;
    }
    return read_schedule_csv(src.all());
  }
}

model::Schedule load_schedule_csv(const std::string& path) {
  return read_schedule_csv(read_file(path));
}

std::string write_schedule_csv(const model::Schedule& schedule) {
  std::string out;
  for (const auto& c : schedule.clusters()) {
    out += "!cluster," + std::to_string(c.id) + "," + c.name + "," +
           std::to_string(c.hosts) + "\n";
  }
  for (const auto& [k, v] : schedule.meta()) {
    out += "!meta," + k + "," + v + "\n";
  }
  const bool has_deps = !schedule.dependencies().empty();
  std::vector<std::string> dep_cells;
  if (has_deps) {
    dep_cells.resize(schedule.tasks().size());
    for (const auto& d : schedule.dependencies()) {
      std::string& cell = dep_cells[d.dst];
      if (!cell.empty()) cell += ';';
      cell += schedule.tasks()[d.src].id();
      if (d.data != 0) cell += ":" + util::format_fixed(d.data, 6);
    }
  }
  out += has_deps ? "task_id,type,start,end,allocs,deps\n"
                  : "task_id,type,start,end,allocs\n";
  std::size_t row = 0;
  for (const auto& t : schedule.tasks()) {
    out += t.id() + "," + t.type() + "," +
           util::format_fixed(t.start_time(), 6) + "," +
           util::format_fixed(t.end_time(), 6) + ",";
    std::vector<std::string> allocs;
    for (const auto& cfg : t.configurations()) {
      std::string spec = std::to_string(cfg.cluster_id) + ":";
      std::vector<std::string> items;
      for (const auto& r : cfg.hosts) {
        items.push_back(r.nb == 1 ? std::to_string(r.start)
                                  : std::to_string(r.start) + "-" +
                                        std::to_string(r.start + r.nb - 1));
      }
      spec += util::join(items, ";");
      allocs.push_back(std::move(spec));
    }
    out += util::join(allocs, "|");
    if (has_deps) out += "," + dep_cells[row];
    out += "\n";
    ++row;
  }
  return out;
}

void save_schedule_csv(const model::Schedule& schedule,
                       const std::string& path) {
  write_file(path, write_schedule_csv(schedule));
}

}  // namespace jedule::io
