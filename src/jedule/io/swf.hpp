#pragma once

// Standard Workload Format (SWF) parser/writer — the format of the Parallel
// Workloads Archive traces the paper's Sec. VII case study visualizes
// (LLNL-Thunder-2007). See Feitelson's PWA documentation for field meanings.
//
// A data line has 18 whitespace-separated fields; '-1' means "unknown".
// Header lines start with ';' and carry 'Key: Value' metadata.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "jedule/io/ingest.hpp"

namespace jedule::io {

struct SwfJob {
  std::int64_t job_id = -1;
  double submit_time = -1;  // seconds since trace start
  double wait_time = -1;    // seconds in queue
  double run_time = -1;     // seconds of execution
  int allocated_procs = -1;
  double avg_cpu_time = -1;
  double used_memory = -1;
  int requested_procs = -1;
  double requested_time = -1;
  double requested_memory = -1;
  int status = -1;  // 1 = completed normally
  int user_id = -1;
  int group_id = -1;
  int executable = -1;
  int queue = -1;
  int partition = -1;
  std::int64_t preceding_job = -1;
  double think_time = -1;

  double start_time() const { return submit_time + wait_time; }
  double end_time() const { return start_time() + run_time; }
};

struct SwfTrace {
  /// Header metadata ("MaxNodes", "MaxProcs", "UnixStartTime", ...).
  std::map<std::string, std::string> header;
  std::vector<SwfJob> jobs;

  /// MaxProcs header if present, else MaxNodes, else the max over jobs.
  int max_procs() const;
};

SwfTrace read_swf(std::string_view text);
SwfTrace load_swf(const std::string& path);

/// Parallel chunked reader (DESIGN.md §4i): the leading ';' header block
/// is read serially, the data lines after it are split at newlines into
/// deterministic byte-threshold chunks parsed by worker threads, and jobs
/// merge back in file order — identical to read_swf at any thread count.
/// A ';' header line after the first data line (legal, last-wins in file
/// order) and any worker parse error falls back to the serial reader.
SwfTrace read_swf_chunked(TextSource& src, const IngestOptions& opt,
                          IngestStats* stats);

std::string write_swf(const SwfTrace& trace);
void save_swf(const SwfTrace& trace, const std::string& path);

}  // namespace jedule::io
