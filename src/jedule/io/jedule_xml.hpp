#pragma once

// The default Jedule XML schedule format (paper Sec. II.C.1, Fig. 1).
//
// Document layout:
//
//   <jedule version="1.0">
//     <jedule_meta>
//       <meta name="mindelta" value="-2"/> ...
//     </jedule_meta>
//     <platform>
//       <cluster id="0" name="cluster-0" hosts="8"/> ...
//     </platform>
//     <node_infos>
//       <node_statistics>
//         <node_property name="id" value="1"/>
//         <node_property name="type" value="computation"/>
//         <node_property name="start_time" value="0.000"/>
//         <node_property name="end_time" value="0.310"/>
//         <configuration>
//           <conf_property name="cluster_id" value="0"/>
//           <conf_property name="host_nb" value="8"/>
//           <host_lists>
//             <hosts start="0" nb="8"/>
//           </host_lists>
//         </configuration>
//       </node_statistics> ...
//     </node_infos>
//   </jedule>
//
// A node may carry several <configuration> elements (e.g. a communication
// between clusters, as the paper's Fig. 1 caption notes). node_property
// entries beyond the four standard ones round-trip as Task properties.

#include <string>
#include <string_view>

#include "jedule/io/ingest.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::io {

/// Parses a schedule from Jedule XML text; validates before returning.
/// Streams directly from xml::PullParser events — no DOM is built, so the
/// cost is one zero-copy lexer pass plus the Schedule itself.
model::Schedule read_schedule_xml(std::string_view xml_text);

/// Parallel chunked reader (DESIGN.md §4i): a conservative boundary scan
/// finds the <node_statistics> record spans of the first <node_infos>
/// section, worker threads parse record batches through per-thread
/// PullParsers, and the merge re-assembles tasks in document order —
/// bit-identical to read_schedule_xml at any thread count. Anything the
/// scanner is not sure about (PIs in content, DOCTYPE subtleties,
/// non-record children) and any worker parse error falls back to the
/// serial reader, which is the spec: it re-derives the exact serial result
/// or error. Gzip inputs overlap decompression with scanning/parsing via
/// the TextSource producer.
model::Schedule read_schedule_xml_chunked(TextSource& src,
                                          const IngestOptions& opt,
                                          IngestStats* stats);

/// Reference reader: parses via the original DOM walk (xml::baseline_parse
/// + tree traversal). Accepts exactly the same documents and produces the
/// same Schedule as read_schedule_xml; retained for differential tests and
/// as the pre-optimization baseline in bench_scale.
model::Schedule read_schedule_xml_dom(const std::string& xml_text);

/// Reads and parses the file at `path`.
model::Schedule load_schedule_xml(const std::string& path);

/// Serializes (start/end times with millisecond precision, matching the
/// paper's "0.310" style — full double precision is kept via an extra
/// attribute when needed).
std::string write_schedule_xml(const model::Schedule& schedule);

/// Serializes and writes to `path`.
void save_schedule_xml(const model::Schedule& schedule,
                       const std::string& path);

}  // namespace jedule::io
