#pragma once

// A compact CSV schedule format, provided as the bundled example of the
// paper's "one can extend Jedule with a different parser ... not necessarily
// in XML" extension point.
//
//   !cluster,0,cluster-0,8
//   !meta,algorithm,CPA
//   task_id,type,start,end,allocs
//   1,computation,0.0,0.31,0:0-7
//   2,transfer,0.31,0.5,0:0-3;6|1:0-1
//
// `allocs` is a '|'-separated list of configurations; each is
// `<cluster>:<hostspec>` where hostspec is a ';'-separated list of single
// hosts or inclusive `a-b` ranges. If no !cluster line appears, a single
// cluster 0 is inferred, sized to the largest host index used.

#include <string>
#include <string_view>

#include "jedule/io/ingest.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::io {

model::Schedule read_schedule_csv(std::string_view csv_text);
model::Schedule load_schedule_csv(const std::string& path);

/// Parallel chunked reader (DESIGN.md §4i): directives, comments and the
/// header line are handled serially in file order, the data lines after
/// the header are split at newlines into deterministic byte-threshold
/// chunks parsed by worker threads, and tasks merge back in file order —
/// bit-identical to read_schedule_csv at any thread count. Any directive
/// after the header and any worker parse error falls back to the serial
/// reader, which re-derives the exact serial result or error.
model::Schedule read_schedule_csv_chunked(TextSource& src,
                                          const IngestOptions& opt,
                                          IngestStats* stats);

std::string write_schedule_csv(const model::Schedule& schedule);
void save_schedule_csv(const model::Schedule& schedule,
                       const std::string& path);

}  // namespace jedule::io
