#pragma once

// Whole-file read/write helpers shared by the io and render exporters.

#include <string>

namespace jedule::io {

/// Reads the entire file; throws jedule::IoError on failure.
std::string read_file(const std::string& path);

/// Writes (truncates) the entire file; throws jedule::IoError on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace jedule::io
