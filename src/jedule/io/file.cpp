#include "jedule/io/file.hpp"

#include <fstream>
#include <sstream>

#include "jedule/util/error.hpp"

namespace jedule::io {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) throw IoError("error while reading '" + path + "'");
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("cannot open '" + path + "' for writing");
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!f) throw IoError("error while writing '" + path + "'");
}

}  // namespace jedule::io
