#include "jedule/io/snapshot.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "jedule/io/file.hpp"
#include "jedule/platform/mmap.hpp"
#include "jedule/util/checksum.hpp"
#include "jedule/util/error.hpp"

namespace jedule::io {

namespace {

constexpr char kMagic[4] = {'J', 'B', 'I', 'N'};
constexpr std::uint32_t kEndianMarker = 0x01020304u;
constexpr std::uint32_t kHeaderSize = 64;
constexpr std::uint32_t kSectionRecordSize = 32;
constexpr std::size_t kSectionAlign = 64;

// Section ids. Raw columns and blobs are fixed; per-cluster index arrays
// use kIndexEntriesBase + 2k / kIndexMaxEndBase + 2k for cluster slot k.
enum SectionId : std::uint32_t {
  kSecStart = 1,
  kSecEnd = 2,
  kSecTypeId = 3,
  kSecIdOff = 4,
  kSecIdPool = 5,
  kSecCfgOff = 6,
  kSecCfgCluster = 7,
  kSecRangeOff = 8,
  kSecRanges = 9,
  kSecPropOff = 10,
  kSecPropSlices = 11,
  kSecPropPool = 12,
  kSecTypes = 13,
  kSecClusters = 14,
  kSecMeta = 15,
  kSecIndexMeta = 16,
  // Optional dependency sections: written only when the arena carries
  // edges, so edge-free snapshots stay byte-identical to version-1 files
  // and old files load as zero-edge arenas.
  kSecDepOff = 17,
  kSecDepSrc = 18,
  kSecDepData = 19,
  kSecEdgeMeta = 20,
  kIndexEntriesBase = 0x100,
  kIndexMaxEndBase = 0x101,
  // Per-cluster EdgeIndex arrays live far above the task-index range so
  // the two families can both grow by 2k per cluster slot.
  kEdgeEntriesBase = 0x10000,
  kEdgeMaxEndBase = 0x10001,
};

// Serialized index entries are the in-memory TaskIndex::Entry layout with
// the 4 trailing padding bytes zeroed; the loader reuses the mapped
// records in place. Pin the layout so a compiler change cannot silently
// produce unreadable files.
using Entry = model::TaskIndex::Entry;
static_assert(sizeof(Entry) == 32);
static_assert(offsetof(Entry, begin) == 0);
static_assert(offsetof(Entry, end) == 8);
static_assert(offsetof(Entry, host_start) == 16);
static_assert(offsetof(Entry, host_end) == 20);
static_assert(offsetof(Entry, task) == 24);
static_assert(sizeof(model::HostRange) == 8);
static_assert(offsetof(model::HostRange, start) == 0);
static_assert(offsetof(model::HostRange, nb) == 4);

// EdgeIndex entries are padding-free, so they serialize as raw arrays.
using EdgeEntry = model::EdgeIndex::Entry;
static_assert(sizeof(EdgeEntry) == 32);
static_assert(offsetof(EdgeEntry, begin) == 0);
static_assert(offsetof(EdgeEntry, end) == 8);
static_assert(offsetof(EdgeEntry, src_host) == 16);
static_assert(offsetof(EdgeEntry, dst_host) == 20);
static_assert(offsetof(EdgeEntry, src) == 24);
static_assert(offsetof(EdgeEntry, dst) == 28);

std::atomic<std::uint64_t> g_saves{0};
std::atomic<std::uint64_t> g_save_bytes{0};
std::atomic<std::uint64_t> g_loads{0};
std::atomic<std::uint64_t> g_load_bytes{0};

// ---- little-endian buffer writer -----------------------------------------

void put_bytes(std::string* out, const void* data, std::size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void put_u32(std::string* out, std::uint32_t v) { put_bytes(out, &v, 4); }
void put_u64(std::string* out, std::uint64_t v) { put_bytes(out, &v, 8); }
void put_i64(std::string* out, std::int64_t v) { put_bytes(out, &v, 8); }
void put_f64(std::string* out, double v) { put_bytes(out, &v, 8); }

void put_string(std::string* out, std::string_view s) {
  put_u64(out, s.size());
  put_bytes(out, s.data(), s.size());
}

struct SectionRecord {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t count = 0;
};

class Writer {
 public:
  void add(std::uint32_t id, std::string payload, std::uint64_t count) {
    Section s;
    s.record.id = id;
    s.record.size = payload.size();
    s.record.count = count;
    s.record.crc = util::crc32(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    s.payload = std::move(payload);
    sections_.push_back(std::move(s));
  }

  void add_array(std::uint32_t id, const void* data, std::size_t count,
                 std::size_t elem_size) {
    std::string payload(static_cast<const char*>(data), count * elem_size);
    add(id, std::move(payload), count);
  }

  std::string finish(std::uint64_t content_hash, std::uint64_t tasks_hash,
                     std::uint64_t task_count) {
    // Lay the sections out 64-byte aligned after header + table.
    std::uint64_t offset =
        kHeaderSize + sections_.size() * kSectionRecordSize;
    for (auto& s : sections_) {
      offset = (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
      s.record.offset = offset;
      offset += s.record.size;
    }
    const std::uint64_t file_size = offset;

    std::string out;
    out.reserve(file_size);
    put_bytes(&out, kMagic, 4);
    put_u32(&out, kSnapshotVersion);
    put_u32(&out, kEndianMarker);
    put_u32(&out, kHeaderSize);
    put_u64(&out, content_hash);
    put_u64(&out, tasks_hash);
    put_u64(&out, task_count);
    put_u32(&out, static_cast<std::uint32_t>(sections_.size()));
    const std::size_t crc_pos = out.size();
    put_u32(&out, 0);  // header_crc, patched below
    put_u64(&out, file_size);
    put_u64(&out, 0);  // reserved
    JED_ASSERT(out.size() == kHeaderSize);

    for (const auto& s : sections_) {
      put_u32(&out, s.record.id);
      put_u32(&out, s.record.crc);
      put_u64(&out, s.record.offset);
      put_u64(&out, s.record.size);
      put_u64(&out, s.record.count);
    }

    // header_crc covers the header before the crc field plus the table.
    std::uint32_t hcrc = util::crc32(
        reinterpret_cast<const std::uint8_t*>(out.data()), crc_pos);
    hcrc = util::crc32(
        reinterpret_cast<const std::uint8_t*>(out.data()) + kHeaderSize,
        out.size() - kHeaderSize, hcrc);
    std::memcpy(out.data() + crc_pos, &hcrc, 4);

    for (const auto& s : sections_) {
      out.resize(s.record.offset, '\0');  // alignment padding
      out += s.payload;
    }
    JED_ASSERT(out.size() == file_size);
    return out;
  }

 private:
  struct Section {
    SectionRecord record;
    std::string payload;
  };
  std::vector<Section> sections_;
};

// ---- bounds-checked little-endian reader ---------------------------------

class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }

  std::string str() {
    const std::uint64_t n = u64();
    if (n > size_ - pos_) fail();
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  void expect_end() const {
    if (pos_ != size_) fail();
  }

 private:
  template <typename T>
  T get() {
    if (sizeof(T) > size_ - pos_) fail();
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[noreturn]] static void fail() {
    throw ParseError("snapshot: truncated metadata block");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

struct LoadedSection {
  const std::uint8_t* data = nullptr;
  std::uint64_t size = 0;
  std::uint64_t count = 0;
};

}  // namespace

bool is_snapshot(std::string_view head) {
  return head.size() >= 4 && std::memcmp(head.data(), kMagic, 4) == 0;
}

std::string serialize_snapshot(const model::ScheduleArena& arena,
                               const model::TaskIndex& index,
                               const model::EdgeIndex* edges) {
  JED_ASSERT(arena.content_hash() == index.content_hash());
  const auto cols = arena.columns();
  // Edge sections need the per-cluster EdgeIndex arrays; build them here
  // when the caller has none at hand (the snapshot CLI path).
  std::optional<model::EdgeIndex> built_edges;
  if (cols.deps > 0 && edges == nullptr) {
    built_edges.emplace(arena);
    edges = &*built_edges;
  }
  Writer w;
  w.add_array(kSecStart, cols.start, cols.tasks, 8);
  w.add_array(kSecEnd, cols.end, cols.tasks, 8);
  w.add_array(kSecTypeId, cols.type_id, cols.tasks, 4);
  w.add_array(kSecIdOff, cols.id_off, cols.tasks + 1, 8);
  w.add_array(kSecIdPool, cols.id_pool, cols.id_pool_size, 1);
  w.add_array(kSecCfgOff, cols.cfg_off, cols.tasks + 1, 4);
  w.add_array(kSecCfgCluster, cols.cfg_cluster, cols.configs, 4);
  w.add_array(kSecRangeOff, cols.range_off, cols.configs + 1, 4);
  w.add_array(kSecRanges, cols.ranges, cols.ranges_count, 8);
  w.add_array(kSecPropOff, cols.prop_off, cols.tasks + 1, 4);
  w.add_array(kSecPropSlices, cols.prop_slices, cols.props * 4, 8);
  w.add_array(kSecPropPool, cols.prop_pool, cols.prop_pool_size, 1);

  std::string types;
  put_u64(&types, arena.types().size());
  for (const auto& t : arena.types()) put_string(&types, t);
  w.add(kSecTypes, std::move(types), arena.types().size());

  std::string clusters;
  put_u64(&clusters, arena.clusters().size());
  for (const auto& c : arena.clusters()) {
    put_i64(&clusters, c.id);
    put_i64(&clusters, c.hosts);
    put_string(&clusters, c.name);
  }
  w.add(kSecClusters, std::move(clusters), arena.clusters().size());

  std::string meta;
  put_u64(&meta, arena.meta().size());
  for (const auto& [k, v] : arena.meta()) {
    put_string(&meta, k);
    put_string(&meta, v);
  }
  w.add(kSecMeta, std::move(meta), arena.meta().size());

  const auto flat = index.flatten();
  std::string imeta;
  put_u64(&imeta, flat.size());
  const auto range = index.time_range();
  put_u64(&imeta, range ? 1 : 0);
  put_f64(&imeta, range ? range->begin : 0.0);
  put_f64(&imeta, range ? range->end : 0.0);
  for (const auto& fc : flat) {
    put_i64(&imeta, fc.cluster_id);
    put_u64(&imeta, fc.entries.size());
  }
  w.add(kSecIndexMeta, std::move(imeta), flat.size());

  for (std::size_t k = 0; k < flat.size(); ++k) {
    // Zero the per-record padding so files are byte-deterministic and the
    // section CRC does not depend on heap garbage.
    std::string entries;
    entries.reserve(flat[k].entries.size() * sizeof(Entry));
    char rec[sizeof(Entry)];
    for (const Entry& e : flat[k].entries) {
      std::memset(rec, 0, sizeof rec);
      std::memcpy(rec + offsetof(Entry, begin), &e.begin, 8);
      std::memcpy(rec + offsetof(Entry, end), &e.end, 8);
      std::memcpy(rec + offsetof(Entry, host_start), &e.host_start, 4);
      std::memcpy(rec + offsetof(Entry, host_end), &e.host_end, 4);
      std::memcpy(rec + offsetof(Entry, task), &e.task, 4);
      entries.append(rec, sizeof rec);
    }
    w.add(kIndexEntriesBase + 2 * static_cast<std::uint32_t>(k),
          std::move(entries), flat[k].entries.size());
    w.add_array(kIndexMaxEndBase + 2 * static_cast<std::uint32_t>(k),
                flat[k].max_end.data(), flat[k].max_end.size(), 8);
  }

  if (cols.deps > 0) {
    JED_ASSERT(edges != nullptr && edges->edge_count() == cols.deps);
    w.add_array(kSecDepOff, cols.dep_off, cols.tasks + 1, 8);
    w.add_array(kSecDepSrc, cols.dep_src, cols.deps, 4);
    w.add_array(kSecDepData, cols.dep_data, cols.deps, 8);

    const auto eflat = edges->flatten();
    std::string emeta;
    put_u64(&emeta, cols.deps);
    put_u64(&emeta, arena.edges_hash());
    put_u64(&emeta, eflat.size());
    for (const auto& fc : eflat) {
      put_i64(&emeta, fc.cluster_id);
      put_u64(&emeta, fc.entries.size());
    }
    w.add(kSecEdgeMeta, std::move(emeta), eflat.size());
    for (std::size_t k = 0; k < eflat.size(); ++k) {
      w.add_array(kEdgeEntriesBase + 2 * static_cast<std::uint32_t>(k),
                  eflat[k].entries.data(), eflat[k].entries.size(),
                  sizeof(EdgeEntry));
      w.add_array(kEdgeMaxEndBase + 2 * static_cast<std::uint32_t>(k),
                  eflat[k].max_end.data(), eflat[k].max_end.size(), 8);
    }
  }

  return w.finish(arena.content_hash(), arena.tasks_hash(),
                  arena.task_count());
}

void save_snapshot(const model::ScheduleArena& arena,
                   const model::TaskIndex& index, const std::string& path,
                   const model::EdgeIndex* edges) {
  std::string bytes = serialize_snapshot(arena, index, edges);
  write_file(path, bytes);
  g_saves.fetch_add(1, std::memory_order_relaxed);
  g_save_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
}

Snapshot parse_snapshot(const std::uint8_t* data, std::size_t size,
                        std::shared_ptr<const void> owner,
                        std::size_t mapped_bytes) {
  auto fail = [](const std::string& what) {
    throw ParseError("snapshot: " + what);
  };
  if (size < kHeaderSize) fail("file shorter than the header");
  if (std::memcmp(data, kMagic, 4) != 0) fail("bad magic");

  Cursor h(data + 4, kHeaderSize - 4);
  const std::uint32_t version = h.u32();
  if (version != kSnapshotVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  const std::uint32_t endian = h.u32();
  if (endian == 0x04030201u) fail("wrong endianness");
  if (endian != kEndianMarker) fail("bad endianness marker");
  if (h.u32() != kHeaderSize) fail("bad header size");
  const std::uint64_t content_hash = h.u64();
  const std::uint64_t tasks_hash = h.u64();
  const std::uint64_t task_count = h.u64();
  const std::uint32_t section_count = h.u32();
  const std::uint32_t header_crc = h.u32();
  const std::uint64_t file_size = h.u64();
  if (file_size != size) fail("file size mismatch (truncated?)");
  if (section_count > (1u << 20)) fail("implausible section count");
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(section_count) * kSectionRecordSize;
  if (kHeaderSize + table_bytes > size) fail("section table out of bounds");

  constexpr std::size_t kHeaderCrcPos = 44;
  std::uint32_t hcrc = util::crc32(data, kHeaderCrcPos);
  hcrc = util::crc32(data + kHeaderSize, table_bytes, hcrc);
  if (hcrc != header_crc) fail("header checksum mismatch");

  std::map<std::uint32_t, LoadedSection> sections;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Cursor rec(data + kHeaderSize + i * kSectionRecordSize,
               kSectionRecordSize);
    const std::uint32_t id = rec.u32();
    const std::uint32_t crc = rec.u32();
    const std::uint64_t offset = rec.u64();
    const std::uint64_t bytes = rec.u64();
    const std::uint64_t count = rec.u64();
    if (offset % 8 != 0 || offset > size || bytes > size - offset) {
      fail("section " + std::to_string(id) + " out of bounds");
    }
    if (util::crc32(data + offset, bytes) != crc) {
      fail("section " + std::to_string(id) + " checksum mismatch");
    }
    if (!sections.emplace(id, LoadedSection{data + offset, bytes, count})
             .second) {
      fail("duplicate section " + std::to_string(id));
    }
  }

  auto section = [&](std::uint32_t id, std::size_t elem_size,
                     std::uint64_t expect_count) -> const LoadedSection& {
    auto it = sections.find(id);
    if (it == sections.end()) {
      fail("missing section " + std::to_string(id));
    }
    const LoadedSection& s = it->second;
    if (s.size != s.count * elem_size || s.count != expect_count) {
      fail("section " + std::to_string(id) + " size mismatch");
    }
    return s;
  };
  auto blob = [&](std::uint32_t id) -> const LoadedSection& {
    auto it = sections.find(id);
    if (it == sections.end()) {
      fail("missing section " + std::to_string(id));
    }
    return it->second;
  };

  const std::uint64_t n = task_count;
  model::ScheduleArena::Raw raw;

  const LoadedSection& types_sec = blob(kSecTypes);
  {
    Cursor c(types_sec.data, types_sec.size);
    const std::uint64_t count = c.u64();
    if (count != types_sec.count || count > types_sec.size) {
      fail("type table count mismatch");
    }
    raw.types.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) raw.types.push_back(c.str());
    c.expect_end();
  }
  const LoadedSection& clusters_sec = blob(kSecClusters);
  {
    Cursor c(clusters_sec.data, clusters_sec.size);
    const std::uint64_t count = c.u64();
    if (count != clusters_sec.count || count > clusters_sec.size) {
      fail("cluster table count mismatch");
    }
    raw.clusters.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      model::Cluster cl;
      cl.id = static_cast<int>(c.i64());
      cl.hosts = static_cast<int>(c.i64());
      cl.name = c.str();
      raw.clusters.push_back(std::move(cl));
    }
    c.expect_end();
  }
  const LoadedSection& meta_sec = blob(kSecMeta);
  {
    Cursor c(meta_sec.data, meta_sec.size);
    const std::uint64_t count = c.u64();
    if (count != meta_sec.count || count > meta_sec.size) {
      fail("meta table count mismatch");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string k = c.str();
      std::string v = c.str();
      raw.meta.emplace_back(std::move(k), std::move(v));
    }
    c.expect_end();
  }

  auto map_f64 = [&](std::uint32_t id, std::uint64_t count,
                     model::detail::Column<double>* col) {
    const LoadedSection& s = section(id, 8, count);
    col->set_mapped(reinterpret_cast<const double*>(s.data),
                    static_cast<std::size_t>(s.count));
  };
  auto map_u32 = [&](std::uint32_t id, std::uint64_t count,
                     model::detail::Column<std::uint32_t>* col) {
    const LoadedSection& s = section(id, 4, count);
    col->set_mapped(reinterpret_cast<const std::uint32_t*>(s.data),
                    static_cast<std::size_t>(s.count));
  };

  map_f64(kSecStart, n, &raw.start);
  map_f64(kSecEnd, n, &raw.end);
  map_u32(kSecTypeId, n, &raw.type_id);
  {
    const LoadedSection& s = section(kSecIdOff, 8, n + 1);
    raw.id_off.set_mapped(reinterpret_cast<const std::uint64_t*>(s.data),
                          static_cast<std::size_t>(s.count));
  }
  {
    auto it = sections.find(kSecIdPool);
    if (it == sections.end()) fail("missing section 5");
    raw.id_pool.set_mapped(reinterpret_cast<const char*>(it->second.data),
                           static_cast<std::size_t>(it->second.size));
  }
  map_u32(kSecCfgOff, n + 1, &raw.cfg_off);
  const std::uint64_t configs = blob(kSecCfgCluster).count;
  {
    const LoadedSection& s = section(kSecCfgCluster, 4, configs);
    raw.cfg_cluster.set_mapped(
        reinterpret_cast<const std::int32_t*>(s.data),
        static_cast<std::size_t>(s.count));
  }
  map_u32(kSecRangeOff, configs + 1, &raw.range_off);
  {
    const std::uint64_t count = blob(kSecRanges).count;
    const LoadedSection& s = section(kSecRanges, 8, count);
    raw.ranges.set_mapped(reinterpret_cast<const model::HostRange*>(s.data),
                          static_cast<std::size_t>(s.count));
  }
  map_u32(kSecPropOff, n + 1, &raw.prop_off);
  {
    const std::uint64_t count = blob(kSecPropSlices).count;
    const LoadedSection& s = section(kSecPropSlices, 8, count);
    raw.prop_slices.set_mapped(
        reinterpret_cast<const std::uint64_t*>(s.data),
        static_cast<std::size_t>(s.count));
  }
  {
    auto it = sections.find(kSecPropPool);
    if (it == sections.end()) fail("missing section 12");
    raw.prop_pool.set_mapped(reinterpret_cast<const char*>(it->second.data),
                             static_cast<std::size_t>(it->second.size));
  }

  // Optional dependency sections (absent in edge-free and pre-edge files).
  const bool has_edges = sections.count(kSecEdgeMeta) != 0;
  std::uint64_t edge_count = 0;
  std::vector<std::pair<int, std::uint64_t>> edge_clusters;
  if (has_edges) {
    const LoadedSection& emeta = blob(kSecEdgeMeta);
    Cursor c(emeta.data, emeta.size);
    edge_count = c.u64();
    raw.edges_hash = c.u64();
    const std::uint64_t ccount = c.u64();
    if (ccount != emeta.count || ccount != raw.clusters.size()) {
      fail("edge cluster count mismatch");
    }
    for (std::uint64_t k = 0; k < ccount; ++k) {
      const int cid = static_cast<int>(c.i64());
      edge_clusters.emplace_back(cid, c.u64());
    }
    c.expect_end();
    if (edge_count == 0) fail("edge meta without edges");

    {
      const LoadedSection& s = section(kSecDepOff, 8, n + 1);
      raw.dep_off.set_mapped(reinterpret_cast<const std::uint64_t*>(s.data),
                             static_cast<std::size_t>(s.count));
    }
    map_u32(kSecDepSrc, edge_count, &raw.dep_src);
    map_f64(kSecDepData, edge_count, &raw.dep_data);
  }

  model::TaskIndex::Raw iraw;
  const LoadedSection& imeta = blob(kSecIndexMeta);
  {
    Cursor c(imeta.data, imeta.size);
    const std::uint64_t count = c.u64();
    if (count != imeta.count || count != raw.clusters.size()) {
      fail("index cluster count mismatch");
    }
    const bool has_range = c.u64() != 0;
    const double begin = c.f64();
    const double end = c.f64();
    if (has_range) iraw.time_range = model::TimeRange{begin, end};
    for (std::uint64_t k = 0; k < count; ++k) {
      model::TaskIndex::RawCluster rc;
      rc.cluster_id = static_cast<int>(c.i64());
      const std::uint64_t entries = c.u64();
      const std::uint32_t kk = static_cast<std::uint32_t>(k);
      const LoadedSection& es =
          section(kIndexEntriesBase + 2 * kk, sizeof(Entry), entries);
      const LoadedSection& ms =
          section(kIndexMaxEndBase + 2 * kk, 8, entries);
      rc.entries = reinterpret_cast<const Entry*>(es.data);
      rc.max_end = reinterpret_cast<const double*>(ms.data);
      rc.count = static_cast<std::size_t>(entries);
      // The index is trusted after CRC, but its task references must stay
      // inside the arena or queries would read out of bounds. Branchless
      // max fold; at a million entries a per-element compare-and-branch
      // is measurable on the reopen path.
      std::uint32_t max_task = 0;
      for (std::size_t e = 0; e < rc.count; ++e) {
        max_task = std::max(max_task, rc.entries[e].task);
      }
      if (rc.count > 0 && max_task >= n) fail("index entry out of range");
      iraw.clusters.push_back(rc);
    }
    c.expect_end();
  }
  iraw.owner = owner;
  iraw.task_count = static_cast<std::size_t>(n);
  iraw.tasks_hash = tasks_hash;
  iraw.content_hash = content_hash;

  model::EdgeIndex::Raw eraw;
  if (has_edges) {
    std::uint64_t total_entries = 0;
    for (std::size_t k = 0; k < edge_clusters.size(); ++k) {
      model::EdgeIndex::RawCluster rc;
      rc.cluster_id = edge_clusters[k].first;
      const std::uint64_t entries = edge_clusters[k].second;
      const std::uint32_t kk = static_cast<std::uint32_t>(k);
      const LoadedSection& es =
          section(kEdgeEntriesBase + 2 * kk, sizeof(EdgeEntry), entries);
      const LoadedSection& ms = section(kEdgeMaxEndBase + 2 * kk, 8, entries);
      rc.entries = reinterpret_cast<const EdgeEntry*>(es.data);
      rc.max_end = reinterpret_cast<const double*>(ms.data);
      rc.count = static_cast<std::size_t>(entries);
      // Same guard as the task index: mapped entries are trusted after
      // CRC, but their task references must stay inside the arena.
      std::uint32_t max_task = 0;
      for (std::size_t e = 0; e < rc.count; ++e) {
        max_task = std::max(max_task, rc.entries[e].src);
        max_task = std::max(max_task, rc.entries[e].dst);
      }
      if (rc.count > 0 && max_task >= n) fail("edge entry out of range");
      total_entries += entries;
      eraw.clusters.push_back(rc);
    }
    if (total_entries < edge_count) fail("edge entries undercount");
    eraw.owner = owner;
    eraw.edges_hash = raw.edges_hash;
    eraw.edge_count = static_cast<std::size_t>(edge_count);
  }

  raw.tasks_hash = tasks_hash;
  raw.owner = std::move(owner);
  raw.mapped_file_bytes = mapped_bytes;

  Snapshot snap{model::ScheduleArena(std::move(raw)),
                model::TaskIndex(std::move(iraw)), model::EdgeIndex{},
                mapped_bytes > 0, size};
  if (has_edges) {
    snap.edges = model::EdgeIndex(std::move(eraw), snap.arena);
  }
  if (snap.arena.content_hash() != content_hash) {
    fail("content hash mismatch");
  }
  return snap;
}

Snapshot load_snapshot(const std::string& path) {
  auto file = platform::MappedFile::open(path);
  const std::size_t size = file->size();
  const std::uint8_t* data = file->data();
  Snapshot snap = parse_snapshot(data, size, file,
                                 file->mapped() ? size : 0);
  snap.mapped = file->mapped();
  g_loads.fetch_add(1, std::memory_order_relaxed);
  g_load_bytes.fetch_add(size, std::memory_order_relaxed);
  return snap;
}

SnapshotCounters snapshot_counters() {
  SnapshotCounters c;
  c.saves = g_saves.load(std::memory_order_relaxed);
  c.save_bytes = g_save_bytes.load(std::memory_order_relaxed);
  c.loads = g_loads.load(std::memory_order_relaxed);
  c.load_bytes = g_load_bytes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace jedule::io
