#pragma once

// Versioned binary schedule snapshots (`.jbin`, DESIGN.md §4h).
//
// A snapshot serializes a ScheduleArena's columns *and* the TaskIndex's
// sorted per-cluster entry arrays into one little-endian file:
//
//   header (64 bytes)      magic "JBIN", format version, endianness
//                          marker, content/tasks hashes, task count,
//                          section count, header CRC32
//   section table          one 32-byte record per section:
//                          {id, crc32, offset, byte size, element count}
//   sections               each 64-byte aligned: the raw columns
//                          (start/end times, type ids, id pool + offsets,
//                          configuration/range/property tables), small
//                          serialized blobs (type table, clusters, meta,
//                          index geometry), and per-cluster index
//                          entry/max_end arrays
//
// Loading memory-maps the file (platform::MappedFile), verifies the
// header and every section CRC32 (util::checksum, slice-by-8), and hands
// the mapped spans zero-copy to ScheduleArena and TaskIndex — reopening a
// million-task schedule is a checksum+validation pass over mapped
// columns, not a parse. Truncated, bit-flipped, wrong-version or
// wrong-endian files are rejected with ParseError before any model
// object is built.

#include <cstdint>
#include <string>
#include <string_view>

#include "jedule/model/arena.hpp"
#include "jedule/model/edge_index.hpp"
#include "jedule/model/task_index.hpp"

namespace jedule::io {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// True when `head` starts with the `.jbin` magic.
bool is_snapshot(std::string_view head);

/// Serializes arena + index to `buffer` (exact file bytes). When the
/// arena carries dependency edges, CRC-covered CSR columns and the
/// per-cluster EdgeIndex arrays are appended as optional sections
/// (edge-free snapshots stay byte-identical to pre-edge files); pass
/// `edges` to reuse an already-built index, else one is built here.
std::string serialize_snapshot(const model::ScheduleArena& arena,
                               const model::TaskIndex& index,
                               const model::EdgeIndex* edges = nullptr);

/// serialize_snapshot + atomic-ish whole-file write; throws IoError.
void save_snapshot(const model::ScheduleArena& arena,
                   const model::TaskIndex& index, const std::string& path,
                   const model::EdgeIndex* edges = nullptr);

struct Snapshot {
  model::ScheduleArena arena;
  model::TaskIndex index;
  model::EdgeIndex edges;       // empty when the file has no edge sections
  bool mapped = false;          // real mmap vs heap-read fallback
  std::size_t file_bytes = 0;   // snapshot size on disk
};

/// Parses snapshot bytes. `owner` must keep `data` alive for the lifetime
/// of the returned arena/index (zero-copy columns); pass the mapping or a
/// heap copy. Throws ParseError on any structural or checksum failure.
Snapshot parse_snapshot(const std::uint8_t* data, std::size_t size,
                        std::shared_ptr<const void> owner,
                        std::size_t mapped_bytes);

/// Memory-maps `path` and parses it. Throws IoError (unopenable) or
/// ParseError (corrupt).
Snapshot load_snapshot(const std::string& path);

/// Process-wide snapshot traffic counters (the serve /stats endpoint).
struct SnapshotCounters {
  std::uint64_t saves = 0;
  std::uint64_t save_bytes = 0;
  std::uint64_t loads = 0;
  std::uint64_t load_bytes = 0;
};
SnapshotCounters snapshot_counters();

}  // namespace jedule::io
