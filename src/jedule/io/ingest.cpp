#include "jedule/io/ingest.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "jedule/util/error.hpp"
#include "jedule/util/inflate.hpp"

namespace jedule::io {

namespace {

std::mutex g_counter_mu;
std::map<std::string, IngestCounters>& counter_map() {
  static auto* counters = new std::map<std::string, IngestCounters>();
  return *counters;
}

std::string format_mb(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

void record_ingest(const IngestStats& stats) {
  std::lock_guard<std::mutex> lock(g_counter_mu);
  IngestCounters& c = counter_map()[stats.format];
  ++c.parses;
  if (stats.parallel) ++c.parallel_parses;
  c.bytes += stats.bytes;
  c.chunks += stats.chunks;
  c.parse_ms += stats.parse_ms;
  c.last_threads = stats.threads;
}

std::map<std::string, IngestCounters> ingest_counters() {
  std::lock_guard<std::mutex> lock(g_counter_mu);
  return counter_map();
}

std::string ingest_summary(const IngestStats& stats) {
  const double seconds = stats.parse_ms / 1000.0;
  const double rate =
      seconds > 0 ? static_cast<double>(stats.bytes) / seconds : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ingest: %s %s in %.1f ms (%s/s, %d thread(s), %zu chunk(s)%s%s)",
                stats.format.c_str(), format_mb(double(stats.bytes)).c_str(),
                stats.parse_ms, format_mb(rate).c_str(), stats.threads,
                stats.chunks, stats.gzip ? ", gzip" : "",
                stats.mapped_input ? ", mmap" : "");
  return buf;
}

// ---------------------------------------------------------------------------
// TextSource

TextSource::TextSource(std::string_view raw,
                       std::shared_ptr<const void> keepalive)
    : keepalive_(std::move(keepalive)), raw_(raw) {
  gzip_ = util::looks_like_gzip(raw_);
  if (gzip_) start_producer();
}

TextSource::TextSource(std::string raw) : owned_(std::move(raw)) {
  raw_ = owned_;
  gzip_ = util::looks_like_gzip(raw_);
  if (gzip_) start_producer();
}

TextSource::~TextSource() {
  if (producer_.joinable()) producer_.join();
}

void TextSource::start_producer() {
  // Buffer sized from the ISIZE trailer. The field is attacker-controlled,
  // so it is bounded by a generous expansion ceiling; a lying trailer only
  // costs one eager re-decode (run_eager_fallback), never memory blowup.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(raw_.data());
  const std::size_t hint = util::gzip_isize_hint(bytes, raw_.size());
  const std::size_t ceiling = raw_.size() * 1024 + (16u << 20);
  capacity_ = std::min(std::max<std::size_t>(hint, 4096), ceiling);
  buf_ = std::make_unique<std::uint8_t[]>(capacity_);
  producer_ = std::thread([this, bytes] {
    try {
      const auto n = util::gzip_decompress_bounded(
          bytes, raw_.size(), buf_.get(), capacity_, [this](std::size_t done) {
            std::lock_guard<std::mutex> lock(mu_);
            published_ = done;
            cv_.notify_all();
          });
      std::lock_guard<std::mutex> lock(mu_);
      if (n) {
        published_ = *n;
        done_ = true;
      } else {
        overflow_ = true;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = std::current_exception();
    }
    cv_.notify_all();
  });
}

void TextSource::run_eager_fallback() {
  // The producer overflowed the bounded buffer (the ISIZE hint was wrong
  // mod 2^32). Decode eagerly into a second buffer; the first stays alive
  // so views already handed out keep their bytes.
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(raw_.data());
  fallback_ = util::gzip_decompress(bytes, raw_.size());
  use_fallback_ = true;
  done_ = true;
  published_ = fallback_.size();
}

TextSource::View TextSource::wait_for(std::size_t target) {
  if (!gzip_) return {raw_.data(), raw_.size(), true};
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return done_ || overflow_ || error_ != nullptr || published_ >= target;
  });
  if (error_ != nullptr) std::rethrow_exception(error_);
  if (overflow_ && !use_fallback_) {
    // Producer has exited; safe to decode on this (the consumer) thread.
    lock.unlock();
    run_eager_fallback();
    lock.lock();
  }
  if (use_fallback_) {
    return {reinterpret_cast<const char*>(fallback_.data()), fallback_.size(),
            true};
  }
  return {reinterpret_cast<const char*>(buf_.get()), published_, done_};
}

std::string_view TextSource::all() {
  View v = wait_for(static_cast<std::size_t>(-1));
  return v.text();
}

// ---------------------------------------------------------------------------
// LineScanner

namespace {
constexpr std::size_t kScanGrowStep = 256u * 1024;
}  // namespace

LineScanner::LineScanner(TextSource& src) : src_(&src) { refresh(0); }

void LineScanner::refresh(std::size_t target) {
  TextSource::View v = src_->wait_for(target);
  view_ = v.text();
  complete_ = v.complete;
}

void LineScanner::ensure(std::size_t target) {
  while (!complete_ && view_.size() < target) refresh(target);
}

std::size_t LineScanner::find_newline(std::size_t from) {
  while (true) {
    if (from < view_.size()) {
      const void* hit =
          std::memchr(view_.data() + from, '\n', view_.size() - from);
      if (hit != nullptr) {
        return static_cast<std::size_t>(static_cast<const char*>(hit) -
                                        view_.data());
      }
      from = view_.size();
    }
    if (complete_) return npos;
    refresh(std::max(view_.size() + kScanGrowStep, from + 1));
  }
}

// ---------------------------------------------------------------------------
// ChunkExecutor

ChunkExecutor::ChunkExecutor(int threads) : threads_(std::max(1, threads)) {
  if (threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ChunkExecutor::~ChunkExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ChunkExecutor::run_one(const Job& job) {
  try {
    job.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job.index < error_index_) {
      error_index_ = job.index;
      error_ = std::current_exception();
    }
  }
}

void ChunkExecutor::submit(std::function<void()> job) {
  if (threads_ <= 1) {
    const Job j{next_index_++, std::move(job)};
    if (!failed()) run_one(j);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Job{next_index_++, std::move(job)});
  }
  cv_work_.notify_one();
}

void ChunkExecutor::finish() {
  if (threads_ > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (error_ != nullptr) {
    auto err = error_;
    error_ = nullptr;
    error_index_ = static_cast<std::size_t>(-1);
    std::rethrow_exception(err);
  }
}

bool ChunkExecutor::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ != nullptr;
}

void ChunkExecutor::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      if (error_ != nullptr) {
        // A lower-or-unknown-index job failed: drop the rest, the caller
        // falls back to the serial parse anyway.
        if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
        continue;
      }
      ++active_;
    }
    run_one(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace jedule::io
