#include "jedule/color/color.hpp"

#include <algorithm>
#include <cmath>

#include "jedule/util/error.hpp"

namespace jedule::color {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::uint8_t hex_byte(std::string_view s, size_t pos) {
  int hi = hex_digit(s[pos]);
  int lo = hex_digit(s[pos + 1]);
  if (hi < 0 || lo < 0) {
    throw ParseError("invalid hex color '" + std::string(s) + "'");
  }
  return static_cast<std::uint8_t>(hi * 16 + lo);
}
}  // namespace

Color parse_color(std::string_view s) {
  if (!s.empty() && s[0] == '#') s.remove_prefix(1);
  if (s.size() != 6 && s.size() != 8) {
    throw ParseError("invalid hex color '" + std::string(s) +
                     "' (expected RRGGBB or RRGGBBAA)");
  }
  Color c;
  c.r = hex_byte(s, 0);
  c.g = hex_byte(s, 2);
  c.b = hex_byte(s, 4);
  c.a = s.size() == 8 ? hex_byte(s, 6) : 255;
  return c;
}

std::string to_hex(const Color& c) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  auto put = [&](std::uint8_t v) {
    out += digits[v >> 4];
    out += digits[v & 0xF];
  };
  put(c.r);
  put(c.g);
  put(c.b);
  if (c.a != 255) put(c.a);
  return out;
}

std::uint8_t luminance(const Color& c) {
  const double y = 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
  return static_cast<std::uint8_t>(std::clamp(y, 0.0, 255.0));
}

Color to_gray(const Color& c) {
  const std::uint8_t y = luminance(c);
  return Color{y, y, y, c.a};
}

Color lerp(const Color& a, const Color& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(std::lround(x + t * (y - x)));
  };
  return Color{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b), mix(a.a, b.a)};
}

Color blend_over(const Color& dst, const Color& src) {
  if (src.a == 255) return Color{src.r, src.g, src.b, 255};
  if (src.a == 0) return dst;
  const double t = src.a / 255.0;
  auto mix = [t](std::uint8_t d, std::uint8_t s) {
    return static_cast<std::uint8_t>(std::lround(d * (1.0 - t) + s * t));
  };
  return Color{mix(dst.r, src.r), mix(dst.g, src.g), mix(dst.b, src.b), 255};
}

Color from_hsv(double h, double s, double v) {
  s = std::clamp(s, 0.0, 1.0);
  v = std::clamp(v, 0.0, 1.0);
  h = std::fmod(h, 360.0);
  if (h < 0) h += 360.0;
  const double c = v * s;
  const double hp = h / 60.0;
  const double x = c * (1.0 - std::fabs(std::fmod(hp, 2.0) - 1.0));
  double r = 0;
  double g = 0;
  double b = 0;
  if (hp < 1) { r = c; g = x; }
  else if (hp < 2) { r = x; g = c; }
  else if (hp < 3) { g = c; b = x; }
  else if (hp < 4) { g = x; b = c; }
  else if (hp < 5) { r = x; b = c; }
  else { r = c; b = x; }
  const double m = v - c;
  auto to8 = [m](double ch) {
    return static_cast<std::uint8_t>(std::lround(std::clamp(ch + m, 0.0, 1.0) * 255.0));
  };
  return Color{to8(r), to8(g), to8(b), 255};
}

Color palette_color(std::size_t n) {
  // Golden-angle stepping keeps neighbouring indices far apart in hue;
  // cycling saturation/value bands keeps large palettes distinguishable.
  constexpr double kGoldenAngle = 137.50776405003785;
  const double h = std::fmod(kGoldenAngle * static_cast<double>(n) + 211.0, 360.0);
  const double s = (n % 3 == 1) ? 0.55 : 0.8;
  const double v = (n % 3 == 2) ? 0.7 : 0.9;
  return from_hsv(h, s, v);
}

Color contrast_color(const Color& background) {
  return luminance(background) >= 140 ? kBlack : kWhite;
}

}  // namespace jedule::color
