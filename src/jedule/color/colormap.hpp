#pragma once

// User-defined color maps (paper Sec. II.C.4, Fig. 2).
//
// A colormap assigns a foreground (label) and background (fill) color to each
// task *type*, plus optional explicit colors for composite tasks formed by a
// given set of member types. It also carries the style configuration knobs
// the paper's format embeds in the same file (font sizes).
//
// Lookup semantics:
//  * style_for(type): the explicit style if present, otherwise a
//    deterministic auto-assigned palette color (so unknown types still
//    render distinguishably).
//  * composite_style(types): an explicit composite rule whose member set
//    equals `types` if one exists, otherwise the member background colors
//    averaged (and a contrasting foreground).

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "jedule/color/color.hpp"

namespace jedule::color {

struct TaskStyle {
  Color foreground = kWhite;
  Color background{0, 0, 255, 255};

  friend bool operator==(const TaskStyle&, const TaskStyle&) = default;
};

struct CompositeRule {
  std::set<std::string> members;  // task types whose overlap this rule styles
  TaskStyle style;
};

class ColorMap {
 public:
  ColorMap() = default;
  explicit ColorMap(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Free-form configuration entries (`<conf name=... value=.../>`).
  const std::map<std::string, std::string>& config() const { return config_; }
  void set_config(std::string key, std::string value);
  std::optional<std::string_view> config_value(std::string_view key) const;

  /// Typed accessors for the font-size knobs of the paper's format; the
  /// defaults match Fig. 2's "standard map".
  int font_size_label() const { return config_int("font_size_label", 13); }
  int min_font_size_label() const {
    return config_int("min_fontsize_label", 11);
  }
  int font_size_axes() const { return config_int("font_size_axes", 12); }

  void set_style(std::string task_type, TaskStyle style);
  bool has_style(std::string_view task_type) const;

  /// Styles in insertion order, for serialization.
  const std::vector<std::pair<std::string, TaskStyle>>& styles() const {
    return styles_;
  }

  void add_composite_rule(CompositeRule rule);
  const std::vector<CompositeRule>& composite_rules() const {
    return composite_rules_;
  }

  TaskStyle style_for(std::string_view task_type) const;
  TaskStyle composite_style(const std::set<std::string>& member_types) const;

  /// Copy with every color collapsed to its gray of equal luma (journal
  /// grayscale style guides, paper Sec. II.D.2).
  ColorMap grayscale() const;

 private:
  int config_int(std::string_view key, int fallback) const;

  std::string name_ = "standard_map";
  std::map<std::string, std::string> config_;
  std::vector<std::pair<std::string, TaskStyle>> styles_;
  std::vector<CompositeRule> composite_rules_;
};

/// The map the tool ships with: blue computation on white text, red transfer,
/// orange composite of the two — the exact colors of paper Figs. 2 and 3.
ColorMap standard_colormap();

}  // namespace jedule::color
