#include "jedule/color/colormap.hpp"

#include <functional>

#include "jedule/util/strings.hpp"

namespace jedule::color {

void ColorMap::set_config(std::string key, std::string value) {
  config_[std::move(key)] = std::move(value);
}

std::optional<std::string_view> ColorMap::config_value(
    std::string_view key) const {
  auto it = config_.find(std::string(key));
  if (it == config_.end()) return std::nullopt;
  return std::string_view(it->second);
}

int ColorMap::config_int(std::string_view key, int fallback) const {
  auto v = config_value(key);
  if (!v) return fallback;
  auto parsed = util::parse_int(*v);
  return parsed ? static_cast<int>(*parsed) : fallback;
}

void ColorMap::set_style(std::string task_type, TaskStyle style) {
  for (auto& [type, s] : styles_) {
    if (type == task_type) {
      s = style;
      return;
    }
  }
  styles_.emplace_back(std::move(task_type), style);
}

bool ColorMap::has_style(std::string_view task_type) const {
  for (const auto& [type, s] : styles_) {
    if (type == task_type) return true;
  }
  return false;
}

void ColorMap::add_composite_rule(CompositeRule rule) {
  composite_rules_.push_back(std::move(rule));
}

TaskStyle ColorMap::style_for(std::string_view task_type) const {
  for (const auto& [type, s] : styles_) {
    if (type == task_type) return s;
  }
  // Unknown type: derive a stable palette slot from the type name so the
  // same type always gets the same color within and across runs.
  const std::size_t slot =
      std::hash<std::string_view>{}(task_type) % 1024;
  TaskStyle s;
  s.background = palette_color(slot);
  s.foreground = contrast_color(s.background);
  return s;
}

TaskStyle ColorMap::composite_style(
    const std::set<std::string>& member_types) const {
  for (const auto& rule : composite_rules_) {
    if (rule.members == member_types) return rule.style;
  }
  if (member_types.empty()) return style_for("composite");
  // Fallback: average the member backgrounds.
  long r = 0;
  long g = 0;
  long b = 0;
  for (const auto& type : member_types) {
    const Color bg = style_for(type).background;
    r += bg.r;
    g += bg.g;
    b += bg.b;
  }
  const auto n = static_cast<long>(member_types.size());
  TaskStyle s;
  s.background = Color{static_cast<std::uint8_t>(r / n),
                       static_cast<std::uint8_t>(g / n),
                       static_cast<std::uint8_t>(b / n), 255};
  s.foreground = contrast_color(s.background);
  return s;
}

ColorMap ColorMap::grayscale() const {
  ColorMap out = *this;
  for (auto& [type, style] : out.styles_) {
    style.foreground = to_gray(style.foreground);
    style.background = to_gray(style.background);
  }
  for (auto& rule : out.composite_rules_) {
    rule.style.foreground = to_gray(rule.style.foreground);
    rule.style.background = to_gray(rule.style.background);
  }
  return out;
}

ColorMap standard_colormap() {
  ColorMap map("standard_map");
  map.set_config("min_fontsize_label", "11");
  map.set_config("font_size_label", "13");
  map.set_config("font_size_axes", "12");
  map.set_style("computation",
                TaskStyle{parse_color("FFFFFF"), parse_color("0000FF")});
  map.set_style("transfer",
                TaskStyle{parse_color("000000"), parse_color("f10000")});
  // "idle"/"waiting" red and work blue are also what the task-pool case
  // study (Figs. 11-12) uses.
  map.set_style("waiting",
                TaskStyle{parse_color("000000"), parse_color("f10000")});
  CompositeRule rule;
  rule.members = {"computation", "transfer"};
  rule.style = TaskStyle{parse_color("FFFFFF"), parse_color("ff6200")};
  map.add_composite_rule(std::move(rule));
  return map;
}

}  // namespace jedule::color
