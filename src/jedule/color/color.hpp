#pragma once

// RGB color type and helpers shared by colormaps and the renderer.

#include <cstdint>
#include <string>
#include <string_view>

namespace jedule::color {

struct Color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;

  friend bool operator==(const Color&, const Color&) = default;
};

inline constexpr Color kBlack{0, 0, 0, 255};
inline constexpr Color kWhite{255, 255, 255, 255};

/// Parses "RRGGBB", "#RRGGBB", "RRGGBBAA" or "#RRGGBBAA" (case-insensitive,
/// as the paper's colormap files use both "FFFFFF" and "f10000").
/// Throws jedule::ParseError on malformed input.
Color parse_color(std::string_view s);

/// "rrggbb" lowercase hex (alpha omitted when 255, else "rrggbbaa").
std::string to_hex(const Color& c);

/// Rec. 601 luma in [0,255].
std::uint8_t luminance(const Color& c);

/// Color with the same luma on the gray axis (used for grayscale colormaps
/// required by journal style guides, per Sec. II.D.2 of the paper).
Color to_gray(const Color& c);

/// Linear interpolation a + t*(b-a) per channel, t clamped to [0,1].
Color lerp(const Color& a, const Color& b, double t);

/// Source-over alpha blending of `src` onto opaque `dst`.
Color blend_over(const Color& dst, const Color& src);

/// HSV (h in [0,360), s,v in [0,1]) to RGB.
Color from_hsv(double h, double s, double v);

/// `n`-th color of a deterministic, well-spread categorical palette
/// (golden-angle hue stepping with alternating saturation/value bands).
/// Used to auto-assign colors, e.g. one per application in the multi-DAG
/// case study (Fig. 5).
Color palette_color(std::size_t n);

/// Black or white, whichever contrasts better with `background`.
Color contrast_color(const Color& background);

}  // namespace jedule::color
