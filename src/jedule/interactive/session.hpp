#pragma once

// Headless implementation of Jedule's interactive mode (paper Sec. II.D.1).
//
// The Swing GUI of the original maps input events to a small set of view
// operations: select clusters, zoom (wheel / rectangle selection), pan
// (drag), inspect a task (click), re-read the schedule file, and export a
// snapshot. Since the engine refactor (DESIGN.md §4f) the view state
// itself — window, selection, colormap, layout, tile cache — lives in
// engine::SessionState as a view over a shared engine::ScheduleEntry;
// Session is the script/REPL frontend: it binds the state to a file (for
// reread), resolves pixel queries to task descriptions, and interprets the
// `view` subcommand's command language. The test suite drives it directly
// (see DESIGN.md §2 for why the event loop itself is substituted).
//
// Interactive frames are O(visible): the entry's model::TaskIndex feeds
// viewport culling and point-query inspect, and frames render through a
// render::TileCache, so a pan re-rasterizes only the newly exposed strip.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "jedule/color/colormap.hpp"
#include "jedule/engine/session_state.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/frame_profile.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"

namespace jedule::interactive {

class Session {
 public:
  /// Session over an in-memory schedule; reread() is unavailable.
  Session(model::Schedule schedule, color::ColorMap colormap,
          render::GanttStyle style = {});

  /// Session bound to a schedule file; reread() reloads it (the paper's
  /// fast simulate-and-look development loop).
  Session(const std::string& path, color::ColorMap colormap,
          render::GanttStyle style = {});

  /// Session viewing an already-ingested store entry (the serve/engine
  /// path: many sessions over one schedule, no copies).
  Session(engine::EntryPtr entry, color::ColorMap colormap,
          render::GanttStyle style = {});

  const model::Schedule& schedule() const { return state_.schedule(); }
  const render::GanttStyle& style() const { return state_.style(); }

  /// Current layout (recomputed lazily after every view change).
  const render::GanttLayout& layout() { return state_.layout(); }

  /// The shared spatial index (owned by the underlying ScheduleEntry).
  const model::TaskIndex& index() { return state_.index(); }

  /// The underlying engine view state.
  engine::SessionState& state() { return state_; }

  // -- view operations (forwarded to engine::SessionState) -------------

  /// Wheel zoom: shrink (factor > 1) or grow (factor < 1) the time window
  /// by `factor`, keeping the time at `center_frac` (0..1 across the panel
  /// width) fixed. Throws ArgumentError on factor <= 0 or NaN; the
  /// resulting span is clamped to sane bounds otherwise.
  void zoom(double factor, double center_frac = 0.5) {
    state_.zoom(factor, center_frac);
  }

  /// Rectangle-selection zoom: window = the time span between two pixel
  /// x-coordinates. Pixels outside panels clamp to the panel edges;
  /// reversed or empty selections clamp to a minimal span (never throw).
  void zoom_to_pixels(double x0, double x1) { state_.zoom_to_pixels(x0, x1); }

  /// Explicit window in schedule time units. Reversed bounds swap, empty
  /// windows expand to a minimal span; non-finite bounds throw.
  void zoom_to_time(double t0, double t1) { state_.zoom_to_time(t0, t1); }

  /// Drag: shift the current window by `dt` time units (positive = later).
  /// Clamped so the window always touches the schedule's time range.
  void pan(double dt) { state_.pan(dt); }

  /// Drop zoom and cluster selection.
  void reset_view() { state_.reset_view(); }

  void select_clusters(std::vector<int> cluster_ids) {
    state_.select_clusters(std::move(cluster_ids));
  }
  void select_all_clusters() { state_.select_all_clusters(); }

  void set_view_mode(model::ViewMode mode) { state_.set_view_mode(mode); }
  void set_colormap(color::ColorMap colormap) {
    state_.set_colormap(std::move(colormap));
  }
  void set_grayscale(bool on) { state_.set_grayscale(on); }
  void set_lod(render::LodMode mode) { state_.set_lod(mode); }
  void set_edges(render::EdgeMode mode) { state_.set_edges(mode); }
  void set_edge_density(int per_column) {
    state_.set_edge_density(per_column);
  }

  // -- frames -----------------------------------------------------------

  /// Renders the current view through the tile cache and returns the
  /// frame; a pan after a rendered frame re-rasterizes only the exposed
  /// strip. Per-frame timings land in frame_log().
  const render::Framebuffer& frame() { return state_.frame(); }

  const render::profile::FrameLog& frame_log() const {
    return state_.frame_log();
  }

  // -- queries ---------------------------------------------------------

  /// Click-to-inspect: human-readable description (id, type, start/finish,
  /// per-cluster resource list) of the task drawn at pixel (x, y), or
  /// "no task at (x, y)". Resolves through the spatial index (a point
  /// query, not a scan), so it answers in O(log n) even when the panel is
  /// drawn as LOD density bins.
  std::string inspect(double x, double y);

  /// One-line schedule summary (clusters, tasks, makespan).
  std::string info() const;

  // -- file operations --------------------------------------------------

  /// Reloads the bound file, keeping the current view. Throws Error if the
  /// session is not file-bound.
  void reread();

  /// One `--follow` poll: ingest whatever the bound file gained since the
  /// last poll, keeping the current view. CSV traces are tailed
  /// byte-for-byte — only the appended lines are parsed and the entry is
  /// extended in O(delta) (engine::append_entry); other formats re-parse
  /// the file and append only the new tasks. A shrunken or rewritten file
  /// falls back to a full reload. Returns a one-line status; throws Error
  /// if the session is not file-bound.
  std::string follow();

  /// Exports the current view (format from the extension).
  void snapshot(const std::string& path);

  /// Executes one script command and returns its textual output. Commands:
  ///   zoom <factor> | zoom <t0> <t1> | window <t0> <t1> | pan <dt> | reset
  ///   clusters all | clusters <id>[,<id>...]
  ///   mode scaled|aligned | grayscale on|off | lod auto|off|force
  ///   edges auto|off|force | edge-density <n>
  ///   inspect <x> <y> | info | frame | stats | reread | export <path> | help
  /// Throws ArgumentError on unknown commands or malformed arguments.
  std::string execute(const std::string& command);

 private:
  std::string describe(const model::Task& t) const;

  engine::SessionState state_;
  std::string path_;  // empty when in-memory
  // Bytes of the bound CSV trace already ingested; unset until the first
  // follow() resynchronizes (entry and offset must come from one read).
  std::optional<std::size_t> follow_offset_;
};

}  // namespace jedule::interactive
