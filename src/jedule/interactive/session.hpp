#pragma once

// Headless implementation of Jedule's interactive mode (paper Sec. II.D.1).
//
// The Swing GUI of the original maps input events to a small set of view
// operations: select clusters, zoom (wheel / rectangle selection), pan
// (drag), inspect a task (click), re-read the schedule file, and export a
// snapshot. This class implements those operations against the shared
// layout engine; the `view` subcommand of the CLI drives it from a script
// or stdin, and the test suite drives it directly (see DESIGN.md §2 for why
// the event loop itself is substituted).
//
// Interactive frames are O(visible): the session shares one model::TaskIndex
// with the layout engine (viewport culling, point-query inspect) and renders
// through a render::TileCache, so a pan re-rasterizes only the newly exposed
// strip. View operations clamp degenerate input (zero/denormal zoom spans,
// pans past the schedule bounds) instead of producing NaN geometry.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/model/task_index.hpp"
#include "jedule/render/frame_profile.hpp"
#include "jedule/render/framebuffer.hpp"
#include "jedule/render/gantt.hpp"
#include "jedule/render/tile_cache.hpp"

namespace jedule::interactive {

class Session {
 public:
  /// Session over an in-memory schedule; reread() is unavailable.
  Session(model::Schedule schedule, color::ColorMap colormap,
          render::GanttStyle style = {});

  /// Session bound to a schedule file; reread() reloads it (the paper's
  /// fast simulate-and-look development loop).
  Session(const std::string& path, color::ColorMap colormap,
          render::GanttStyle style = {});

  const model::Schedule& schedule() const { return schedule_; }
  const render::GanttStyle& style() const { return style_; }

  /// Current layout (recomputed lazily after every view change).
  const render::GanttLayout& layout();

  /// The shared spatial index (built lazily, rebuilt on reread).
  const model::TaskIndex& index();

  // -- view operations ------------------------------------------------

  /// Wheel zoom: shrink (factor > 1) or grow (factor < 1) the time window
  /// by `factor`, keeping the time at `center_frac` (0..1 across the panel
  /// width) fixed. Throws ArgumentError on factor <= 0 or NaN; the
  /// resulting span is clamped to sane bounds otherwise.
  void zoom(double factor, double center_frac = 0.5);

  /// Rectangle-selection zoom: window = the time span between two pixel
  /// x-coordinates. Pixels outside panels clamp to the panel edges;
  /// reversed or empty selections clamp to a minimal span (never throw).
  void zoom_to_pixels(double x0, double x1);

  /// Explicit window in schedule time units. Reversed bounds swap, empty
  /// windows expand to a minimal span; non-finite bounds throw.
  void zoom_to_time(double t0, double t1);

  /// Drag: shift the current window by `dt` time units (positive = later).
  /// Clamped so the window always touches the schedule's time range.
  void pan(double dt);

  /// Drop zoom and cluster selection.
  void reset_view();

  void select_clusters(std::vector<int> cluster_ids);
  void select_all_clusters();

  void set_view_mode(model::ViewMode mode);
  void set_colormap(color::ColorMap colormap);
  void set_grayscale(bool on);
  void set_lod(render::LodMode mode);

  // -- frames -----------------------------------------------------------

  /// Renders the current view through the tile cache and returns the
  /// frame; a pan after a rendered frame re-rasterizes only the exposed
  /// strip. Per-frame timings land in frame_log().
  const render::Framebuffer& frame();

  const render::profile::FrameLog& frame_log() const { return frame_log_; }

  // -- queries ---------------------------------------------------------

  /// Click-to-inspect: human-readable description (id, type, start/finish,
  /// per-cluster resource list) of the task drawn at pixel (x, y), or
  /// "no task at (x, y)". Resolves through the spatial index (a point
  /// query, not a scan), so it answers in O(log n) even when the panel is
  /// drawn as LOD density bins.
  std::string inspect(double x, double y);

  /// One-line schedule summary (clusters, tasks, makespan).
  std::string info() const;

  // -- file operations --------------------------------------------------

  /// Reloads the bound file, keeping the current view. Throws Error if the
  /// session is not file-bound.
  void reread();

  /// Exports the current view (format from the extension).
  void snapshot(const std::string& path);

  /// Executes one script command and returns its textual output. Commands:
  ///   zoom <factor> | zoom <t0> <t1> | window <t0> <t1> | pan <dt> | reset
  ///   clusters all | clusters <id>[,<id>...]
  ///   mode scaled|aligned | grayscale on|off | lod auto|off|force
  ///   inspect <x> <y> | info | frame | stats | reread | export <path> | help
  /// Throws ArgumentError on unknown commands or malformed arguments.
  std::string execute(const std::string& command);

 private:
  void invalidate() { layout_.reset(); }
  void ensure_index();
  void on_schedule_loaded();
  /// Clamps (length, then position) and installs a time window.
  void set_window(double t0, double t1);
  model::TimeRange current_window() const;
  std::string describe(const model::Task& t) const;

  model::Schedule schedule_;
  color::ColorMap colormap_;
  color::ColorMap original_colormap_;
  bool grayscale_ = false;
  render::GanttStyle style_;
  std::string path_;  // empty when in-memory
  std::optional<render::GanttLayout> layout_;

  std::shared_ptr<const model::TaskIndex> index_;
  model::TimeRange full_range_{0, 1};
  render::TileCache cache_;
  std::optional<render::Framebuffer> frame_;
  render::profile::FrameLog frame_log_;
  std::uint64_t colormap_epoch_ = 0;
};

}  // namespace jedule::interactive
