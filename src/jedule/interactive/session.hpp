#pragma once

// Headless implementation of Jedule's interactive mode (paper Sec. II.D.1).
//
// The Swing GUI of the original maps input events to a small set of view
// operations: select clusters, zoom (wheel / rectangle selection), pan
// (drag), inspect a task (click), re-read the schedule file, and export a
// snapshot. This class implements those operations against the shared
// layout engine; the `view` subcommand of the CLI drives it from a script
// or stdin, and the test suite drives it directly (see DESIGN.md §2 for why
// the event loop itself is substituted).

#include <memory>
#include <optional>
#include <string>

#include "jedule/color/colormap.hpp"
#include "jedule/model/schedule.hpp"
#include "jedule/render/gantt.hpp"

namespace jedule::interactive {

class Session {
 public:
  /// Session over an in-memory schedule; reread() is unavailable.
  Session(model::Schedule schedule, color::ColorMap colormap,
          render::GanttStyle style = {});

  /// Session bound to a schedule file; reread() reloads it (the paper's
  /// fast simulate-and-look development loop).
  Session(const std::string& path, color::ColorMap colormap,
          render::GanttStyle style = {});

  const model::Schedule& schedule() const { return schedule_; }
  const render::GanttStyle& style() const { return style_; }

  /// Current layout (recomputed lazily after every view change).
  const render::GanttLayout& layout();

  // -- view operations ------------------------------------------------

  /// Wheel zoom: shrink (factor > 1) or grow (factor < 1) the time window
  /// by `factor`, keeping the time at `center_frac` (0..1 across the panel
  /// width) fixed.
  void zoom(double factor, double center_frac = 0.5);

  /// Rectangle-selection zoom: window = the time span between two pixel
  /// x-coordinates. Pixels outside panels clamp to the panel edges.
  void zoom_to_pixels(double x0, double x1);

  /// Explicit window in schedule time units.
  void zoom_to_time(double t0, double t1);

  /// Drag: shift the current window by `dt` time units (positive = later).
  void pan(double dt);

  /// Drop zoom and cluster selection.
  void reset_view();

  void select_clusters(std::vector<int> cluster_ids);
  void select_all_clusters();

  void set_view_mode(model::ViewMode mode);
  void set_colormap(color::ColorMap colormap);
  void set_grayscale(bool on);

  // -- queries ---------------------------------------------------------

  /// Click-to-inspect: human-readable description (id, type, start/finish,
  /// per-cluster resource list) of the task drawn at pixel (x, y), or
  /// "no task at (x, y)".
  std::string inspect(double x, double y);

  /// One-line schedule summary (clusters, tasks, makespan).
  std::string info() const;

  // -- file operations --------------------------------------------------

  /// Reloads the bound file, keeping the current view. Throws Error if the
  /// session is not file-bound.
  void reread();

  /// Exports the current view (format from the extension).
  void snapshot(const std::string& path);

  /// Executes one script command and returns its textual output. Commands:
  ///   zoom <factor> | zoom <t0> <t1> | pan <dt> | reset
  ///   clusters all | clusters <id>[,<id>...]
  ///   mode scaled|aligned | grayscale on|off
  ///   inspect <x> <y> | info | reread | export <path> | help
  /// Throws ArgumentError on unknown commands or malformed arguments.
  std::string execute(const std::string& command);

 private:
  void invalidate() { layout_.reset(); }
  model::TimeRange current_window() const;

  model::Schedule schedule_;
  color::ColorMap colormap_;
  color::ColorMap original_colormap_;
  bool grayscale_ = false;
  render::GanttStyle style_;
  std::string path_;  // empty when in-memory
  std::optional<render::GanttLayout> layout_;
};

}  // namespace jedule::interactive
