#include "jedule/interactive/session.hpp"

#include <algorithm>

#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/render/ascii.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::interactive {

using model::TimeRange;

Session::Session(model::Schedule schedule, color::ColorMap colormap,
                 render::GanttStyle style)
    : schedule_(std::move(schedule)),
      colormap_(colormap),
      original_colormap_(std::move(colormap)),
      style_(std::move(style)) {
  schedule_.validate();
}

Session::Session(const std::string& path, color::ColorMap colormap,
                 render::GanttStyle style)
    : colormap_(colormap),
      original_colormap_(std::move(colormap)),
      style_(std::move(style)),
      path_(path) {
  schedule_ = io::load_schedule(path_);
}

const render::GanttLayout& Session::layout() {
  if (!layout_) {
    layout_ = render::layout_gantt(schedule_, colormap_, style_);
  }
  return *layout_;
}

TimeRange Session::current_window() const {
  if (style_.time_window) return *style_.time_window;
  auto range = schedule_.time_range();
  return range ? *range : TimeRange{0, 1};
}

void Session::zoom(double factor, double center_frac) {
  if (factor <= 0) throw ArgumentError("zoom factor must be positive");
  center_frac = std::clamp(center_frac, 0.0, 1.0);
  const TimeRange window = current_window();
  const double center = window.begin + window.length() * center_frac;
  const double new_len = window.length() / factor;
  style_.time_window =
      TimeRange{center - new_len * center_frac,
                center + new_len * (1.0 - center_frac)};
  invalidate();
}

void Session::zoom_to_pixels(double x0, double x1) {
  if (x1 < x0) std::swap(x0, x1);
  const auto& lay = layout();
  if (lay.panels.empty()) return;
  // Rectangle zoom uses the time axis of the first panel; in aligned mode
  // all panels agree, in scaled mode this matches zooming "in" that panel.
  const auto& panel = lay.panels.front();
  auto time_of_x = [&](double x) {
    const double frac =
        std::clamp((x - panel.x) / panel.w, 0.0, 1.0);
    return panel.time_range.begin + frac * panel.time_range.length();
  };
  const double t0 = time_of_x(x0);
  const double t1 = time_of_x(x1);
  if (t1 <= t0) throw ArgumentError("zoom rectangle selects no time span");
  style_.time_window = TimeRange{t0, t1};
  invalidate();
}

void Session::zoom_to_time(double t0, double t1) {
  if (t1 <= t0) throw ArgumentError("zoom window must have t1 > t0");
  style_.time_window = TimeRange{t0, t1};
  invalidate();
}

void Session::pan(double dt) {
  const TimeRange window = current_window();
  style_.time_window = TimeRange{window.begin + dt, window.end + dt};
  invalidate();
}

void Session::reset_view() {
  style_.time_window.reset();
  style_.cluster_filter.clear();
  invalidate();
}

void Session::select_clusters(std::vector<int> cluster_ids) {
  for (int id : cluster_ids) {
    if (!schedule_.has_cluster(id)) {
      throw ArgumentError("unknown cluster id " + std::to_string(id));
    }
  }
  style_.cluster_filter = std::move(cluster_ids);
  invalidate();
}

void Session::select_all_clusters() {
  style_.cluster_filter.clear();
  invalidate();
}

void Session::set_view_mode(model::ViewMode mode) {
  style_.view_mode = mode;
  invalidate();
}

void Session::set_colormap(color::ColorMap colormap) {
  original_colormap_ = std::move(colormap);
  colormap_ = grayscale_ ? original_colormap_.grayscale() : original_colormap_;
  invalidate();
}

void Session::set_grayscale(bool on) {
  grayscale_ = on;
  colormap_ = on ? original_colormap_.grayscale() : original_colormap_;
  invalidate();
}

std::string Session::inspect(double x, double y) {
  const auto& lay = layout();
  const render::TaskBox* box = render::hit_test(lay, x, y);
  if (box == nullptr) {
    return "no task at (" + util::format_fixed(x, 0) + ", " +
           util::format_fixed(y, 0) + ")";
  }
  const model::Task& t = lay.tasks[box->task_index];
  std::string out = "task " + t.id() + ": type=" + t.type() +
                    " start=" + util::format_fixed(t.start_time(), 3) +
                    " end=" + util::format_fixed(t.end_time(), 3) +
                    " resources=";
  std::vector<std::string> parts;
  for (const auto& cfg : t.configurations()) {
    std::string part = "cluster " + std::to_string(cfg.cluster_id) + " hosts";
    for (const auto& hr : cfg.hosts) {
      part += " " + std::to_string(hr.start);
      if (hr.nb > 1) part += "-" + std::to_string(hr.start + hr.nb - 1);
    }
    parts.push_back(std::move(part));
  }
  out += util::join(parts, "; ");
  for (const auto& [k, v] : t.properties()) {
    out += " " + k + "=" + v;
  }
  return out;
}

std::string Session::info() const {
  const auto stats = model::compute_stats(schedule_);
  std::string out = std::to_string(schedule_.clusters().size()) +
                    " cluster(s), " + std::to_string(stats.task_count) +
                    " task(s), " + std::to_string(schedule_.total_hosts()) +
                    " host(s), makespan=" +
                    util::format_fixed(stats.makespan, 3) + ", utilization=" +
                    util::format_fixed(stats.utilization * 100.0, 1) + "%";
  return out;
}

void Session::reread() {
  if (path_.empty()) {
    throw Error("reread: session is not bound to a file");
  }
  schedule_ = io::load_schedule(path_);
  invalidate();
}

void Session::snapshot(const std::string& path) {
  render::RenderOptions options;
  options.style = style_;
  options.colormap = colormap_;
  render::export_schedule(schedule_, options, path);
}

std::string Session::execute(const std::string& command) {
  const auto words = util::split_ws(command);
  if (words.empty()) return "";
  const std::string& op = words[0];

  auto need_args = [&](std::size_t n) {
    if (words.size() != n + 1) {
      throw ArgumentError("command '" + op + "' expects " + std::to_string(n) +
                          " argument(s)");
    }
  };
  auto as_double = [&](const std::string& s) {
    auto v = util::parse_double(s);
    if (!v) throw ArgumentError("'" + s + "' is not a number");
    return *v;
  };

  if (op == "zoom") {
    if (words.size() == 2) {
      zoom(as_double(words[1]));
      const auto w = current_window();
      return "window [" + util::format_fixed(w.begin, 3) + ", " +
             util::format_fixed(w.end, 3) + "]";
    }
    need_args(2);
    zoom_to_time(as_double(words[1]), as_double(words[2]));
    return "window [" + words[1] + ", " + words[2] + "]";
  }
  if (op == "pan") {
    need_args(1);
    pan(as_double(words[1]));
    const auto w = current_window();
    return "window [" + util::format_fixed(w.begin, 3) + ", " +
           util::format_fixed(w.end, 3) + "]";
  }
  if (op == "reset") {
    need_args(0);
    reset_view();
    return "view reset";
  }
  if (op == "clusters") {
    need_args(1);
    if (words[1] == "all") {
      select_all_clusters();
      return "showing all clusters";
    }
    std::vector<int> ids;
    for (const auto& part : util::split(words[1], ',')) {
      auto v = util::parse_int(part);
      if (!v) throw ArgumentError("bad cluster id '" + part + "'");
      ids.push_back(static_cast<int>(*v));
    }
    const std::size_t count = ids.size();
    select_clusters(std::move(ids));
    return "showing " + std::to_string(count) + " cluster(s)";
  }
  if (op == "types") {
    // Task-type filter ("a user might only be interested in a certain task
    // type", Sec. II.B).
    need_args(1);
    if (words[1] == "all") {
      style_.type_filter.clear();
      invalidate();
      return "showing all task types";
    }
    style_.type_filter = util::split(words[1], ',');
    invalidate();
    return "showing " + std::to_string(style_.type_filter.size()) +
           " task type(s)";
  }
  if (op == "mode") {
    need_args(1);
    if (words[1] == "scaled") {
      set_view_mode(model::ViewMode::kScaled);
    } else if (words[1] == "aligned") {
      set_view_mode(model::ViewMode::kAligned);
    } else {
      throw ArgumentError("mode must be 'scaled' or 'aligned'");
    }
    return "mode " + words[1];
  }
  if (op == "cmap") {
    // "Color maps can also be changed on the fly" (paper conclusions).
    need_args(1);
    set_colormap(io::load_colormap_xml(words[1]));
    return "colormap " + words[1];
  }
  if (op == "grayscale") {
    need_args(1);
    if (words[1] == "on") set_grayscale(true);
    else if (words[1] == "off") set_grayscale(false);
    else throw ArgumentError("grayscale must be 'on' or 'off'");
    return "grayscale " + words[1];
  }
  if (op == "inspect" || op == "click") {
    need_args(2);
    return inspect(as_double(words[1]), as_double(words[2]));
  }
  if (op == "info") {
    need_args(0);
    return info();
  }
  if (op == "ascii") {
    // In-terminal view of the current zoom/selection (the stand-in for the
    // Swing window when no display is available).
    need_args(0);
    render::AsciiOptions ao;
    ao.time_window = style_.time_window;
    ao.cluster_filter = style_.cluster_filter;
    ao.type_filter = style_.type_filter;
    ao.view_mode = style_.view_mode;
    return render::render_ascii(schedule_, ao);
  }
  if (op == "reread") {
    need_args(0);
    reread();
    return "reloaded " + path_;
  }
  if (op == "export") {
    need_args(1);
    snapshot(words[1]);
    return "wrote " + words[1];
  }
  if (op == "help") {
    return "commands: zoom <factor>|zoom <t0> <t1>, pan <dt>, reset, "
           "clusters all|<ids>, types all|<names>, mode scaled|aligned, "
           "grayscale on|off, cmap <file>, inspect <x> <y>, info, ascii, reread, "
           "export <path>, help";
  }
  throw ArgumentError("unknown command '" + op + "' (try 'help')");
}

}  // namespace jedule::interactive
