#include "jedule/interactive/session.hpp"

#include <algorithm>
#include <cmath>

#include "jedule/engine/events.hpp"
#include "jedule/engine/options.hpp"
#include "jedule/engine/store.hpp"
#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/file.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/render/ascii.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::interactive {

Session::Session(model::Schedule schedule, color::ColorMap colormap,
                 render::GanttStyle style)
    : state_(engine::make_entry(std::move(schedule)), std::move(colormap),
             std::move(style)) {}

Session::Session(const std::string& path, color::ColorMap colormap,
                 render::GanttStyle style)
    : state_(engine::load_entry(path), std::move(colormap), std::move(style)),
      path_(path) {}

Session::Session(engine::EntryPtr entry, color::ColorMap colormap,
                 render::GanttStyle style)
    : state_(std::move(entry), std::move(colormap), std::move(style)) {}

std::string Session::describe(const model::Task& t) const {
  std::string out = "task " + t.id() + ": type=" + t.type() +
                    " start=" + util::format_fixed(t.start_time(), 3) +
                    " end=" + util::format_fixed(t.end_time(), 3) +
                    " resources=";
  std::vector<std::string> parts;
  for (const auto& cfg : t.configurations()) {
    std::string part = "cluster " + std::to_string(cfg.cluster_id) + " hosts";
    for (const auto& hr : cfg.hosts) {
      part += " " + std::to_string(hr.start);
      if (hr.nb > 1) part += "-" + std::to_string(hr.start + hr.nb - 1);
    }
    parts.push_back(std::move(part));
  }
  out += util::join(parts, "; ");
  for (const auto& [k, v] : t.properties()) {
    out += " " + k + "=" + v;
  }
  return out;
}

std::string Session::inspect(double x, double y) {
  const auto& lay = state_.layout();
  const std::string miss = "no task at (" + util::format_fixed(x, 0) + ", " +
                           util::format_fixed(y, 0) + ")";
  if (!std::isfinite(x) || !std::isfinite(y)) return miss;

  // Composites draw on top of their members and live at the tail of the
  // box list — check those first, topmost (last-drawn) wins.
  for (auto it = lay.boxes.rbegin();
       it != lay.boxes.rend() && it->composite; ++it) {
    if (x >= it->x && x < it->x + std::max(it->w, 1.0) && y >= it->y &&
        y < it->y + std::max(it->h, 1.0)) {
      return describe(lay.tasks[it->task_index]);
    }
  }

  // Ordinary tasks resolve through the spatial index: a point query over
  // the 1-px time slab [time(x-1), time(x)] (hit_test gives every box at
  // least 1 px of width), then the exact box predicate per candidate.
  // This answers clicks without scanning the task list — including on
  // panels rendered as LOD density bins, which have no exact boxes.
  const render::PanelLayout* panel = render::panel_at(lay, x, y);
  if (panel == nullptr) {
    // A box's 1-px minimum width can overhang the panel's right edge.
    panel = render::panel_at(lay, x - 1.0, y);
  }
  if (panel == nullptr) return miss;

  auto time_of_x = [&](double px) {
    return panel->time_range.begin +
           (px - panel->x) / panel->w * panel->time_range.length();
  };
  const auto& type_filter = state_.style().type_filter;
  const auto type_selected = [&type_filter](const model::Task& t) {
    return type_filter.empty() ||
           std::find(type_filter.begin(), type_filter.end(), t.type()) !=
               type_filter.end();
  };

  long long best = -1;
  state_.index().query(
      panel->cluster_id, time_of_x(x - 1.0), time_of_x(x),
      [&](const model::TaskIndex::Entry& e) {
        const model::Task& t = schedule().tasks()[e.task];
        if (!type_selected(t)) return;
        // Replicate the layout's clipping and box arithmetic exactly so
        // the answer matches what hit_test on a full layout would return.
        const double t0 = std::max(e.begin, panel->time_range.begin);
        const double t1 = std::min(e.end, panel->time_range.end);
        if (t1 <= t0 && !(e.begin == e.end && t0 == e.begin)) return;
        const double bx = panel->x_of_time(t0);
        const double bw = panel->x_of_time(t1) - bx;
        const double by = panel->y + panel->row_height() * e.host_start;
        const double bh =
            panel->row_height() * (e.host_end - e.host_start + 1);
        if (x >= bx && x < bx + std::max(bw, 1.0) && y >= by &&
            y < by + std::max(bh, 1.0)) {
          best = std::max(best, static_cast<long long>(e.task));
        }
      });
  if (best < 0) return miss;
  return describe(schedule().tasks()[static_cast<std::size_t>(best)]);
}

std::string Session::info() const {
  const auto stats = model::compute_stats(schedule());
  std::string out = std::to_string(schedule().clusters().size()) +
                    " cluster(s), " + std::to_string(stats.task_count) +
                    " task(s), " + std::to_string(schedule().total_hosts()) +
                    " host(s), makespan=" +
                    util::format_fixed(stats.makespan, 3) + ", utilization=" +
                    util::format_fixed(stats.utilization * 100.0, 1) + "%";
  if (!schedule().dependencies().empty()) {
    out += ", " + std::to_string(schedule().dependencies().size()) +
           " dependency edge(s)";
  }
  return out;
}

void Session::reread() {
  if (path_.empty()) {
    throw Error("reread: session is not bound to a file");
  }
  state_.reset_entry(engine::load_entry(path_));
}

std::string Session::follow() {
  if (path_.empty()) {
    throw Error("follow: session is not bound to a file");
  }
  auto appended_msg = [this](std::size_t n) {
    return "appended " + std::to_string(n) + " task(s) (" +
           std::to_string(state_.entry()->task_count()) + " total)";
  };

  if (util::ends_with(path_, ".csv")) {
    const std::string content = io::read_file(path_);
    if (!follow_offset_ || content.size() < *follow_offset_) {
      // First poll (resynchronize entry and byte offset from one read) or
      // a truncated/rewritten file: start over from the full content.
      state_.reset_entry(engine::parse_entry(content, path_));
      const bool first = !follow_offset_.has_value();
      follow_offset_ = content.size();
      return first ? "following " + path_ + " (" +
                         std::to_string(state_.entry()->task_count()) +
                         " task(s))"
                   : "reloaded " + path_ + " (file shrank)";
    }
    std::string_view tail{content};
    tail.remove_prefix(*follow_offset_);
    // Only consume whole lines; a writer caught mid-append keeps its
    // partial last line for the next poll.
    const auto last_nl = tail.rfind('\n');
    if (last_nl == std::string_view::npos) return "no new tasks";
    tail = tail.substr(0, last_nl + 1);
    try {
      const auto events = engine::parse_event_lines(std::string(tail));
      if (!events.empty()) {
        state_.reset_entry(engine::append_entry(state_.entry(), events));
      }
      *follow_offset_ += tail.size();
      return events.empty() ? "no new tasks" : appended_msg(events.size());
    } catch (const Error&) {
      // Tail not appendable (malformed line, duplicate id, overlap):
      // degrade to a full reload of whatever the file now holds.
      state_.reset_entry(engine::parse_entry(content, path_));
      follow_offset_ = content.size();
      return "reloaded " + path_ + " (tail not appendable)";
    }
  }

  // Formats without a line-oriented tail (XML): re-parse the file, then
  // append only the new tasks — the parse is O(n) but the index, hash and
  // composite extension stay O(delta).
  model::Schedule fresh = io::load_schedule(path_, "");
  const std::size_t have = state_.entry()->task_count();
  if (fresh.tasks().size() == have) return "no new tasks";
  if (fresh.tasks().size() > have) {
    try {
      const auto events = engine::events_from_tasks(fresh, have);
      state_.reset_entry(engine::append_entry(state_.entry(), events));
      return appended_msg(events.size());
    } catch (const Error&) {
      // Non-contiguous allocation or a prefix change: fall through.
    }
  }
  state_.reset_entry(engine::make_entry(std::move(fresh), path_));
  return "reloaded " + path_;
}

void Session::snapshot(const std::string& path) {
  render::RenderOptions options;
  options.style = state_.style();
  options.colormap = state_.colormap();
  options.task_index = &state_.index();
  options.edge_index = &state_.entry()->edges;
  render::export_schedule(schedule(), options, path);
}

std::string Session::execute(const std::string& command) {
  const auto words = util::split_ws(command);
  if (words.empty()) return "";
  const std::string& op = words[0];

  auto need_args = [&](std::size_t n) {
    if (words.size() != n + 1) {
      throw ArgumentError("command '" + op + "' expects " + std::to_string(n) +
                          " argument(s)");
    }
  };
  auto as_double = [&](const std::string& s) {
    auto v = util::parse_double(s);
    if (!v) throw ArgumentError("'" + s + "' is not a number");
    return *v;
  };
  auto window_echo = [&]() {
    const auto w = state_.current_window();
    return "window [" + util::format_fixed(w.begin, 3) + ", " +
           util::format_fixed(w.end, 3) + "]";
  };

  if (op == "zoom") {
    if (words.size() == 2) {
      zoom(as_double(words[1]));
      return window_echo();
    }
    need_args(2);
    zoom_to_time(as_double(words[1]), as_double(words[2]));
    return "window [" + words[1] + ", " + words[2] + "]";
  }
  if (op == "window") {
    // Like "zoom <t0> <t1>" but echoes the clamped result, so scripts see
    // what the view actually shows.
    need_args(2);
    zoom_to_time(as_double(words[1]), as_double(words[2]));
    return window_echo();
  }
  if (op == "pan") {
    need_args(1);
    pan(as_double(words[1]));
    return window_echo();
  }
  if (op == "reset") {
    need_args(0);
    reset_view();
    return "view reset";
  }
  if (op == "clusters") {
    need_args(1);
    if (words[1] == "all") {
      select_all_clusters();
      return "showing all clusters";
    }
    std::vector<int> ids = engine::parse_cluster_ids(words[1]);
    const std::size_t count = ids.size();
    select_clusters(std::move(ids));
    return "showing " + std::to_string(count) + " cluster(s)";
  }
  if (op == "types") {
    // Task-type filter ("a user might only be interested in a certain task
    // type", Sec. II.B).
    need_args(1);
    if (words[1] == "all") {
      state_.set_type_filter({});
      return "showing all task types";
    }
    auto types = util::split(words[1], ',');
    const std::size_t count = types.size();
    state_.set_type_filter(std::move(types));
    return "showing " + std::to_string(count) + " task type(s)";
  }
  if (op == "mode") {
    need_args(1);
    if (words[1] == "scaled") {
      set_view_mode(model::ViewMode::kScaled);
    } else if (words[1] == "aligned") {
      set_view_mode(model::ViewMode::kAligned);
    } else {
      throw ArgumentError("mode must be 'scaled' or 'aligned'");
    }
    return "mode " + words[1];
  }
  if (op == "cmap") {
    // "Color maps can also be changed on the fly" (paper conclusions).
    need_args(1);
    set_colormap(io::load_colormap_xml(words[1]));
    return "colormap " + words[1];
  }
  if (op == "grayscale") {
    need_args(1);
    if (words[1] == "on") set_grayscale(true);
    else if (words[1] == "off") set_grayscale(false);
    else throw ArgumentError("grayscale must be 'on' or 'off'");
    return "grayscale " + words[1];
  }
  if (op == "lod") {
    need_args(1);
    set_lod(engine::parse_lod_mode(words[1]));
    return "lod " + words[1];
  }
  if (op == "edges") {
    need_args(1);
    set_edges(engine::parse_edge_mode(words[1]));
    return "edges " + words[1];
  }
  if (op == "edge-density") {
    need_args(1);
    set_edge_density(engine::parse_positive_int(words[1], "edge-density"));
    return "edge-density " + words[1];
  }
  if (op == "inspect" || op == "click") {
    need_args(2);
    return inspect(as_double(words[1]), as_double(words[2]));
  }
  if (op == "frame") {
    need_args(0);
    frame();
    return frame_log().last().summary();
  }
  if (op == "stats") {
    need_args(0);
    return frame_log().summary();
  }
  if (op == "info") {
    need_args(0);
    return info();
  }
  if (op == "ascii") {
    // In-terminal view of the current zoom/selection (the stand-in for the
    // Swing window when no display is available).
    need_args(0);
    const auto& style = state_.style();
    render::AsciiOptions ao;
    ao.time_window = style.time_window;
    ao.cluster_filter = style.cluster_filter;
    ao.type_filter = style.type_filter;
    ao.view_mode = style.view_mode;
    return render::render_ascii(schedule(), ao);
  }
  if (op == "reread") {
    need_args(0);
    reread();
    return "reloaded " + path_;
  }
  if (op == "follow") {
    // One live-trace poll; `view --follow` runs this in a loop.
    need_args(0);
    return follow();
  }
  if (op == "export") {
    need_args(1);
    snapshot(words[1]);
    return "wrote " + words[1];
  }
  if (op == "help") {
    return "commands: zoom <factor>|zoom <t0> <t1>, window <t0> <t1>, "
           "pan <dt>, reset, clusters all|<ids>, types all|<names>, "
           "mode scaled|aligned, grayscale on|off, lod auto|off|force, "
           "edges auto|off|force, edge-density <n>, cmap <file>, "
           "inspect <x> <y>, frame, stats, info, ascii, reread, "
           "follow, export <path>, help";
  }
  throw ArgumentError("unknown command '" + op + "' (try 'help')");
}

}  // namespace jedule::interactive
