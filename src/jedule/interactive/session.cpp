#include "jedule/interactive/session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "jedule/io/colormap_xml.hpp"
#include "jedule/io/registry.hpp"
#include "jedule/model/stats.hpp"
#include "jedule/render/ascii.hpp"
#include "jedule/render/exporter.hpp"
#include "jedule/util/error.hpp"
#include "jedule/util/parallel.hpp"
#include "jedule/util/strings.hpp"

namespace jedule::interactive {

using model::TimeRange;

namespace {

render::TileCache::Options cache_options() {
  render::TileCache::Options opt;
  opt.threads = util::resolve_threads(0);
  return opt;
}

}  // namespace

Session::Session(model::Schedule schedule, color::ColorMap colormap,
                 render::GanttStyle style)
    : schedule_(std::move(schedule)),
      colormap_(colormap),
      original_colormap_(std::move(colormap)),
      style_(std::move(style)),
      cache_(cache_options()) {
  on_schedule_loaded();
}

Session::Session(const std::string& path, color::ColorMap colormap,
                 render::GanttStyle style)
    : colormap_(colormap),
      original_colormap_(std::move(colormap)),
      style_(std::move(style)),
      path_(path),
      cache_(cache_options()) {
  schedule_ = io::load_schedule(path_);
  on_schedule_loaded();
}

void Session::on_schedule_loaded() {
  // Validate once up front; every layout/frame below then runs with
  // hints.assume_validated and skips the O(n) re-check.
  schedule_.validate();
  index_.reset();
  auto range = schedule_.time_range();
  full_range_ = range ? *range : TimeRange{0, 1};
  cache_.invalidate();
  invalidate();
}

void Session::ensure_index() {
  if (!index_) {
    index_ = std::make_shared<const model::TaskIndex>(schedule_);
  }
}

const model::TaskIndex& Session::index() {
  ensure_index();
  return *index_;
}

const render::GanttLayout& Session::layout() {
  if (!layout_) {
    ensure_index();
    render::LayoutHints hints;
    hints.index = index_.get();
    hints.assume_validated = true;
    hints.interactive = true;
    layout_ = render::layout_gantt(schedule_, colormap_, style_,
                                   /*threads=*/1, hints);
  }
  return *layout_;
}

TimeRange Session::current_window() const {
  if (style_.time_window) return *style_.time_window;
  return full_range_;
}

void Session::set_window(double t0, double t1) {
  if (!std::isfinite(t0) || !std::isfinite(t1)) {
    throw ArgumentError("window bounds must be finite");
  }
  if (t1 < t0) std::swap(t0, t1);

  // Length clamp: never below ~1e-12 of the schedule span (zero or
  // denormal zoom spans would collapse the pixel mapping to NaN/inf) and
  // never above 16x of it (runaway zoom-out).
  const double span = full_range_.length() > 0 ? full_range_.length() : 1.0;
  const double min_len = span * 1e-12;
  const double max_len = span * 16.0;
  double len = t1 - t0;
  if (!(len >= min_len)) {
    const double c = 0.5 * (t0 + t1);
    t0 = c - min_len / 2;
    t1 = c + min_len / 2;
    if (!(t1 > t0)) {  // c so large that c +/- min_len/2 rounds back to c
      t1 = std::nextafter(t0, std::numeric_limits<double>::max());
    }
  } else if (len > max_len) {
    const double c = 0.5 * (t0 + t1);
    t0 = c - max_len / 2;
    t1 = c + max_len / 2;
  }

  // Position clamp: the window must touch [begin, end] of the schedule
  // (panning past the ends slides along the boundary instead of showing
  // arbitrary empty space).
  if (t0 > full_range_.end) {
    const double d = t0 - full_range_.end;
    t0 -= d;
    t1 -= d;
  } else if (t1 < full_range_.begin) {
    const double d = full_range_.begin - t1;
    t0 += d;
    t1 += d;
  }

  style_.time_window = TimeRange{t0, t1};
  invalidate();
}

void Session::zoom(double factor, double center_frac) {
  if (!(factor > 0)) throw ArgumentError("zoom factor must be positive");
  if (!std::isfinite(center_frac)) center_frac = 0.5;
  center_frac = std::clamp(center_frac, 0.0, 1.0);
  const TimeRange window = current_window();
  const double center = window.begin + window.length() * center_frac;
  const double span = full_range_.length() > 0 ? full_range_.length() : 1.0;
  const double new_len =
      std::clamp(window.length() / factor, span * 1e-12, span * 16.0);
  set_window(center - new_len * center_frac,
             center + new_len * (1.0 - center_frac));
}

void Session::zoom_to_pixels(double x0, double x1) {
  if (!std::isfinite(x0) || !std::isfinite(x1)) {
    throw ArgumentError("zoom rectangle coordinates must be finite");
  }
  if (x1 < x0) std::swap(x0, x1);
  const auto& lay = layout();
  if (lay.panels.empty()) return;
  // Rectangle zoom uses the time axis of the first panel; in aligned mode
  // all panels agree, in scaled mode this matches zooming "in" that panel.
  const auto& panel = lay.panels.front();
  auto time_of_x = [&](double x) {
    const double frac = std::clamp((x - panel.x) / panel.w, 0.0, 1.0);
    return panel.time_range.begin + frac * panel.time_range.length();
  };
  // A degenerate selection (both pixels in one column, or off the panel on
  // the same side) clamps to a minimal span in set_window.
  set_window(time_of_x(x0), time_of_x(x1));
}

void Session::zoom_to_time(double t0, double t1) { set_window(t0, t1); }

void Session::pan(double dt) {
  if (!std::isfinite(dt)) throw ArgumentError("pan offset must be finite");
  const TimeRange window = current_window();
  // An astronomically large dt can overflow begin+dt to infinity; clamp
  // the target into the finite range and let set_window slide it back to
  // the schedule bounds.
  constexpr double kLim = 1e300;
  set_window(std::clamp(window.begin + dt, -kLim, kLim),
             std::clamp(window.end + dt, -kLim, kLim));
}

void Session::reset_view() {
  style_.time_window.reset();
  style_.cluster_filter.clear();
  invalidate();
}

void Session::select_clusters(std::vector<int> cluster_ids) {
  for (int id : cluster_ids) {
    if (!schedule_.has_cluster(id)) {
      throw ArgumentError("unknown cluster id " + std::to_string(id));
    }
  }
  style_.cluster_filter = std::move(cluster_ids);
  invalidate();
}

void Session::select_all_clusters() {
  style_.cluster_filter.clear();
  invalidate();
}

void Session::set_view_mode(model::ViewMode mode) {
  style_.view_mode = mode;
  invalidate();
}

void Session::set_colormap(color::ColorMap colormap) {
  original_colormap_ = std::move(colormap);
  colormap_ = grayscale_ ? original_colormap_.grayscale() : original_colormap_;
  ++colormap_epoch_;
  invalidate();
}

void Session::set_grayscale(bool on) {
  grayscale_ = on;
  colormap_ = on ? original_colormap_.grayscale() : original_colormap_;
  ++colormap_epoch_;
  invalidate();
}

void Session::set_lod(render::LodMode mode) {
  style_.lod = mode;
  invalidate();
}

const render::Framebuffer& Session::frame() {
  ensure_index();
  render::TileCache::Request req;
  req.schedule = &schedule_;
  req.colormap = &colormap_;
  req.style = style_;
  req.style.time_window = current_window();
  req.index = index_.get();
  req.colormap_epoch = colormap_epoch_;
  req.validated = true;
  frame_ = cache_.render_frame(req);
  frame_log_.record(cache_.last_frame());
  return *frame_;
}

std::string Session::describe(const model::Task& t) const {
  std::string out = "task " + t.id() + ": type=" + t.type() +
                    " start=" + util::format_fixed(t.start_time(), 3) +
                    " end=" + util::format_fixed(t.end_time(), 3) +
                    " resources=";
  std::vector<std::string> parts;
  for (const auto& cfg : t.configurations()) {
    std::string part = "cluster " + std::to_string(cfg.cluster_id) + " hosts";
    for (const auto& hr : cfg.hosts) {
      part += " " + std::to_string(hr.start);
      if (hr.nb > 1) part += "-" + std::to_string(hr.start + hr.nb - 1);
    }
    parts.push_back(std::move(part));
  }
  out += util::join(parts, "; ");
  for (const auto& [k, v] : t.properties()) {
    out += " " + k + "=" + v;
  }
  return out;
}

std::string Session::inspect(double x, double y) {
  const auto& lay = layout();
  const std::string miss = "no task at (" + util::format_fixed(x, 0) + ", " +
                           util::format_fixed(y, 0) + ")";
  if (!std::isfinite(x) || !std::isfinite(y)) return miss;

  // Composites draw on top of their members and live at the tail of the
  // box list — check those first, topmost (last-drawn) wins.
  for (auto it = lay.boxes.rbegin();
       it != lay.boxes.rend() && it->composite; ++it) {
    if (x >= it->x && x < it->x + std::max(it->w, 1.0) && y >= it->y &&
        y < it->y + std::max(it->h, 1.0)) {
      return describe(lay.tasks[it->task_index]);
    }
  }

  // Ordinary tasks resolve through the spatial index: a point query over
  // the 1-px time slab [time(x-1), time(x)] (hit_test gives every box at
  // least 1 px of width), then the exact box predicate per candidate.
  // This answers clicks without scanning the task list — including on
  // panels rendered as LOD density bins, which have no exact boxes.
  const render::PanelLayout* panel = render::panel_at(lay, x, y);
  if (panel == nullptr) {
    // A box's 1-px minimum width can overhang the panel's right edge.
    panel = render::panel_at(lay, x - 1.0, y);
  }
  if (panel == nullptr) return miss;
  ensure_index();

  auto time_of_x = [&](double px) {
    return panel->time_range.begin +
           (px - panel->x) / panel->w * panel->time_range.length();
  };
  const auto type_selected = [this](const model::Task& t) {
    return style_.type_filter.empty() ||
           std::find(style_.type_filter.begin(), style_.type_filter.end(),
                     t.type()) != style_.type_filter.end();
  };

  long long best = -1;
  index_->query(
      panel->cluster_id, time_of_x(x - 1.0), time_of_x(x),
      [&](const model::TaskIndex::Entry& e) {
        const model::Task& t = schedule_.tasks()[e.task];
        if (!type_selected(t)) return;
        // Replicate the layout's clipping and box arithmetic exactly so
        // the answer matches what hit_test on a full layout would return.
        const double t0 = std::max(e.begin, panel->time_range.begin);
        const double t1 = std::min(e.end, panel->time_range.end);
        if (t1 <= t0 && !(e.begin == e.end && t0 == e.begin)) return;
        const double bx = panel->x_of_time(t0);
        const double bw = panel->x_of_time(t1) - bx;
        const double by = panel->y + panel->row_height() * e.host_start;
        const double bh =
            panel->row_height() * (e.host_end - e.host_start + 1);
        if (x >= bx && x < bx + std::max(bw, 1.0) && y >= by &&
            y < by + std::max(bh, 1.0)) {
          best = std::max(best, static_cast<long long>(e.task));
        }
      });
  if (best < 0) return miss;
  return describe(schedule_.tasks()[static_cast<std::size_t>(best)]);
}

std::string Session::info() const {
  const auto stats = model::compute_stats(schedule_);
  std::string out = std::to_string(schedule_.clusters().size()) +
                    " cluster(s), " + std::to_string(stats.task_count) +
                    " task(s), " + std::to_string(schedule_.total_hosts()) +
                    " host(s), makespan=" +
                    util::format_fixed(stats.makespan, 3) + ", utilization=" +
                    util::format_fixed(stats.utilization * 100.0, 1) + "%";
  return out;
}

void Session::reread() {
  if (path_.empty()) {
    throw Error("reread: session is not bound to a file");
  }
  schedule_ = io::load_schedule(path_);
  on_schedule_loaded();
}

void Session::snapshot(const std::string& path) {
  render::RenderOptions options;
  options.style = style_;
  options.colormap = colormap_;
  ensure_index();
  options.task_index = index_.get();
  render::export_schedule(schedule_, options, path);
}

std::string Session::execute(const std::string& command) {
  const auto words = util::split_ws(command);
  if (words.empty()) return "";
  const std::string& op = words[0];

  auto need_args = [&](std::size_t n) {
    if (words.size() != n + 1) {
      throw ArgumentError("command '" + op + "' expects " + std::to_string(n) +
                          " argument(s)");
    }
  };
  auto as_double = [&](const std::string& s) {
    auto v = util::parse_double(s);
    if (!v) throw ArgumentError("'" + s + "' is not a number");
    return *v;
  };
  auto window_echo = [&]() {
    const auto w = current_window();
    return "window [" + util::format_fixed(w.begin, 3) + ", " +
           util::format_fixed(w.end, 3) + "]";
  };

  if (op == "zoom") {
    if (words.size() == 2) {
      zoom(as_double(words[1]));
      return window_echo();
    }
    need_args(2);
    zoom_to_time(as_double(words[1]), as_double(words[2]));
    return "window [" + words[1] + ", " + words[2] + "]";
  }
  if (op == "window") {
    // Like "zoom <t0> <t1>" but echoes the clamped result, so scripts see
    // what the view actually shows.
    need_args(2);
    zoom_to_time(as_double(words[1]), as_double(words[2]));
    return window_echo();
  }
  if (op == "pan") {
    need_args(1);
    pan(as_double(words[1]));
    return window_echo();
  }
  if (op == "reset") {
    need_args(0);
    reset_view();
    return "view reset";
  }
  if (op == "clusters") {
    need_args(1);
    if (words[1] == "all") {
      select_all_clusters();
      return "showing all clusters";
    }
    std::vector<int> ids;
    for (const auto& part : util::split(words[1], ',')) {
      auto v = util::parse_int(part);
      if (!v) throw ArgumentError("bad cluster id '" + part + "'");
      ids.push_back(static_cast<int>(*v));
    }
    const std::size_t count = ids.size();
    select_clusters(std::move(ids));
    return "showing " + std::to_string(count) + " cluster(s)";
  }
  if (op == "types") {
    // Task-type filter ("a user might only be interested in a certain task
    // type", Sec. II.B).
    need_args(1);
    if (words[1] == "all") {
      style_.type_filter.clear();
      invalidate();
      return "showing all task types";
    }
    style_.type_filter = util::split(words[1], ',');
    invalidate();
    return "showing " + std::to_string(style_.type_filter.size()) +
           " task type(s)";
  }
  if (op == "mode") {
    need_args(1);
    if (words[1] == "scaled") {
      set_view_mode(model::ViewMode::kScaled);
    } else if (words[1] == "aligned") {
      set_view_mode(model::ViewMode::kAligned);
    } else {
      throw ArgumentError("mode must be 'scaled' or 'aligned'");
    }
    return "mode " + words[1];
  }
  if (op == "cmap") {
    // "Color maps can also be changed on the fly" (paper conclusions).
    need_args(1);
    set_colormap(io::load_colormap_xml(words[1]));
    return "colormap " + words[1];
  }
  if (op == "grayscale") {
    need_args(1);
    if (words[1] == "on") set_grayscale(true);
    else if (words[1] == "off") set_grayscale(false);
    else throw ArgumentError("grayscale must be 'on' or 'off'");
    return "grayscale " + words[1];
  }
  if (op == "lod") {
    need_args(1);
    if (words[1] == "auto") set_lod(render::LodMode::kAuto);
    else if (words[1] == "off") set_lod(render::LodMode::kOff);
    else if (words[1] == "force") set_lod(render::LodMode::kForce);
    else throw ArgumentError("lod must be 'auto', 'off' or 'force'");
    return "lod " + words[1];
  }
  if (op == "inspect" || op == "click") {
    need_args(2);
    return inspect(as_double(words[1]), as_double(words[2]));
  }
  if (op == "frame") {
    need_args(0);
    frame();
    return frame_log_.last().summary();
  }
  if (op == "stats") {
    need_args(0);
    return frame_log_.summary();
  }
  if (op == "info") {
    need_args(0);
    return info();
  }
  if (op == "ascii") {
    // In-terminal view of the current zoom/selection (the stand-in for the
    // Swing window when no display is available).
    need_args(0);
    render::AsciiOptions ao;
    ao.time_window = style_.time_window;
    ao.cluster_filter = style_.cluster_filter;
    ao.type_filter = style_.type_filter;
    ao.view_mode = style_.view_mode;
    return render::render_ascii(schedule_, ao);
  }
  if (op == "reread") {
    need_args(0);
    reread();
    return "reloaded " + path_;
  }
  if (op == "export") {
    need_args(1);
    snapshot(words[1]);
    return "wrote " + words[1];
  }
  if (op == "help") {
    return "commands: zoom <factor>|zoom <t0> <t1>, window <t0> <t1>, "
           "pan <dt>, reset, clusters all|<ids>, types all|<names>, "
           "mode scaled|aligned, grayscale on|off, lod auto|off|force, "
           "cmap <file>, inspect <x> <y>, frame, stats, info, ascii, reread, "
           "export <path>, help";
  }
  throw ArgumentError("unknown command '" + op + "' (try 'help')");
}

}  // namespace jedule::interactive
