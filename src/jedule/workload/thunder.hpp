#pragma once

// Synthetic "LLNL Thunder day" workload generator (paper Sec. VII, Fig. 13).
//
// The real LLNL-Thunder-2007-0 trace is a proprietary download from the
// Parallel Workloads Archive; per DESIGN.md §2 we synthesize a statistically
// similar day instead: 1024 nodes of which 20 are reserved login/debug
// nodes, 834 jobs finishing within the day, power-of-two-leaning job sizes
// with a heavy tail, log-normal runtimes, a diurnal submission pattern, and
// a Zipf-like user population in which user 6447 is a heavy user (the one
// the paper highlights in yellow). The output is a regular SWF trace, so
// the same pipeline renders the real file when available.

#include <cstdint>

#include "jedule/io/swf.hpp"

namespace jedule::workload {

struct ThunderOptions {
  int nodes = 1024;
  int reserved_nodes = 20;
  int jobs = 834;
  double day_seconds = 86400;
  std::uint64_t seed = 20070202;  // the day the paper shows

  /// Number of distinct users; ids are drawn around this base.
  int users = 48;
  int highlighted_user = 6447;

  /// Fraction of jobs belonging to the highlighted user (~4 % matches the
  /// visual density of Fig. 13).
  double highlighted_user_share = 0.04;
};

/// Generates the trace. Every job finishes within [0, day_seconds).
io::SwfTrace generate_thunder_day(const ThunderOptions& options = {});

}  // namespace jedule::workload
