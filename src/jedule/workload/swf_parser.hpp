#pragma once

// Registration of the SWF input format with the parser registry — the
// worked example of the paper's pluggable-parser extension point.

namespace jedule::workload {

/// Registers the "swf" parser with io::ParserRegistry::instance().
/// Idempotent. After this, `io::load_schedule("trace.swf")` works: the
/// parser reads the SWF trace and reconstructs placements via
/// trace_to_schedule() with default options (reserved nodes taken from the
/// trace's "Reserved" header when present).
void register_swf_parser();

}  // namespace jedule::workload
