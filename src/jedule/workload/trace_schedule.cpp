#include "jedule/workload/trace_schedule.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "jedule/util/error.hpp"

namespace jedule::workload {

namespace {

using model::Configuration;
using model::HostRange;
using model::Task;

std::vector<HostRange> compress(std::vector<int>& nodes) {
  std::sort(nodes.begin(), nodes.end());
  std::vector<HostRange> ranges;
  for (int n : nodes) {
    if (!ranges.empty() && ranges.back().start + ranges.back().nb == n) {
      ++ranges.back().nb;
    } else {
      ranges.push_back(HostRange{n, 1});
    }
  }
  return ranges;
}

}  // namespace

TraceScheduleResult trace_to_schedule(const io::SwfTrace& trace,
                                      const TraceScheduleOptions& options) {
  TraceScheduleResult result;

  int total = options.total_nodes > 0 ? options.total_nodes
                                      : trace.max_procs();
  if (total <= 0) {
    throw ValidationError("trace declares no node count and has no jobs");
  }
  if (options.reserved_nodes < 0 || options.reserved_nodes >= total) {
    throw ArgumentError("reserved_nodes out of range");
  }

  result.schedule.add_cluster(0, options.cluster_name, total);

  // Jobs sorted by start time for the replay.
  std::vector<const io::SwfJob*> jobs;
  for (const auto& j : trace.jobs) {
    if (options.drop_malformed &&
        (j.run_time <= 0 || j.allocated_procs <= 0)) {
      ++result.dropped_jobs;
      continue;
    }
    if (options.window_end > options.window_begin) {
      if (j.end_time() < options.window_begin ||
          j.end_time() >= options.window_end) {
        ++result.dropped_jobs;
        continue;
      }
    }
    if (j.allocated_procs > total - options.reserved_nodes) {
      ++result.dropped_jobs;  // cannot fit even an empty machine
      continue;
    }
    jobs.push_back(&j);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const io::SwfJob* a, const io::SwfJob* b) {
              if (a->start_time() != b->start_time()) {
                return a->start_time() < b->start_time();
              }
              return a->job_id < b->job_id;
            });

  // free_at[n]: end time of the last job assigned to node n. Because jobs
  // are replayed in start order, node n is free for a job iff
  // free_at[n] <= job.start.
  std::vector<double> free_at(static_cast<std::size_t>(total), -1e300);

  for (const auto* j : jobs) {
    const double start = j->start_time();
    const double end = j->end_time();
    const int need = j->allocated_procs;

    std::vector<int> chosen;
    chosen.reserve(static_cast<std::size_t>(need));

    if (options.prefer_contiguous) {
      // First-fit contiguous run of `need` free nodes.
      int run_start = -1;
      int run_len = 0;
      for (int n = options.reserved_nodes; n < total; ++n) {
        if (free_at[static_cast<std::size_t>(n)] <= start) {
          if (run_len == 0) run_start = n;
          if (++run_len == need) break;
        } else {
          run_len = 0;
        }
      }
      if (run_len == need) {
        for (int n = run_start; n < run_start + need; ++n) chosen.push_back(n);
      }
    }
    if (chosen.empty()) {
      // Scattered: any free nodes, lowest index first.
      for (int n = options.reserved_nodes; n < total && (int)chosen.size() < need;
           ++n) {
        if (free_at[static_cast<std::size_t>(n)] <= start) chosen.push_back(n);
      }
    }
    if (static_cast<int>(chosen.size()) < need) {
      // Trace inconsistency (more processors in flight than the machine
      // has, e.g. clock skew): top up with the nodes that free earliest.
      ++result.overlapped_jobs;
      std::vector<int> busy;
      for (int n = options.reserved_nodes; n < total; ++n) {
        if (free_at[static_cast<std::size_t>(n)] > start) busy.push_back(n);
      }
      std::sort(busy.begin(), busy.end(), [&](int a, int b) {
        return free_at[static_cast<std::size_t>(a)] <
               free_at[static_cast<std::size_t>(b)];
      });
      for (int n : busy) {
        if (static_cast<int>(chosen.size()) == need) break;
        chosen.push_back(n);
      }
    }
    JED_ASSERT(static_cast<int>(chosen.size()) == need);

    for (int n : chosen) free_at[static_cast<std::size_t>(n)] = end;

    Task t(std::to_string(j->job_id), "job", start, end);
    Configuration cfg;
    cfg.cluster_id = 0;
    cfg.hosts = compress(chosen);
    t.add_configuration(std::move(cfg));
    t.set_property("user", std::to_string(j->user_id));
    t.set_property("status", std::to_string(j->status));
    t.set_property("queue", std::to_string(j->queue));
    result.schedule.add_task(std::move(t));
  }

  result.schedule.set_meta("source", "swf");
  result.schedule.set_meta("jobs", std::to_string(jobs.size()));
  result.schedule.validate();
  return result;
}

}  // namespace jedule::workload
