#include "jedule/workload/thunder.hpp"

#include <algorithm>
#include <cmath>

#include "jedule/util/error.hpp"
#include "jedule/util/rng.hpp"

namespace jedule::workload {

io::SwfTrace generate_thunder_day(const ThunderOptions& options) {
  JED_ASSERT(options.jobs > 0 && options.nodes > options.reserved_nodes);
  util::Rng rng(options.seed);

  io::SwfTrace trace;
  trace.header["Computer"] = "synthetic LLNL Thunder";
  trace.header["MaxNodes"] = std::to_string(options.nodes);
  trace.header["MaxProcs"] = std::to_string(options.nodes);
  trace.header["Note"] =
      "synthetic day modeled on LLNL-Thunder-2007-0 (see DESIGN.md)";

  // Job sizes: power-of-two-leaning with a heavy tail, as cluster traces
  // show. Weights loosely follow published Thunder statistics (many small
  // debug jobs, a few very wide production runs).
  const int sizes[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  const std::vector<double> size_weights = {18, 16, 16, 14, 12,
                                            10, 7,  4,  2,  1};

  // User population: Zipf-like activity. User ids cluster around 6400.
  std::vector<int> user_ids;
  std::vector<double> user_weights;
  for (int u = 0; u < options.users; ++u) {
    user_ids.push_back(6400 + u * 3 % 97 + (u / 7) * 10);
    user_weights.push_back(1.0 / (1.0 + u));
  }

  const int capacity = options.nodes - options.reserved_nodes;
  for (int i = 0; i < options.jobs; ++i) {
    io::SwfJob j;
    j.job_id = i + 1;

    // Diurnal submission: a morning and an afternoon peak over a base rate.
    double submit;
    do {
      const double mode = rng.uniform();
      if (mode < 0.35) {
        submit = rng.normal(0.38 * options.day_seconds,
                            0.07 * options.day_seconds);
      } else if (mode < 0.70) {
        submit = rng.normal(0.65 * options.day_seconds,
                            0.08 * options.day_seconds);
      } else {
        submit = rng.uniform(0.0, options.day_seconds);
      }
    } while (submit < 0 || submit >= options.day_seconds * 0.98);

    int procs = sizes[rng.weighted_index(size_weights)];
    // Occasional non-power-of-two production sizes.
    if (rng.bernoulli(0.15)) {
      procs = static_cast<int>(
          rng.uniform_int(1, std::min(capacity, 4 * procs)));
    }
    procs = std::min(procs, capacity);

    // Log-normal runtimes: median ~13 min, long tail; clipped so the job
    // (plus queueing) finishes inside the day.
    double run = rng.lognormal(std::log(780.0), 1.25);
    run = std::clamp(run, 10.0, 6.0 * 3600.0);

    double wait = rng.bernoulli(0.6) ? rng.exponential(120.0)
                                     : rng.exponential(1200.0);

    const double latest_end = options.day_seconds - 1.0;
    if (submit + wait + run > latest_end) {
      const double budget = latest_end - submit;
      wait = std::min(wait, budget * 0.2);
      run = std::max(10.0, budget - wait);
    }

    j.submit_time = std::floor(submit);
    j.wait_time = std::floor(wait);
    j.run_time = std::max(1.0, std::floor(run));
    j.allocated_procs = procs;
    j.requested_procs = procs;
    j.requested_time = std::ceil(j.run_time * rng.uniform(1.1, 3.0));
    j.avg_cpu_time = j.run_time * rng.uniform(0.7, 1.0);
    j.status = rng.bernoulli(0.92) ? 1 : 0;  // mostly completed
    j.user_id = rng.bernoulli(options.highlighted_user_share)
                    ? options.highlighted_user
                    : user_ids[rng.weighted_index(user_weights)];
    j.group_id = j.user_id % 11;
    j.executable = static_cast<int>(rng.uniform_int(1, 40));
    j.queue = j.allocated_procs <= 4 ? 1 : 2;
    j.partition = 1;
    trace.jobs.push_back(j);
  }

  // SWF files are submit-ordered.
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const io::SwfJob& a, const io::SwfJob& b) {
              if (a.submit_time != b.submit_time) {
                return a.submit_time < b.submit_time;
              }
              return a.job_id < b.job_id;
            });
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].job_id = static_cast<std::int64_t>(i + 1);
  }

  // Feasibility pass: a real trace records what actually ran, so at no
  // instant can more processors be in use than the machine has. Replay the
  // jobs and stretch waiting times (what a batch scheduler would have done)
  // until each job fits, trimming runtimes only when the day boundary
  // forces it.
  {
    std::vector<double> free_at(static_cast<std::size_t>(capacity), 0.0);
    // Min-heap by release time would be cleaner; with ~1k jobs a scan is
    // fine and keeps the generator dependency-free.
    for (auto& j : trace.jobs) {
      double start = j.start_time();
      // Earliest time at or after `start` when `allocated_procs` nodes are
      // free: try the start itself, then the release times of busy nodes.
      auto free_count = [&](double t) {
        int n = 0;
        for (double f : free_at) {
          if (f <= t) ++n;
        }
        return n;
      };
      if (free_count(start) < j.allocated_procs) {
        std::vector<double> releases(free_at.begin(), free_at.end());
        std::sort(releases.begin(), releases.end());
        start = std::max(
            start,
            releases[static_cast<std::size_t>(j.allocated_procs) - 1]);
      }
      j.wait_time = std::max(0.0, start - j.submit_time);
      const double latest_end = options.day_seconds - 1.0;
      if (start + j.run_time > latest_end) {
        j.run_time = std::max(1.0, latest_end - start);
      }
      // Occupy the first free nodes (identity does not matter here; the
      // converter re-derives a placement).
      int need = j.allocated_procs;
      for (double& f : free_at) {
        if (need == 0) break;
        if (f <= start) {
          f = start + j.run_time;
          --need;
        }
      }
      JED_ASSERT(need == 0);
    }
  }
  return trace;
}

}  // namespace jedule::workload
