#include "jedule/workload/swf_parser.hpp"

#include <memory>

#include "jedule/io/registry.hpp"
#include "jedule/io/swf.hpp"
#include "jedule/util/strings.hpp"
#include "jedule/workload/trace_schedule.hpp"

namespace jedule::workload {

namespace {

class SwfScheduleParser final : public io::ScheduleParser {
 public:
  std::string name() const override { return "swf"; }

  bool sniff(const std::string& path, const std::string& head) const override {
    if (util::ends_with(path, ".swf")) return true;
    // SWF headers start with "; " comments such as "; Computer: ...".
    const auto body = util::trim(head);
    return util::starts_with(body, ";");
  }

  model::Schedule parse(std::string_view content) const override {
    return from_trace(io::read_swf(content));
  }

  // Chunked ingest: the trace lines parse in parallel (io::read_swf_chunked,
  // identical to read_swf at any thread count); the trace-to-schedule
  // packing stays serial — its host placement is an inherently sequential
  // sweep over jobs in submit order.
  model::Schedule parse_chunked(io::TextSource& src,
                                const io::IngestOptions& opt,
                                io::IngestStats* stats) const override {
    return from_trace(io::read_swf_chunked(src, opt, stats));
  }

 private:
  static model::Schedule from_trace(const io::SwfTrace& trace) {
    TraceScheduleOptions options;
    options.cluster_name = "trace";
    auto it = trace.header.find("Reserved");
    if (it != trace.header.end()) {
      if (auto v = util::parse_int(it->second); v && *v >= 0) {
        options.reserved_nodes = static_cast<int>(*v);
      }
    }
    return trace_to_schedule(trace, options).schedule;
  }
};

}  // namespace

void register_swf_parser() {
  io::ParserRegistry::instance().register_parser(
      std::make_unique<SwfScheduleParser>());
}

}  // namespace jedule::workload
