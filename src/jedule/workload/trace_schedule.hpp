#pragma once

// Conversion of an SWF job trace into a displayable schedule (paper
// Sec. VII). SWF records *how many* processors a job used but not *which*,
// so the converter reconstructs a plausible placement by replaying the jobs
// through a first-fit node allocator — exactly what a bird's-eye workload
// view needs (the visual structure depends on sizes and times, not on the
// identity of the nodes).

#include <string>

#include "jedule/io/swf.hpp"
#include "jedule/model/schedule.hpp"

namespace jedule::workload {

struct TraceScheduleOptions {
  std::string cluster_name = "cluster";

  /// Nodes [0, reserved_nodes) never receive jobs (login/debug nodes; the
  /// Thunder trace reserves 20, visible in paper Fig. 13 as an empty band).
  int reserved_nodes = 0;

  /// Total nodes; 0 = use the trace's MaxProcs/MaxNodes header.
  int total_nodes = 0;

  /// Keep only jobs that *finish* inside [window_begin, window_end);
  /// disabled when window_end <= window_begin. (The paper selects "all jobs
  /// that finished on 02/02".)
  double window_begin = 0;
  double window_end = 0;

  /// Skip jobs with nonpositive runtime or processor count (trace noise).
  bool drop_malformed = true;

  /// Prefer a contiguous node range; fall back to scattered free nodes.
  bool prefer_contiguous = true;
};

struct TraceScheduleResult {
  model::Schedule schedule;

  /// Jobs that could not be placed without overlapping an earlier job
  /// (inconsistent traces); they are placed anyway on the least-loaded
  /// nodes, and counted here.
  int overlapped_jobs = 0;

  int dropped_jobs = 0;
};

/// Converts `trace` to a schedule. Each job becomes one task of type "job"
/// with properties "user", "status", "queue".
TraceScheduleResult trace_to_schedule(const io::SwfTrace& trace,
                                      const TraceScheduleOptions& options = {});

}  // namespace jedule::workload
